"""The benchmark conftest's session-finish hook writes valid JSON.

``benchmarks/conftest.py`` collects headline numbers through the
``bench_record`` fixture and writes ``BENCH_scalability.json`` at
session finish. The trajectory must stay *valid JSON with the expected
schema* even when a recording bench was skipped or deselected (its
section is simply absent — which is exactly what
``check_regression.py --allow-missing`` exists for), and no file at all
must appear for sessions that ran no recording bench (the tier-1
suite).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_CONFTEST = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"
)


@pytest.fixture()
def bench_conftest():
    """The benchmarks conftest as an isolated module instance."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", _CONFTEST
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class _FakeConfig:
    def __init__(self, rootpath):
        self.rootpath = rootpath


class _FakeSession:
    def __init__(self, rootpath):
        self.config = _FakeConfig(rootpath)


def test_partial_records_write_valid_json(bench_conftest, tmp_path, monkeypatch):
    target = tmp_path / "BENCH_out.json"
    monkeypatch.setenv("BENCH_SCALABILITY_JSON", str(target))
    # Only one bench recorded — the others were skipped this session.
    # (Same merge semantics as the bench_record fixture's closure.)
    records = bench_conftest._RECORDS
    records.setdefault("batch_vs_per_pair", {}).update(
        {"speedup": 9.1, "pairs": 1225}
    )
    records.setdefault("batch_vs_per_pair", {}).update({"workload": "50x300"})
    bench_conftest.pytest_sessionfinish(_FakeSession(str(tmp_path)), 0)

    payload = json.loads(target.read_text())  # must parse
    assert payload["schema"] == 1
    assert payload["suite"] == "bench_scalability"
    assert set(payload["env"]) == {"ci", "cpu_count", "platform", "python"}
    assert payload["results"] == {
        "batch_vs_per_pair": {
            "speedup": 9.1,
            "pairs": 1225,
            "workload": "50x300",
        }
    }


def test_empty_session_writes_nothing(bench_conftest, tmp_path, monkeypatch):
    target = tmp_path / "BENCH_out.json"
    monkeypatch.setenv("BENCH_SCALABILITY_JSON", str(target))
    bench_conftest.pytest_sessionfinish(_FakeSession(str(tmp_path)), 0)
    assert not target.exists()


def test_default_path_is_the_rootpath(bench_conftest, tmp_path, monkeypatch):
    monkeypatch.delenv("BENCH_SCALABILITY_JSON", raising=False)
    bench_conftest._RECORDS["round_refresh"] = {"speedup": 2.5}
    bench_conftest.pytest_sessionfinish(_FakeSession(str(tmp_path)), 0)
    payload = json.loads((tmp_path / "BENCH_scalability.json").read_text())
    assert payload["results"]["round_refresh"] == {"speedup": 2.5}
