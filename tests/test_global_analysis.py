"""Tests for clique consolidation and the independent core."""

import pytest

from repro.dependence.global_analysis import (
    CopierClique,
    copier_cliques,
    independent_core,
)
from repro.exceptions import DataError
from repro.generators import simple_copier_world
from repro.truth import Depen


@pytest.fixture(scope="module")
def discovered():
    dataset, world = simple_copier_world(
        n_objects=80, n_independent=4, n_copiers=3, accuracy=0.75, seed=7
    )
    result = Depen().discover(dataset)
    return dataset, world, result


class TestCopierCliques:
    def test_planted_clique_found_as_one_component(self, discovered):
        _, world, result = discovered
        cliques = copier_cliques(result.dependence, result.accuracies)
        clique_members = {frozenset(c.members) for c in cliques}
        expected = frozenset(world.copiers() | {world.edges[0].original})
        assert expected in clique_members

    def test_original_identified_when_copiers_are_weaker(self):
        """With partial, less-competent copiers the original's higher
        accuracy identifies it. (Full-coverage equal-accuracy copiers
        are genuinely unidentifiable — any member then represents the
        clique equally well.)"""
        dataset, world = simple_copier_world(
            n_objects=150,
            n_independent=4,
            n_copiers=2,
            accuracy=0.8,
            copy_rate=0.7,
            copier_coverage=0.6,
            seed=3,
        )
        result = Depen().discover(dataset)
        cliques = copier_cliques(result.dependence, result.accuracies)
        target = next(c for c in cliques if set(c.members) & world.copiers())
        assert target.likely_original == world.edges[0].original

    def test_table1_clique(self, table1):
        result = Depen().discover(table1)
        cliques = copier_cliques(result.dependence, result.accuracies)
        members = {frozenset(c.members) for c in cliques}
        assert frozenset({"S3", "S4", "S5"}) in members

    def test_threshold_validation(self, discovered):
        _, _, result = discovered
        with pytest.raises(DataError):
            copier_cliques(result.dependence, threshold=1.5)

    def test_clique_invariants(self):
        with pytest.raises(DataError):
            CopierClique(members=("A",), originality=(1.0,))
        with pytest.raises(DataError):
            CopierClique(members=("A", "B"), originality=(1.0,))


class TestIndependentCore:
    def test_core_keeps_one_clique_representative(self, discovered):
        dataset, world, result = discovered
        core = independent_core(
            result.dependence, dataset.sources, result.accuracies
        )
        clique = world.copiers() | {world.edges[0].original}
        # Exactly one clique member represents the shared content...
        assert len(clique & set(core)) == 1
        # ...and every source outside the clique survives.
        outside = set(dataset.sources) - clique
        assert outside <= set(core)

    def test_core_on_table1(self, table1):
        result = Depen().discover(table1)
        core = independent_core(
            result.dependence, table1.sources, result.accuracies
        )
        assert "S1" in core
        assert "S2" in core
        assert len({"S3", "S4", "S5"} & set(core)) == 1

    def test_empty_sources_rejected(self, discovered):
        _, _, result = discovered
        with pytest.raises(DataError):
            independent_core(result.dependence, [])
