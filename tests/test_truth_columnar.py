"""Columnar truth backend: bit-for-bit equivalence with the dict path.

The contract of :mod:`repro.truth.columnar`: the array-native truth
rounds (``truth_backend="columnar"``) produce **bit-for-bit identical**
decisions, distributions, accuracies and round traces to the
pure-Python dict reference, for every evidence model, both entry-store
layouts, and under interleaved streaming ingest — plus the unit
behaviour of the :class:`~repro.truth.columnar.ValueProbTable` exchange
format, the positional (probe-free) evidence-cache refresh it enables,
and DEPEN's restricted in-round pair re-scoring built on its
moved-entry tracking.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.streaming import StreamingDependenceEngine
from repro.exceptions import DataError, ParameterError
from repro.generators import simple_copier_world
from repro.truth import (
    Accu,
    Depen,
    ValueProbTable,
    resolve_truth_backend,
)
from repro.truth.vote_counting import VoteOrderCache

ALL_MODEL_PARAMS = [
    {"false_value_model": model, "evidence_form": form}
    for model in ("uniform", "empirical")
    for form in ("expected_log", "marginal")
]


def _depen_params(backend, entry_store="auto", **model):
    return DependenceParams(
        truth_backend=backend,
        entry_store=entry_store,
        overlap_warning_bound=None,
        **model,
    )


def _results_equal(a, b, *, compare_counters=False):
    """Bitwise result equality; trace counters compared only on demand."""
    assert a.decisions == b.decisions
    assert a.distributions == b.distributions
    assert a.accuracies == b.accuracies
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert len(a.trace) == len(b.trace)
    for ta, tb in zip(a.trace, b.trace):
        assert ta.round_index == tb.round_index
        assert ta.accuracy_change == tb.accuracy_change
        assert ta.decisions_changed == tb.decisions_changed
        if compare_counters:
            assert ta.pairs_rescored == tb.pairs_rescored
            assert ta.pairs_reused == tb.pairs_reused


def _random_claims(rng, n_sources=10, n_objects=30, coverage=18, n_values=3):
    claims = []
    for i in range(n_sources):
        for obj in rng.sample(range(n_objects), coverage):
            claims.append(
                Claim(
                    source=f"S{i:02d}",
                    object=f"o{obj:03d}",
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


# ---------------------------------------------------------------------------
# backend resolution
# ---------------------------------------------------------------------------


class TestBackendResolution:
    def test_auto_resolves_to_columnar_with_numpy(self):
        assert resolve_truth_backend("auto") == "columnar"

    def test_explicit_settings_pass_through(self):
        assert resolve_truth_backend("dict") == "dict"
        assert resolve_truth_backend("columnar") == "columnar"

    def test_invalid_setting_raises(self):
        with pytest.raises(ParameterError):
            resolve_truth_backend("graph")

    def test_params_validate_truth_backend(self):
        with pytest.raises(ParameterError):
            DependenceParams(truth_backend="graph")

    def test_accu_validates_truth_backend(self):
        with pytest.raises(ParameterError):
            Accu(truth_backend="graph")

    def test_env_override_on_default_params(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRUTH_BACKEND", "dict")
        assert DependenceParams().truth_backend == "dict"
        # An explicit non-default argument always wins.
        assert (
            DependenceParams(truth_backend="columnar").truth_backend
            == "columnar"
        )

    def test_env_override_consulted_by_accu(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRUTH_BACKEND", "dict")
        assert resolve_truth_backend("auto", consult_env=True) == "dict"
        assert resolve_truth_backend("columnar", consult_env=True) == "columnar"

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRUTH_BACKEND", "graph")
        with pytest.raises(ParameterError):
            resolve_truth_backend("auto", consult_env=True)


# ---------------------------------------------------------------------------
# ValueProbTable units
# ---------------------------------------------------------------------------


class TestValueProbTable:
    @pytest.fixture
    def dataset(self):
        return ClaimDataset.from_table(
            {
                "o1": {"A": "x", "B": "x", "C": "y"},
                "o2": {"A": "u", "B": "v", "C": "v"},
                "o3": {"A": "w"},
            }
        )

    def test_uniform_build_matches_reference(self, dataset):
        table = ValueProbTable(dataset)
        assert table.to_dict() == uniform_value_probabilities(dataset)
        assert len(table) == 5  # (x, y), (u, v), (w)
        assert table.objects == dataset.objects

    def test_build_from_dict(self, dataset):
        probs = uniform_value_probabilities(dataset)
        probs["o1"]["x"] = 0.9
        probs["o1"]["y"] = 0.1
        table = ValueProbTable(dataset, probs)
        assert table.to_dict() == probs

    def test_slot_lookup_and_counts(self, dataset):
        table = ValueProbTable(dataset)
        slot = table.slot("o1", "x")
        assert table.slot_values[slot] == "x"
        assert table.counts[slot] == 2.0  # A and B assert x
        with pytest.raises(DataError):
            table.slot("o1", "nope")
        with pytest.raises(DataError):
            table.slot("o9", "x")

    def test_set_probs_moved_mask_bitwise(self, dataset):
        table = ValueProbTable(dataset)
        assert table.moved.all()  # nothing exchanged yet
        fresh = table.probs.copy()
        slot = table.slot("o2", "u")
        fresh[slot] = 0.75
        table.set_probs(fresh)
        assert table.version == 1
        moved = np.flatnonzero(table.moved).tolist()
        assert moved == [slot]

    def test_set_probs_moved_mask_tolerance(self, dataset):
        table = ValueProbTable(dataset)
        fresh = table.probs.copy()
        s1 = table.slot("o1", "x")
        s2 = table.slot("o1", "y")
        fresh[s1] += 1e-12
        fresh[s2] += 1e-3
        table.set_probs(fresh, tolerance=1e-6)
        assert np.flatnonzero(table.moved).tolist() == [s2]

    def test_moved_objects(self, dataset):
        table = ValueProbTable(dataset)
        fresh = table.probs.copy()
        fresh[table.slot("o3", "w")] = 0.5
        table.set_probs(fresh)
        assert table.moved_objects() == {"o3"}

    def test_set_probs_validation(self, dataset):
        table = ValueProbTable(dataset)
        with pytest.raises(DataError):
            table.set_probs(np.zeros(2))
        with pytest.raises(ParameterError):
            table.set_probs(table.probs.copy(), tolerance=-1.0)


# ---------------------------------------------------------------------------
# evidence-cache consumption: positional refresh, no dict probes
# ---------------------------------------------------------------------------


class TestEvidenceCacheTableRefresh:
    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    @pytest.mark.parametrize("store", ["columnar", "list"])
    def test_table_refresh_equals_dict_refresh(self, model, store):
        dataset = ClaimDataset(_random_claims(random.Random(3)))
        params = DependenceParams(
            entry_store=store, overlap_warning_bound=None, **model
        )
        probs = uniform_value_probabilities(dataset)
        dict_cache = EvidenceCache(dataset, params=params)
        reference = dict_cache.collect_all(probs)
        table_cache = EvidenceCache(dataset, params=params)
        table = ValueProbTable(dataset, probs)
        assert table_cache.collect_all(table) == reference

    def test_table_refresh_after_hardened_probs(self):
        dataset = ClaimDataset(_random_claims(random.Random(4)))
        params = DependenceParams(
            false_value_model="empirical", overlap_warning_bound=None
        )
        probs = uniform_value_probabilities(dataset)
        hard = {
            obj: {
                value: (1.0 if i == 0 else 0.0)
                for i, value in enumerate(dist)
            }
            for obj, dist in probs.items()
        }
        cache_a = EvidenceCache(dataset, params=params)
        cache_b = EvidenceCache(dataset, params=params)
        assert cache_b.collect_all(
            ValueProbTable(dataset, hard)
        ) == cache_a.collect_all(hard)

    def test_foreign_dataset_rejected(self):
        dataset = ClaimDataset(_random_claims(random.Random(5)))
        other = ClaimDataset(_random_claims(random.Random(6)))
        cache = EvidenceCache(dataset, params=DependenceParams())
        with pytest.raises(DataError):
            cache.refresh(ValueProbTable(other))

    def test_stale_table_rejected_after_ingest(self):
        claims = _random_claims(random.Random(7))
        dataset = ClaimDataset(claims[:100])
        cache = EvidenceCache(dataset, params=DependenceParams())
        table = ValueProbTable(dataset)
        cache.refresh(table)  # fine while versions match
        dataset.add_claims(claims[100:])
        with pytest.raises(DataError):
            cache.refresh(table)
        # A fresh table over the grown dataset works again.
        cache.refresh(ValueProbTable(dataset))

    def test_non_table_non_dict_rejected(self):
        dataset = ClaimDataset(_random_claims(random.Random(8)))
        cache = EvidenceCache(dataset, params=DependenceParams())
        with pytest.raises(DataError):
            cache.refresh([("o1", "x", 0.5)])

    @pytest.mark.parametrize("store", ["columnar", "list"])
    def test_pairs_with_moved_entries(self, store):
        dataset = ClaimDataset(_random_claims(random.Random(9)))
        params = DependenceParams(
            entry_store=store, overlap_warning_bound=None
        )
        cache = EvidenceCache(dataset, params=params)
        table = ValueProbTable(dataset)
        before = cache.collect_all(table)
        fresh = table.probs.copy()
        moved_obj = dataset.objects[0]
        moved_value = next(iter(dataset.values_for_view(moved_obj)))
        fresh[table.slot(moved_obj, moved_value)] = 0.99
        table.set_probs(fresh)
        cache.refresh(table)
        after = {key: cache.evidence(*key) for key in cache}
        flagged = cache.pairs_with_moved_entries(table.moved)
        # Exactly the pairs whose served evidence changed are flagged,
        # and every flagged pair agrees on the moved (object, value).
        changed = {key for key in before if after[key] != before[key]}
        assert changed <= flagged
        providers = sorted(dataset.providers_of(moved_obj, moved_value))
        for s1, s2 in flagged:
            assert s1 in providers and s2 in providers

    def test_sibling_slot_move_flags_empirical_pairs(self):
        """Under the empirical model an entry's popularity reads
        ``k_false`` over ALL of its object's slots, so a *sibling*
        value's probability move must flag the pair even though the
        pair's own agreement slot never moved."""
        dataset = ClaimDataset.from_table(
            {
                "o1": {"A": "v1", "B": "v1", "C": "v2", "D": "v3"},
                "o2": {"A": "x", "B": "x", "C": "x", "D": "x"},
            }
        )
        for model, expect_flagged in (("empirical", True), ("uniform", False)):
            params = DependenceParams(
                false_value_model=model, overlap_warning_bound=None
            )
            cache = EvidenceCache(dataset, params=params)
            table = ValueProbTable(dataset)
            before = cache.collect_all(table)[("A", "B")]
            fresh = table.probs.copy()
            fresh[table.slot("o1", "v2")] = 0.9  # sibling of the A-B entry
            fresh[table.slot("o1", "v1")] = 0.05
            fresh[table.slot("o1", "v3")] = 0.05
            moved = fresh != table.probs
            moved[table.slot("o1", "v1")] = False  # the pair's own entry
            fresh[table.slot("o1", "v1")] = table.probs[
                table.slot("o1", "v1")
            ]
            table.set_probs(fresh)
            cache.refresh(table)
            after = cache.evidence("A", "B")
            flagged = ("A", "B") in cache.pairs_with_moved_entries(moved)
            assert flagged == expect_flagged, model
            # Ground truth for the widening: the empirical pair's
            # evidence really did change (its popularity input moved),
            # the uniform pair's really did not.
            assert (after != before) == expect_flagged, model

    def test_pairs_with_moved_entries_needs_table_refresh(self):
        dataset = ClaimDataset(_random_claims(random.Random(10)))
        cache = EvidenceCache(dataset, params=DependenceParams())
        cache.collect_all(uniform_value_probabilities(dataset))
        with pytest.raises(DataError):
            cache.pairs_with_moved_entries(
                np.ones(len(ValueProbTable(dataset)), dtype=bool)
            )


# ---------------------------------------------------------------------------
# columnar-vs-dict equivalence: deterministic worlds
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def world(self):
        dataset, _ = simple_copier_world(
            n_objects=60, n_independent=8, n_copiers=3, accuracy=0.75, seed=7
        )
        return dataset

    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_depen_bitwise_equal(self, world, model):
        it = IterationParams(max_rounds=8)
        dict_result = Depen(_depen_params("dict", **model), it).discover(world)
        col_result = Depen(
            _depen_params("columnar", **model), it
        ).discover(world)
        _results_equal(dict_result, col_result)
        # The dependence graphs agree too (same pairs, same posteriors).
        assert len(col_result.dependence) == len(dict_result.dependence)
        for pair in dict_result.dependence:
            assert col_result.dependence.get(pair.s1, pair.s2) == pair

    def test_depen_equal_on_list_entry_store(self, world):
        it = IterationParams(max_rounds=5)
        dict_result = Depen(
            _depen_params("dict", entry_store="list"), it
        ).discover(world)
        col_result = Depen(
            _depen_params("columnar", entry_store="list"), it
        ).discover(world)
        _results_equal(dict_result, col_result)

    def test_accu_bitwise_equal(self, world):
        _results_equal(
            Accu(truth_backend="dict").discover(world),
            Accu(truth_backend="columnar").discover(world),
        )

    def test_accu_equal_on_paper_table(self, table1):
        _results_equal(
            Accu(truth_backend="dict").discover(table1),
            Accu(truth_backend="columnar").discover(table1),
        )

    def test_depen_equal_on_paper_table(self, table1):
        it = IterationParams(max_rounds=6)
        _results_equal(
            Depen(_depen_params("dict"), it).discover(table1),
            Depen(_depen_params("columnar"), it).discover(table1),
        )

    def test_depen_reproduces_table1_corrections(self, table1):
        # The paper's worked example still lands on the right values
        # through the columnar backend.
        result = Depen(_depen_params("columnar")).discover(table1)
        assert result.decisions["Halevy"] == "Google"
        assert result.decisions["Dalvi"] == "Yahoo!"
        assert result.decisions["Dong"] == "AT&T"


# ---------------------------------------------------------------------------
# columnar-vs-dict equivalence: hypothesis property with ingest
# ---------------------------------------------------------------------------


@st.composite
def claim_tables(draw):
    """A random claim table plus a split point for interleaved ingest."""
    n_sources = draw(st.integers(min_value=3, max_value=8))
    n_objects = draw(st.integers(min_value=2, max_value=12))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_sources - 1),
                st.integers(0, n_objects - 1),
                st.integers(0, 2),
            ),
            min_size=6,
            max_size=70,
        )
    )
    seen = set()
    claims = []
    for source, obj, value in rows:
        if (source, obj) in seen:
            continue  # one claim per (source, object) in a snapshot
        seen.add((source, obj))
        claims.append(
            Claim(source=f"S{source}", object=f"o{obj:02d}", value=f"v{value}")
        )
    split = draw(st.integers(min_value=1, max_value=len(claims)))
    return claims, split


@given(table=claim_tables(), data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_backend_equivalence_with_ingest(table, data):
    """Across every evidence model, both entry-store layouts, and
    interleaved streaming ingest, the columnar backend's DEPEN run is
    bit-for-bit the dict backend's."""
    claims, split = table
    model = data.draw(st.sampled_from(ALL_MODEL_PARAMS))
    store = data.draw(st.sampled_from(["columnar", "list"]))
    it = IterationParams(max_rounds=6)
    engines = {
        backend: StreamingDependenceEngine(
            params=_depen_params(backend, entry_store=store, **model)
        )
        for backend in ("dict", "columnar")
    }
    for batch in (claims[:split], claims[split:]):
        results = {}
        for backend, engine in engines.items():
            engine.ingest(batch)
            if len(engine.dataset) == 0:
                continue
            results[backend] = engine.run_truth(
                Depen(engine.params, it, min_overlap=engine.min_overlap)
            )
        if results:
            _results_equal(results["dict"], results["columnar"])


@given(table=claim_tables())
@settings(max_examples=25, deadline=None)
def test_property_accu_backend_equivalence(table):
    claims, _ = table
    dataset = ClaimDataset(claims)
    _results_equal(
        Accu(truth_backend="dict").discover(dataset),
        Accu(truth_backend="columnar").discover(dataset),
    )


# ---------------------------------------------------------------------------
# restricted re-scoring inside DEPEN's rounds
# ---------------------------------------------------------------------------


class TestRestrictedRescoring:
    @pytest.fixture(scope="class")
    def world(self):
        dataset, _ = simple_copier_world(
            n_objects=80, n_independent=10, n_copiers=3, accuracy=0.8, seed=11
        )
        return dataset

    def test_counters_cover_every_pair(self, world):
        it = IterationParams(max_rounds=6)
        result = Depen(_depen_params("columnar"), it).discover(world)
        n_pairs = len(result.dependence)
        for trace in result.trace:
            assert trace.pairs_rescored + trace.pairs_reused == n_pairs
        assert result.trace[0].pairs_rescored == n_pairs  # first is full

    def test_dict_backend_leaves_counters_unset(self, world):
        it = IterationParams(max_rounds=3)
        result = Depen(_depen_params("dict"), it).discover(world)
        assert all(t.pairs_rescored is None for t in result.trace)

    def test_reuse_fires_in_settling_tail_and_stays_exact(self, world):
        it = IterationParams(
            max_rounds=20,
            accuracy_tolerance=1e-9,
            rescore_tolerance=1e-4,
        )
        reference = Depen(
            _depen_params("dict"),
            IterationParams(max_rounds=20, accuracy_tolerance=1e-9),
        ).discover(world)
        result = Depen(_depen_params("columnar"), it).discover(world)
        reused = sum(t.pairs_reused for t in result.trace)
        assert reused > 0  # the restriction actually fires
        # Decisions are unaffected; accuracies within the documented
        # bound of the drift tolerance.
        assert result.decisions == reference.decisions
        worst = max(
            abs(result.accuracies[s] - reference.accuracies[s])
            for s in reference.accuracies
        )
        assert worst < 1e-6

    def test_exact_default_is_bitwise(self, world):
        # rescore_tolerance=0.0 (default) reuses only bitwise-unchanged
        # inputs, so results match the dict path exactly even when the
        # restriction machinery runs.
        it = IterationParams(max_rounds=10)
        _results_equal(
            Depen(_depen_params("dict"), it).discover(world),
            Depen(_depen_params("columnar"), it).discover(world),
        )

    def test_streaming_surfaces_truth_stats(self, world):
        params = _depen_params("columnar")
        engine = StreamingDependenceEngine(
            dataset=ClaimDataset(list(world)), params=params
        )
        it = IterationParams(
            max_rounds=20, accuracy_tolerance=1e-9, rescore_tolerance=1e-4
        )
        engine.run_truth(Depen(params, it, min_overlap=engine.min_overlap))
        stats = engine.last_truth_stats
        assert stats["algorithm"] == "depen"
        assert stats["pairs_reused"] > 0
        assert stats["restricted_rounds"] > 0

    def test_rescore_tolerance_validation(self):
        with pytest.raises(ParameterError):
            IterationParams(rescore_tolerance=-1e-9)

    @pytest.fixture(scope="class")
    def hetero_world(self):
        """Two disjoint clusters settling at different speeds.

        The copier cluster keeps drifting for most of the run while the
        unanimous cluster freezes after two rounds — exactly the shape
        where a per-pair baseline beats the shared one: the shared
        baseline only resets on all-rescored rounds, which the
        slow-settling cluster prevents, so its pairs stay marked dirty
        forever once their accumulated drift passes the tolerance.
        """
        dataset, _ = simple_copier_world(
            n_objects=80, n_independent=10, n_copiers=3, accuracy=0.8, seed=11
        )
        claims = list(dataset)
        for s in range(4):
            for o in range(20):
                claims.append(Claim(f"una{s}", f"uobj{o:02d}", f"truth{o:02d}"))
        return ClaimDataset(claims)

    def test_per_pair_baseline_strictly_beats_shared(self, hetero_world):
        it = IterationParams(
            max_rounds=20,
            accuracy_tolerance=1e-9,
            rescore_tolerance=1e-4,
            fail_on_max_rounds=False,
        )
        # The list entry store has no per-slot round stamps, so it runs
        # the shared-baseline restriction — the comparison point.
        shared = Depen(
            _depen_params("columnar", entry_store="list"), it
        ).discover(hetero_world)
        per_pair = Depen(
            _depen_params("columnar", entry_store="columnar"), it
        ).discover(hetero_world)
        shared_reused = [t.pairs_reused for t in shared.trace]
        per_pair_reused = [t.pairs_reused for t in per_pair.trace]
        # Pinned counts: the unanimous cluster's 6 pairs settle by round
        # 3 under both schemes; from round 15 the copier cluster starts
        # settling too, which only the per-pair baseline can exploit.
        assert shared_reused == [0, 0] + [6] * 18
        assert per_pair_reused == (
            [0, 0] + [6] * 12 + [48, 42, 84, 48, 84, 84]
        )
        assert sum(per_pair_reused) > sum(shared_reused)
        assert all(
            p >= s for p, s in zip(per_pair_reused, shared_reused)
        )
        # Restriction never changes what DEPEN decides.
        assert per_pair.decisions == shared.decisions


# ---------------------------------------------------------------------------
# VoteOrderCache: dirty-object re-sort on ingest
# ---------------------------------------------------------------------------


class TestVoteOrderCacheIngest:
    def test_only_dirty_objects_resorted_on_version_bump(self):
        claims = _random_claims(random.Random(13), n_objects=20)
        dataset = ClaimDataset(claims[:120])
        cache = VoteOrderCache(dataset)
        accs = {s: 0.8 for s in dataset.sources}
        # Force distinct ranks so the ranking is stable but non-trivial.
        accs = {
            s: 0.5 + i * 1e-3 for i, s in enumerate(sorted(accs))
        }
        before = cache.orderings(accs)
        snapshot = {obj: order for obj, order in before.items()}
        delta = dataset.add_claims(claims[120:])
        after = cache.orderings(accs)
        fresh = VoteOrderCache(dataset).orderings(accs)
        assert after == fresh  # correctness: matches a cold re-sort
        for obj, order in snapshot.items():
            if obj not in delta.dirty_objects:
                # Clean objects were not re-sorted: same list object.
                assert after[obj] is order

    def test_ranking_change_still_rebuilds_everything(self):
        claims = _random_claims(random.Random(14), n_objects=10, coverage=8)
        dataset = ClaimDataset(claims)
        cache = VoteOrderCache(dataset)
        accs = {s: 0.8 for s in dataset.sources}
        first = cache.orderings(accs)
        flipped = {
            s: 0.9 - i * 1e-3 for i, s in enumerate(sorted(accs, reverse=True))
        }
        second = cache.orderings(flipped)
        assert second == VoteOrderCache(dataset).orderings(flipped)
        assert first == cache.orderings(accs)  # rank flip back re-sorts

    def test_compacted_log_falls_back_to_full_rebuild(self):
        claims = _random_claims(random.Random(15), n_objects=10, coverage=8)
        dataset = ClaimDataset(claims[:60])
        cache = VoteOrderCache(dataset)
        accs = {s: 0.8 for s in {c.source for c in claims}}
        cache.orderings(accs)
        dataset.add_claims(claims[60:])
        dataset.compact_log()  # strands the incremental delta
        after = cache.orderings(accs)
        assert after == VoteOrderCache(dataset).orderings(accs)
