"""Equivalence tests for the batch evidence engine (EvidenceCache).

The batch engine must be a pure optimisation: in exact mode it
reproduces the per-pair ``collect_evidence`` / ``pair_posterior`` path
bit for bit (same accumulation order — both walk the overlap in sorted
object order); the fast aggregate path (uniform false-value model,
``expected_log``) is mathematically identical and is checked to
float-noise tolerance.
"""

import pytest

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams
from repro.dependence.bayes import (
    PairEvidence,
    collect_evidence,
    pair_posterior,
    uniform_value_probabilities,
)
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import discover_dependence
from repro.exceptions import DataError
from repro.generators import BookstoreConfig, generate_bookstore_catalog
from repro.truth import Accu, Depen

ALL_PARAMS = [
    DependenceParams(false_value_model=model, evidence_form=form)
    for model in ("uniform", "empirical")
    for form in ("expected_log", "marginal")
]


def _accuracies(dataset, value=0.8):
    return {s: value for s in dataset.sources}


def _assert_identical(batch: PairEvidence, reference: PairEvidence):
    """Field-for-field, bit-for-bit equality of two evidence records."""
    assert batch.s1 == reference.s1
    assert batch.s2 == reference.s2
    assert batch.kt_soft == reference.kt_soft
    assert batch.kf_soft == reference.kf_soft
    assert batch.kd == reference.kd
    assert batch.shared_values == reference.shared_values
    assert batch.shared_count == reference.shared_count


def _assert_exact_equivalence(dataset, value_probs, params, accuracies):
    cache = EvidenceCache(dataset, params=params, exact=True)
    all_evidence = cache.collect_all(value_probs)
    assert all_evidence  # the workload must exercise at least one pair
    for (s1, s2), evidence in all_evidence.items():
        reference = collect_evidence(
            dataset,
            s1,
            s2,
            value_probs,
            with_popularity=params.false_value_model == "empirical",
        )
        _assert_identical(evidence, reference)
        batch_post = pair_posterior(evidence, accuracies[s1], accuracies[s2], params)
        ref_post = pair_posterior(reference, accuracies[s1], accuracies[s2], params)
        assert batch_post.p_independent == ref_post.p_independent
        assert batch_post.p_s1_copies_s2 == ref_post.p_s1_copies_s2
        assert batch_post.p_s2_copies_s1 == ref_post.p_s2_copies_s1


class TestExactEquivalence:
    @pytest.mark.parametrize("params", ALL_PARAMS)
    def test_table1_uniform_start(self, table1, params):
        probs = uniform_value_probabilities(table1)
        _assert_exact_equivalence(table1, probs, params, _accuracies(table1))

    @pytest.mark.parametrize("params", ALL_PARAMS)
    def test_table1_hardened_probabilities(self, table1, params):
        """Second-round shape: soft-but-peaked value probabilities."""
        result = Accu().discover(table1)
        clamped = {
            s: min(0.95, max(0.05, a)) for s, a in result.accuracies.items()
        }
        _assert_exact_equivalence(table1, result.distributions, params, clamped)

    def test_bookstore_generator(self):
        config = BookstoreConfig(
            n_stores=24,
            n_books=60,
            n_listings=700,
            max_books_per_store=55,
            n_copier_cliques=3,
            clique_size=3,
            copier_min_books=8,
            copier_max_books=40,
        )
        catalog, _ = generate_bookstore_catalog(config, seed=3)
        dataset = catalog.field_claims("authors")
        probs = uniform_value_probabilities(dataset)
        for params in ALL_PARAMS:
            _assert_exact_equivalence(
                dataset, probs, params, _accuracies(dataset)
            )

    def test_disjoint_sources_yield_prior(self):
        """A candidate pair with no overlap carries zero evidence."""
        dataset = ClaimDataset.from_table(
            {
                "o1": {"A": "x"},
                "o2": {"A": "y"},
                "o3": {"B": "u"},
                "o4": {"B": "v"},
            }
        )
        probs = uniform_value_probabilities(dataset)
        params = DependenceParams(alpha=0.2)
        cache = EvidenceCache(dataset, [("A", "B")], params=params, exact=True)
        evidence = cache.collect_all(probs)[("A", "B")]
        _assert_identical(evidence, collect_evidence(dataset, "A", "B", probs))
        assert evidence.shared_count == 0
        assert evidence.overlap_size == 0
        posterior = pair_posterior(evidence, 0.8, 0.8, params)
        assert posterior.p_dependent == pytest.approx(params.alpha)

    def test_cache_rejects_self_pair_and_unknown_pair(self, table1):
        with pytest.raises(DataError):
            EvidenceCache(table1, [("S1", "S1")])
        cache = EvidenceCache(table1, [("S1", "S2")])
        cache.refresh(uniform_value_probabilities(table1))
        with pytest.raises(DataError):
            cache.evidence("S1", "S3")

    def test_evidence_before_refresh_rejected(self, table1):
        cache = EvidenceCache(table1, [("S1", "S2")])
        with pytest.raises(DataError, match="refresh"):
            cache.evidence("S1", "S2")

    def test_model_mismatch_rejected(self, table1):
        """A cache built for one evidence model cannot score another."""
        probs = uniform_value_probabilities(table1)
        accs = _accuracies(table1)
        cache = EvidenceCache(table1, params=DependenceParams())
        empirical = DependenceParams(false_value_model="empirical")
        with pytest.raises(DataError, match="false_value_model"):
            discover_dependence(
                table1, probs, accs, empirical, evidence_cache=cache
            )

    def test_cache_plus_candidate_pairs_rejected(self, table1):
        probs = uniform_value_probabilities(table1)
        accs = _accuracies(table1)
        cache = EvidenceCache(table1, params=DependenceParams())
        with pytest.raises(DataError, match="not both"):
            discover_dependence(
                table1,
                probs,
                accs,
                DependenceParams(),
                candidate_pairs=[("S1", "S2")],
                evidence_cache=cache,
            )

    def test_pair_key_order_insensitive(self, table1):
        probs = uniform_value_probabilities(table1)
        cache = EvidenceCache(table1, [("S2", "S1")], exact=True)
        cache.refresh(probs)
        evidence = cache.evidence("S1", "S2")
        _assert_identical(evidence, collect_evidence(table1, "S1", "S2", probs))


class TestFastAggregatePath:
    """uniform + expected_log: the per-value loop collapses to aggregates."""

    def test_skips_shared_values(self, table1):
        cache = EvidenceCache(table1, params=DependenceParams())
        for evidence in cache.collect_all(
            uniform_value_probabilities(table1)
        ).values():
            assert evidence.shared_values is None
            assert evidence.shared_count is not None

    def test_aggregate_counts_match_reference_exactly(self, table1):
        probs = uniform_value_probabilities(table1)
        cache = EvidenceCache(table1, params=DependenceParams())
        for (s1, s2), evidence in cache.collect_all(probs).items():
            reference = collect_evidence(table1, s1, s2, probs)
            assert evidence.kt_soft == reference.kt_soft
            assert evidence.kf_soft == reference.kf_soft
            assert evidence.kd == reference.kd
            assert evidence.shared_count == reference.shared_count

    def test_posteriors_match_per_value_path(self, table1):
        probs = uniform_value_probabilities(table1)
        params = DependenceParams()
        accs = _accuracies(table1)
        cache = EvidenceCache(table1, params=params)
        for (s1, s2), evidence in cache.collect_all(probs).items():
            fast = pair_posterior(evidence, accs[s1], accs[s2], params)
            per_value = pair_posterior(
                collect_evidence(table1, s1, s2, probs), accs[s1], accs[s2], params
            )
            assert fast.p_independent == pytest.approx(
                per_value.p_independent, rel=1e-12, abs=1e-12
            )
            assert fast.p_s1_copies_s2 == pytest.approx(
                per_value.p_s1_copies_s2, rel=1e-12, abs=1e-12
            )

    def test_marginal_form_disables_fast_path(self, table1):
        cache = EvidenceCache(
            table1, params=DependenceParams(evidence_form="marginal")
        )
        for evidence in cache.collect_all(
            uniform_value_probabilities(table1)
        ).values():
            assert evidence.shared_values is not None


class TestDiscoverDependenceWiring:
    def test_batch_graph_matches_per_pair_graph(self, copier_world):
        dataset, _ = copier_world
        probs = uniform_value_probabilities(dataset)
        accs = _accuracies(dataset)
        params = DependenceParams()
        legacy = discover_dependence(dataset, probs, accs, params, batch=False)
        cache = EvidenceCache(dataset, params=params, exact=True)
        batch = discover_dependence(
            dataset, probs, accs, params, evidence_cache=cache
        )
        assert len(batch) == len(legacy)
        for pair in legacy:
            other = batch.get(pair.s1, pair.s2)
            assert other.p_independent == pair.p_independent
            assert other.p_s1_copies_s2 == pair.p_s1_copies_s2
            assert other.p_s2_copies_s1 == pair.p_s2_copies_s1

    def test_cache_reuse_across_rounds_is_stable(self, table1):
        """Refreshing the same cache twice with the same probs is idempotent."""
        probs = uniform_value_probabilities(table1)
        accs = _accuracies(table1)
        params = DependenceParams()
        cache = EvidenceCache(table1, params=params)
        first = discover_dependence(
            table1, probs, accs, params, evidence_cache=cache
        )
        second = discover_dependence(
            table1, probs, accs, params, evidence_cache=cache
        )
        for pair in first:
            assert second.get(pair.s1, pair.s2).p_dependent == pair.p_dependent

    def test_depen_end_to_end_matches_legacy_rounds(self, table1):
        """The wired Depen still solves Table 1 (Example 3.1)."""
        result = Depen().discover(table1)
        assert result.dependence.probability("S4", "S5") > 0.9
        assert result.dependence.probability("S1", "S2") < 0.2


class TestOverlapSizeRegression:
    """Satellite bugfix: overlap_size from an explicit integer count."""

    def test_hand_built_fractional_soft_counts(self):
        # Marginal-style soft counts need not sum to an integer; the old
        # round(kt + kf) + kd misreported this overlap as 7 (round(5.5)
        # rounds up to 6) instead of the true 5 shared + 1 differing.
        fixed = PairEvidence(
            s1="A", s2="B", kt_soft=2.6, kf_soft=2.9, kd=1, shared_count=5
        )
        assert fixed.overlap_size == 6
        legacy = PairEvidence(s1="A", s2="B", kt_soft=2.6, kf_soft=2.9, kd=1)
        assert legacy.shared_count is None
        assert legacy.overlap_size == 7  # documents the fallback's drift hazard

    def test_collect_evidence_populates_shared_count(self, table1):
        # Adversarial soft probabilities: non-representable fractions
        # accumulate drift in kt_soft/kf_soft, but the integer count is
        # exact by construction.
        probs = {
            obj: {value: 1.0 / 3.0 for value in table1.values_for(obj)}
            for obj in table1.objects
        }
        for s1, s2 in (("S3", "S4"), ("S3", "S5"), ("S1", "S2")):
            evidence = collect_evidence(table1, s1, s2, probs)
            assert evidence.shared_count == len(evidence.shared_values)
            assert (
                evidence.overlap_size
                == evidence.shared_count + evidence.kd
                == len(table1.overlap(s1, s2))
            )

    def test_batch_engine_populates_shared_count(self, table1):
        cache = EvidenceCache(table1, params=DependenceParams())
        for (s1, s2), evidence in cache.collect_all(
            uniform_value_probabilities(table1)
        ).items():
            assert evidence.overlap_size == len(table1.overlap(s1, s2))
