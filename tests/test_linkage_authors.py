"""Tests for author-name parsing and author-list similarity."""

import pytest

from repro.exceptions import LinkageError
from repro.linkage.authors import (
    author_list_similarity,
    canonical_author_list,
    name_similarity,
    parse_author,
)


class TestParseAuthor:
    def test_first_last(self):
        name = parse_author("Jeffrey Ullman")
        assert name.first == ("jeffrey",)
        assert name.last == "ullman"

    def test_last_comma_first(self):
        name = parse_author("Ullman, Jeffrey D.")
        assert name.last == "ullman"
        assert name.first == ("jeffrey", "d")

    def test_initials(self):
        name = parse_author("J. D. Ullman")
        assert name.first == ("j", "d")
        assert name.initials() == ("j", "d")

    def test_hyphenated_surname(self):
        name = parse_author("Hector Garcia-Molina")
        assert name.last == "garcia-molina"

    def test_unparseable_raises(self):
        with pytest.raises(LinkageError):
            parse_author("12345")

    def test_canonical_form(self):
        assert parse_author("Ullman, Jeffrey").canonical() == "jeffrey ullman"


class TestNameSimilarity:
    def test_format_variants_score_high(self):
        assert name_similarity("Jeffrey Ullman", "Ullman, Jeffrey") > 0.95

    def test_initial_matches_full_name(self):
        assert name_similarity("J. Ullman", "Jeffrey Ullman") > 0.9

    def test_different_people_score_low(self):
        assert name_similarity("Jeffrey Ullman", "Divesh Srivastava") < 0.6

    def test_misspelling_scores_between(self):
        sim = name_similarity("Jeffrey Ullman", "Jeffrey Ulman")
        assert 0.8 < sim < 1.0

    def test_same_family_different_given(self):
        high = name_similarity("Jeffrey Ullman", "Jeffrey Ullman")
        cross = name_similarity("Jeffrey Ullman", "Jennifer Ullman")
        assert cross < high


class TestAuthorListSimilarity:
    def test_identical(self):
        authors = ("Jeffrey Ullman", "Jennifer Widom")
        assert author_list_similarity(authors, authors) == 1.0

    def test_reformatted_list_close_to_one(self):
        a = ("Jeffrey Ullman", "Jennifer Widom")
        b = ("Ullman, Jeffrey", "Widom, Jennifer")
        assert author_list_similarity(a, b) > 0.9

    def test_missing_author_penalised(self):
        a = ("Jeffrey Ullman", "Jennifer Widom")
        b = ("Jeffrey Ullman",)
        sim = author_list_similarity(a, b)
        assert 0.3 < sim < 0.8

    def test_misorder_mildly_penalised(self):
        a = ("Jeffrey Ullman", "Jennifer Widom")
        b = ("Jennifer Widom", "Jeffrey Ullman")
        sim = author_list_similarity(a, b)
        assert 0.85 < sim < 1.0

    def test_wrong_author_penalised_more_than_misorder(self):
        a = ("Jeffrey Ullman", "Jennifer Widom")
        misordered = ("Jennifer Widom", "Jeffrey Ullman")
        wrong = ("Jeffrey Ullman", "Random Stranger")
        assert author_list_similarity(a, wrong) < author_list_similarity(
            a, misordered
        )

    def test_empty_list(self):
        assert author_list_similarity((), ("Jeffrey Ullman",)) == 0.0

    def test_symmetry(self):
        a = ("Jeffrey Ullman", "Jennifer Widom")
        b = ("Jennifer Widom",)
        assert author_list_similarity(a, b) == pytest.approx(
            author_list_similarity(b, a)
        )


class TestCanonicalisation:
    def test_canonical_author_list(self):
        raw = ("Ullman, Jeffrey", "J. Widom")
        assert canonical_author_list(raw) == ("jeffrey ullman", "j widom")

    def test_unparseable_entry_lowercased(self):
        assert canonical_author_list(("???",)) == ("???",)
