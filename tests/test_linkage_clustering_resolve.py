"""Tests for representation clustering and joint linkage + truth discovery."""

import pytest

from repro.core.dataset import ClaimDataset
from repro.exceptions import LinkageError
from repro.linkage.clustering import (
    canonicalisation_map,
    choose_representative,
    cluster_values,
)
from repro.linkage.resolve import JointResolver
from repro.linkage.strings import jaro_winkler_similarity


class TestClustering:
    def test_single_link_chains(self):
        # "abcdef" ~ "abcdex" ~ "abcdxx": chain into one cluster.
        clusters = cluster_values(
            ["abcdef", "abcdex", "abcdxx", "zzzzzz"],
            jaro_winkler_similarity,
            threshold=0.9,
        )
        assert ["abcdef", "abcdex", "abcdxx"] in clusters
        assert ["zzzzzz"] in clusters

    def test_threshold_validation(self):
        with pytest.raises(LinkageError):
            cluster_values(["a"], jaro_winkler_similarity, threshold=0.0)

    def test_bad_similarity_function_rejected(self):
        with pytest.raises(LinkageError):
            cluster_values(["a", "b"], lambda x, y: 2.0, threshold=0.5)

    def test_deterministic_output_order(self):
        values = ["beta", "alpha", "betb"]
        first = cluster_values(values, jaro_winkler_similarity, 0.9)
        second = cluster_values(list(reversed(values)), jaro_winkler_similarity, 0.9)
        assert first == second

    def test_representative_prefers_support(self):
        rep = choose_representative(["short", "longer"], support={"short": 5})
        assert rep == "short"

    def test_representative_prefers_length_without_support(self):
        rep = choose_representative(["J. Ullman", "Jeffrey Ullman"])
        assert rep == "Jeffrey Ullman"

    def test_representative_empty_cluster(self):
        with pytest.raises(LinkageError):
            choose_representative([])

    def test_canonicalisation_map_total(self):
        mapping = canonicalisation_map(
            ["abcdef", "abcdex", "zzzzzz"], jaro_winkler_similarity, 0.9
        )
        assert set(mapping) == {"abcdef", "abcdex", "zzzzzz"}
        assert mapping["abcdef"] == mapping["abcdex"]


class TestJointResolver:
    @pytest.fixture
    def dirty_dataset(self):
        """Five sources; the truth 'Jeffrey Ullman' appears in two
        spellings; 'Xing Dong'-style wrong value appears once."""
        return ClaimDataset.from_table(
            {
                "book1": {
                    "A": "Jeffrey Ullman",
                    "B": "Jeffrey Ullman",
                    "C": "Jeffrey Ulman",   # misspelling (gray zone)
                    "D": "Jeffrey Ullman",
                    "E": "Divesh Srivastava",  # genuinely different
                },
                "book2": {
                    "A": "Jennifer Widom",
                    "B": "Jennifer Widom",
                    "C": "Jennifer Widom",
                    "D": "J. Widom",
                    "E": "Jennifer Widom",
                },
            }
        )

    def test_resolves_spelling_into_truth(self, dirty_dataset):
        resolver = JointResolver(similarity=jaro_winkler_similarity)
        result = resolver.resolve(dirty_dataset)
        assert result.truth.decisions["book1"] == "Jeffrey Ullman"
        assert result.truth.decisions["book2"] == "Jennifer Widom"

    def test_labels_three_way(self, dirty_dataset):
        resolver = JointResolver(similarity=jaro_winkler_similarity)
        result = resolver.resolve(dirty_dataset)
        assert result.label("book1", "Jeffrey Ullman") == "truth"
        assert result.label("book1", "Jeffrey Ulman") in ("alternative", "wrong")
        assert result.label("book1", "Divesh Srivastava") == "wrong"

    def test_gray_zone_merge_requires_weak_support(self):
        """A well-supported near-variant stays a competing value."""
        dataset = ClaimDataset.from_table(
            {
                "o": {
                    "A": "Jeffrey Ullman",
                    "B": "Jeffrey Ullman",
                    "C": "Jeffrey Ulman",
                    "D": "Jeffrey Ulman",
                    "E": "Jeffrey Ulman",
                }
            }
        )
        resolver = JointResolver(
            similarity=jaro_winkler_similarity,
            merge_threshold=0.99,
            gray_threshold=0.9,
        )
        result = resolver.resolve(dataset)
        # Both spellings well supported: no absorption, majority wins.
        assert result.canonical_map[("o", "Jeffrey Ulman")] == "Jeffrey Ulman"

    def test_unresolved_value_label_raises(self, dirty_dataset):
        resolver = JointResolver(similarity=jaro_winkler_similarity)
        result = resolver.resolve(dirty_dataset)
        with pytest.raises(LinkageError):
            result.label("book1", "Never Claimed")

    def test_threshold_validation(self):
        with pytest.raises(LinkageError):
            JointResolver(
                similarity=jaro_winkler_similarity,
                merge_threshold=0.5,
                gray_threshold=0.8,
            )
        with pytest.raises(LinkageError):
            JointResolver(similarity=jaro_winkler_similarity, support_ratio=1.5)
