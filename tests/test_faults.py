"""Fault injection and supervised execution.

Two layers under test. The harness itself
(:mod:`repro.exec.faults`): the ``REPRO_FAULTS`` grammar, per-process
per-clause trigger counters, seeded rate draws, and the worker-only
default scope. The supervisor (:mod:`repro.exec.supervisor`): bounded
retries with exponential jittered backoff, deadline enforcement via
watchdog, transparent resident-state re-adoption through a state
provider, and the degradation ladder — plus the end-to-end acceptance
scenarios: a SIGKILLed resident worker mid-sync and a hung worker
blowing its deadline both leave the evidence cache bit-for-bit equal
to a fault-free serial build.
"""

from __future__ import annotations

import random
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.exceptions import ExecutorFailureWarning, ParameterError
from repro.exec import (
    ExecutorCapabilities,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    ResidentWorkerLost,
    SerialExecutor,
    ShardExecutor,
    SupervisedExecutor,
    SupervisorPolicy,
    active_plan,
    make_executor,
)


# ---------------------------------------------------------------------------
# FaultPlan grammar and trigger semantics
# ---------------------------------------------------------------------------


class TestFaultPlanParsing:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=42;kill:resident.delta:at=5;"
            "hang:sweep:every=3:secs=30:scope=any;"
            "corrupt:delta:rate=0.25:times=2"
        )
        assert plan.seed == 42
        kill, hang, corrupt = plan.specs
        assert (kill.kind, kill.pattern, kill.at) == ("kill", "resident.delta", 5)
        assert kill.scope == "worker"  # the default
        assert (hang.every, hang.seconds, hang.scope) == (3, 30.0, "any")
        assert (corrupt.rate, corrupt.times) == (0.25, 2)

    def test_seed_defaults_to_zero(self):
        assert FaultPlan.parse("slow:sweep:at=1").seed == 0

    def test_empty_clauses_are_skipped(self):
        plan = FaultPlan.parse(" ; slow:sweep:at=1 ; ")
        assert len(plan.specs) == 1

    @pytest.mark.parametrize(
        "schedule",
        [
            "explode:sweep:at=1",  # unknown kind
            "kill:sweep",  # no trigger
            "kill:sweep:at=1:every=2",  # two triggers
            "kill:sweep:at=0",  # at < 1
            "corrupt:sweep:rate=1.5",  # rate out of range
            "kill:sweep:at=x",  # malformed value
            "kill:sweep:budget=3",  # unknown option
            "kill:sweep:at=1:scope=moon",  # unknown scope
            "kill",  # not kind:pattern
            "seed=x;kill:sweep:at=1",  # bad seed
            "hang:sweep:at=1:secs=-1",  # negative sleep
            "kill:sweep:at=1:times=0",  # times < 1
        ],
    )
    def test_malformed_schedules_rejected(self, schedule):
        with pytest.raises(ParameterError):
            FaultPlan.parse(schedule)

    def test_spec_requires_exactly_one_trigger(self):
        with pytest.raises(ParameterError, match="exactly one"):
            FaultSpec(kind="kill", pattern="sweep")

    def test_rate_draws_are_seeded_and_reproducible(self):
        def fire_pattern(plan):
            return [
                plan.fire("resident.sweep") is not None for _ in range(300)
            ]

        schedule = "seed=7;slow:sweep:rate=0.2:secs=0:scope=any"
        first = fire_pattern(FaultPlan.parse(schedule))
        again = fire_pattern(FaultPlan.parse(schedule))
        assert first == again
        assert 20 < sum(first) < 120  # the rate actually draws
        reseeded = fire_pattern(
            FaultPlan.parse("seed=8;slow:sweep:rate=0.2:secs=0:scope=any")
        )
        assert first != reseeded

    def test_wrap_leaves_unmatched_tasks_untouched(self):
        plan = FaultPlan.parse("corrupt:resident.delta:at=1:scope=any")
        fn = len
        assert plan.wrap("evidence.sweep_shard", fn) is fn

    def test_corrupt_fires_once_then_counts_past(self):
        plan = FaultPlan.parse("corrupt:sweep:at=1:scope=any")
        wrapped = plan.wrap("resident.sweep", len)
        with pytest.raises(FaultInjected):
            wrapped([1, 2])
        assert wrapped([1, 2]) == 2  # at=1 already passed

    def test_every_with_times_cap(self):
        plan = FaultPlan.parse("corrupt:sweep:every=1:times=2:scope=any")
        wrapped = plan.wrap("resident.sweep", len)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                wrapped([])
        assert wrapped([1]) == 1  # capped after two fires

    def test_worker_scope_never_fires_in_parent(self):
        # The default scope: a kill clause must be inert in the test
        # runner process (we are nobody's child worker).
        plan = FaultPlan.parse("kill:sweep:every=1")
        assert plan.fire("resident.sweep") is None

    def test_slow_fires_and_lets_the_task_run(self):
        plan = FaultPlan.parse("slow:sweep:at=1:secs=0:scope=any")
        assert plan.fire("resident.sweep").kind == "slow"

    def test_active_plan_tracks_env_changes(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not active_plan()
        monkeypatch.setenv("REPRO_FAULTS", "corrupt:sweep:at=1")
        plan = active_plan()
        assert plan and plan.specs[0].kind == "corrupt"
        assert active_plan() is plan  # unchanged env: cached
        monkeypatch.setenv("REPRO_FAULTS", "seed=3;slow:delta:at=2")
        assert active_plan().seed == 3
        monkeypatch.delenv("REPRO_FAULTS")
        assert not active_plan()


# ---------------------------------------------------------------------------
# SupervisedExecutor: retries, backoff, deadlines, re-adoption, ladder
# ---------------------------------------------------------------------------


class _FlakyExecutor(SerialExecutor):
    """Fails the first ``failures`` run() calls, then behaves."""

    def __init__(self, failures, exc_factory):
        super().__init__()
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = 0

    def run(self, task, deltas):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return super().run(task, deltas)


class _WedgedExecutor(SerialExecutor):
    """Hangs until terminate() is called, then behaves."""

    def __init__(self):
        super().__init__()
        self.terminated = 0
        self.hang = True

    def run(self, task, deltas):
        if self.hang:
            time.sleep(2.0)
        return super().run(task, deltas)

    def terminate(self):
        self.terminated += 1
        self.hang = False


class _FakeResidentExecutor(ShardExecutor):
    """Records calls; loses shard state exactly once on sweep."""

    capabilities = ExecutorCapabilities(
        resident_state=True, serialization="none"
    )

    def __init__(self, lose_once=True):
        self.calls = []
        self.lose_once = lose_once
        self._closed = False

    def run_shards(self, task, deltas):
        self.calls.append((task, sorted(deltas)))
        if task == "resident.sweep" and self.lose_once:
            self.lose_once = False
            raise ResidentWorkerLost(tuple(sorted(deltas)))
        return {shard_id: (task, shard_id) for shard_id in deltas}

    def submit(self, shard_id, task, delta):
        return self.run_shards(task, {shard_id: delta})[shard_id]

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed


class TestSupervisedExecutor:
    def _supervised(self, inner, backend="process", sleeps=None, **policy):
        return SupervisedExecutor(
            inner,
            backend=backend,
            policy=SupervisorPolicy(**policy),
            sleep=(sleeps.append if sleeps is not None else lambda _d: None),
        )

    def test_transient_failures_retried_with_backoff(self):
        sleeps = []
        flaky = _FlakyExecutor(2, lambda: BrokenProcessPool("worker died"))
        sup = self._supervised(flaky, sleeps=sleeps, max_retries=3)
        assert sup.run(len, [[1], [1, 2]]) == [1, 2]
        health = sup.health()
        assert health["retries"] == 2
        assert health["degrades"] == 0
        assert not health["degraded"]
        # Exponential growth with bounded jitter: base=0.05, factor=2,
        # jitter=0.25 => first in [0.05, 0.0625), second in [0.1, 0.125).
        assert len(sleeps) == 2
        assert 0.05 <= sleeps[0] < 0.0625
        assert 0.10 <= sleeps[1] < 0.1250

    def test_backoff_is_seeded(self):
        def delays(seed):
            sleeps = []
            flaky = _FlakyExecutor(2, lambda: BrokenProcessPool("x"))
            sup = self._supervised(
                flaky, sleeps=sleeps, max_retries=2, seed=seed
            )
            sup.run(len, [[1]])
            return sleeps

        assert delays(5) == delays(5)
        assert delays(5) != delays(6)

    def test_exhausted_retries_degrade_down_the_ladder(self):
        flaky = _FlakyExecutor(10**9, lambda: BrokenProcessPool("dead"))
        sup = self._supervised(flaky, max_retries=1)
        with pytest.warns(ExecutorFailureWarning, match="degrading to 'numpy'"):
            assert sup.run(len, [[1], []]) == [1, 0]
        health = sup.health()
        assert health["degraded"]
        assert health["backend"] == "numpy"
        assert health["original_backend"] == "process"
        assert health["degrades"] == 1
        assert flaky.calls == 2  # max_retries + 1 attempts on the old rung

    def test_degrade_disabled_raises_the_failure(self):
        flaky = _FlakyExecutor(10**9, lambda: BrokenProcessPool("dead"))
        sup = self._supervised(
            flaky, max_retries=1, degrade_on_failure=False
        )
        with pytest.raises(BrokenProcessPool):
            sup.run(len, [[1]])

    def test_bottom_rung_has_nowhere_to_go(self):
        flaky = _FlakyExecutor(10**9, lambda: RuntimeError("still broken"))
        sup = self._supervised(flaky, backend="serial", max_retries=0)
        with pytest.raises(RuntimeError, match="still broken"):
            sup.run(len, [[1]])

    def test_non_retryable_errors_propagate_immediately(self):
        flaky = _FlakyExecutor(10**9, lambda: ValueError("caller bug"))
        sup = self._supervised(flaky, max_retries=3)
        with pytest.raises(ValueError, match="caller bug"):
            sup.run(len, [[1]])
        assert flaky.calls == 1
        assert sup.health()["retries"] == 0

    def test_deadline_watchdog_terminates_hung_batch(self):
        wedged = _WedgedExecutor()
        sup = self._supervised(
            wedged, max_retries=1, task_deadline=0.2
        )
        sup._WATCHDOG_GRACE = 0.05
        assert sup.run(len, [[1], [1, 2]]) == [1, 2]
        assert wedged.terminated == 1
        health = sup.health()
        assert health["deadline_hits"] == 1
        assert not health["degraded"]

    def test_worker_loss_readopts_through_state_provider(self):
        fake = _FakeResidentExecutor()
        packed = []

        def provider(shard_ids):
            packed.append(tuple(shard_ids))
            return {shard_id: f"state-{shard_id}" for shard_id in shard_ids}

        sup = SupervisedExecutor(
            fake,
            backend="resident",
            policy=SupervisorPolicy(max_retries=2),
            state_provider=provider,
            sleep=lambda _d: None,
        )
        assert sup.handles_worker_loss
        out = sup.run_shards("resident.sweep", {0: None, 1: None})
        assert out == {0: ("resident.sweep", 0), 1: ("resident.sweep", 1)}
        # adopt, sweep (lost), re-adopt, sweep — the loss is invisible.
        assert fake.calls == [
            ("resident.adopt", [0, 1]),
            ("resident.sweep", [0, 1]),
            ("resident.adopt", [0, 1]),
            ("resident.sweep", [0, 1]),
        ]
        assert packed == [(0, 1), (0, 1)]
        health = sup.health()
        assert health["worker_losses"] == 1
        assert health["readoptions"] == 2
        assert health["adopted_shards"] == 2

    def test_worker_loss_without_provider_is_the_callers_problem(self):
        fake = _FakeResidentExecutor()
        sup = SupervisedExecutor(
            fake,
            backend="resident",
            policy=SupervisorPolicy(max_retries=3),
            sleep=lambda _d: None,
        )
        assert not sup.handles_worker_loss
        with pytest.raises(ResidentWorkerLost):
            sup.run_shards("resident.sweep", {0: None})
        assert fake.calls == [("resident.sweep", [0])]  # no retry, no adopt

    def test_make_executor_wires_supervision(self):
        supervised = make_executor(
            "process", 2, supervise=SupervisorPolicy(max_retries=1)
        )
        try:
            assert isinstance(supervised, SupervisedExecutor)
            assert supervised.backend == "process"
        finally:
            supervised.close()
        raw = make_executor("process", 1)
        try:
            assert not isinstance(raw, SupervisedExecutor)
        finally:
            raw.close()
        # In-process backends have no transport to supervise.
        serial = make_executor("serial", supervise=SupervisorPolicy())
        assert isinstance(serial, SerialExecutor)

    def test_policy_validation(self):
        with pytest.raises(ParameterError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ParameterError):
            SupervisorPolicy(task_deadline=0.0)
        with pytest.raises(ParameterError):
            SupervisorPolicy(backoff_factor=0.5)

    def test_supervision_params_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_TASK_DEADLINE", "2.5")
        params = DependenceParams()
        assert params.max_retries == 5
        assert params.task_deadline == 2.5
        # Explicit values always beat the environment.
        explicit = DependenceParams(max_retries=1)
        assert explicit.max_retries == 1
        policy = SupervisorPolicy.from_params(params)
        assert (policy.max_retries, policy.task_deadline) == (5, 2.5)


# ---------------------------------------------------------------------------
# acceptance scenarios: seeded faults against the real resident pool
# ---------------------------------------------------------------------------


def _random_claims(rng, n_sources=10, n_objects=40, coverage=20, n_values=3):
    claims = []
    for i in range(n_sources):
        for obj in rng.sample(range(n_objects), coverage):
            claims.append(
                Claim(
                    source=f"S{i:02d}",
                    object=f"o{obj:03d}",
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


def _assert_same_evidence(incremental, cold, context=""):
    assert set(incremental) == set(cold), context
    for key in cold:
        a, b = incremental[key], cold[key]
        assert (a.s1, a.s2) == (b.s1, b.s2), (context, key)
        assert a.kt_soft == b.kt_soft, (context, key)
        assert a.kf_soft == b.kf_soft, (context, key)
        assert a.kd == b.kd, (context, key)
        assert a.shared_values == b.shared_values, (context, key)


class TestFaultScenarios:
    def _resident_cache(self, claims, **overrides):
        params = DependenceParams(
            parallel_backend="resident",
            num_workers=2,
            shard_size=7,
            **overrides,
        )
        return EvidenceCache(ClaimDataset(list(claims)), params=params)

    def test_sigkill_mid_sync_recovers_bit_for_bit(self, monkeypatch):
        """A worker SIGKILLed mid delta-sync is respawned, re-adopted
        and the whole batch retried — no degradation, results equal a
        fault-free serial build at every round."""
        monkeypatch.setenv("REPRO_FAULTS", "kill:resident.delta:at=4")
        rng = random.Random(23)
        cache = self._resident_cache(_random_claims(rng))
        try:
            for round_no in range(5):
                cache.dataset.add_claims(
                    [
                        Claim(src, f"r{round_no}-{i}", f"w{i}")
                        for i in range(4)
                        for src in ("S00", "S01")
                    ]
                )
                cache.sync()
                probs = uniform_value_probabilities(cache.dataset)
                cold = EvidenceCache(
                    ClaimDataset(list(cache.dataset)),
                    params=DependenceParams(),
                )
                _assert_same_evidence(
                    cache.collect_all(probs),
                    cold.collect_all(probs),
                    context=f"round {round_no}",
                )
            health = cache.execution_health()
            assert health["supervised"]
            assert health["worker_losses"] >= 1
            assert not health["degraded"]
            assert health["backend"] == "resident"
        finally:
            cache.close()

    def test_hung_worker_deadline_degrades_to_serial(self, monkeypatch):
        """A worker that hangs past its deadline is reaped; once retries
        are exhausted (the respawned worker hangs again — per-process
        counters restart) the ladder lands on serial, bit-for-bit."""
        monkeypatch.setenv("REPRO_FAULTS", "hang:resident.sweep:at=1:secs=30")
        rng = random.Random(31)
        claims = _random_claims(rng)
        with pytest.warns(ExecutorFailureWarning, match="degrading"):
            cache = self._resident_cache(
                claims, max_retries=1, task_deadline=0.5
            )
        try:
            probs = uniform_value_probabilities(cache.dataset)
            observed = cache.collect_all(probs)
            cold = EvidenceCache(
                ClaimDataset(list(claims)), params=DependenceParams()
            )
            _assert_same_evidence(observed, cold.collect_all(probs))
            health = cache.execution_health()
            assert health["supervised"]
            assert health["degraded"]
            assert health["backend"] == "serial"
            assert health["worker_losses"] >= 1
        finally:
            cache.close()

    def test_corrupt_payload_degrades_stateless_ladder(self, monkeypatch):
        """Injected payload corruption on the stateless pool: ephemeral
        workers restart their counters every retry, so ``at=1`` refires
        each attempt, retries exhaust, and the ladder steps to the
        in-process rung — bit-for-bit."""
        monkeypatch.setenv(
            "REPRO_FAULTS", "corrupt:evidence.sweep_shard:at=1"
        )
        rng = random.Random(47)
        claims = _random_claims(rng)
        params = DependenceParams(
            parallel_backend="process", num_workers=2, shard_size=7
        )
        with pytest.warns(ExecutorFailureWarning, match="degrading"):
            cache = EvidenceCache(ClaimDataset(list(claims)), params=params)
        try:
            assert cache.execution_health()["degraded"]
            probs = uniform_value_probabilities(cache.dataset)
            observed = cache.collect_all(probs)
            cold = EvidenceCache(
                ClaimDataset(list(claims)), params=DependenceParams()
            )
            _assert_same_evidence(observed, cold.collect_all(probs))
        finally:
            cache.close()
