"""Mutation-algebra tests: retraction, correction, MutationBatch.

The contract of the mutation tentpole: after *any* mix of adds,
retractions and corrections — applied through the unified
``MutationBatch`` surface — the incrementally repaired
:class:`EvidenceCache` is bit-for-bit identical to a cold rebuild on
the post-mutation dataset, for every entry store and parallel backend
(resident workers included). The hypothesis property here pins exactly
that; the rest covers the batch API itself, the mutation-log semantics
under removal, compaction bounding a correction storm, and the
session-level apply/feed plumbing.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core.claims import Claim
from repro.core.dataset import (
    ABSENT,
    ClaimDataset,
    IngestDelta,
    MutationBatch,
    MutationDelta,
)
from repro.core.params import DependenceParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.entrystore import COMPACT_MIN_DEAD
from repro.dependence.evidence import EvidenceCache
from repro.dependence.streaming import StreamingDependenceEngine
from repro.exceptions import DataError
from repro.session import Session

REFERENCE_PARAMS = DependenceParams(
    parallel_backend="serial", entry_store="list"
)


def _assert_same_evidence(incremental, cold, context=""):
    assert set(incremental) == set(cold), context
    for key in cold:
        a, b = incremental[key], cold[key]
        assert (a.s1, a.s2) == (b.s1, b.s2), (context, key)
        assert a.kt_soft == b.kt_soft, (context, key)
        assert a.kf_soft == b.kf_soft, (context, key)
        assert a.kd == b.kd, (context, key)
        assert a.shared_values == b.shared_values, (context, key)
        assert a.shared_count == b.shared_count, (context, key)


def _seed_claims(rng, n_sources=8, n_objects=20, coverage=12, n_values=3):
    sources = [f"S{i:02d}" for i in range(n_sources)]
    objects = [f"o{i:03d}" for i in range(n_objects)]
    claims = []
    for source in sources:
        for obj in rng.sample(objects, coverage):
            claims.append(
                Claim(
                    source=source,
                    object=obj,
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


def _random_batch(rng, dataset, n_values=3):
    """A mixed batch drawn against the dataset's current state."""
    live = sorted((c.source, c.object) for c in dataset)
    retractions = tuple(
        rng.sample(live, min(len(live), rng.randrange(0, 4)))
    )
    retracted = set(retractions)
    correctable = [key for key in live if key not in retracted]
    corrections = tuple(
        Claim(source=s, object=o, value=f"v{rng.randrange(n_values)}")
        for s, o in rng.sample(
            correctable, min(len(correctable), rng.randrange(0, 4))
        )
    )
    # Adds must not blindly re-assert an occupied key (that raises by
    # design); retracted keys are fair game — the batch order makes
    # retract-then-re-add legal.
    occupied = set(live) - retracted
    adds = []
    for _ in range(rng.randrange(0, 6)):
        key = (f"S{rng.randrange(10):02d}", f"o{rng.randrange(24):03d}")
        if key in occupied:
            continue
        occupied.add(key)
        adds.append(
            Claim(
                source=key[0],
                object=key[1],
                value=f"v{rng.randrange(n_values)}",
            )
        )
    return MutationBatch(
        adds=tuple(adds), retractions=retractions, corrections=corrections
    )


class TestMutationBatchApi:
    def test_batch_counts_and_truthiness(self):
        batch = MutationBatch(
            adds=(Claim(source="A", object="o", value="x"),),
            retractions=(("B", "o"),),
            corrections=(Claim(source="C", object="o", value="y"),),
        )
        assert len(batch) == 3
        assert batch
        assert not MutationBatch()
        assert len(MutationBatch()) == 0

    def test_from_claims_is_an_add_only_batch(self):
        claims = [Claim(source="A", object="o", value="x")]
        batch = MutationBatch.from_claims(claims)
        assert batch.adds == tuple(claims)
        assert batch.retractions == ()
        assert batch.corrections == ()

    def test_apply_accepts_bare_iterables(self, tiny_dataset):
        delta = tiny_dataset.apply(
            [Claim(source="D", object="o1", value="x")]
        )
        assert delta.added == 1
        assert delta.retracted == 0

    def test_retract_removes_the_claim(self, tiny_dataset):
        delta = tiny_dataset.retract_claims([("C", "o1")])
        assert delta.retracted == 1
        assert tiny_dataset.value_of("C", "o1") is None
        assert ("C", "o1") not in tiny_dataset

    def test_retract_missing_claim_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.retract_claims([("A", "o999")])

    def test_correct_replaces_the_value(self, tiny_dataset):
        delta = tiny_dataset.correct_claims(
            [Claim(source="C", object="o1", value="x")]
        )
        assert delta.corrected == 1
        assert tiny_dataset.value_of("C", "o1") == "x"

    def test_correct_without_target_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.correct_claims(
                [Claim(source="Z", object="o1", value="x")]
            )

    def test_identical_correction_counts_as_duplicate(self, tiny_dataset):
        existing = tiny_dataset.value_of("A", "o1")
        before = tiny_dataset.version
        delta = tiny_dataset.correct_claims(
            [Claim(source="A", object="o1", value=existing)]
        )
        assert delta.corrected == 0
        assert delta.duplicates == 1
        assert tiny_dataset.version == before

    def test_batch_applies_retract_then_correct_then_add(self, tiny_dataset):
        # The retraction of (C, o1) must land before the add re-creates
        # it — order within one batch is retract -> correct -> add.
        delta = tiny_dataset.apply(
            MutationBatch(
                adds=(Claim(source="C", object="o1", value="z"),),
                retractions=(("C", "o1"),),
            )
        )
        assert delta.retracted == 1 and delta.added == 1
        assert tiny_dataset.value_of("C", "o1") == "z"

    def test_delta_is_the_ingest_delta_type(self, tiny_dataset):
        # The pre-mutation-algebra name stays importable and identical.
        assert IngestDelta is MutationDelta
        delta = tiny_dataset.add_claims(
            [Claim(source="E", object="o1", value="x")]
        )
        assert isinstance(delta, IngestDelta)

    def test_top_level_exports(self):
        assert repro.MutationBatch is MutationBatch
        assert repro.MutationDelta is MutationDelta
        assert repro.ABSENT is ABSENT
        for name in ("Mutation", "MutationBatch", "MutationDelta", "ABSENT"):
            assert name in repro.__all__

    def test_deprecated_top_level_ingest_delta_warns(self):
        with pytest.warns(DeprecationWarning, match="MutationDelta"):
            assert repro.IngestDelta is MutationDelta


class TestMutationLogSemantics:
    def test_dirty_objects_since_unions_removals(self, tiny_dataset):
        version = tiny_dataset.version
        tiny_dataset.retract_claims([("C", "o1")])
        tiny_dataset.correct_claims(
            [Claim(source="A", object="o2", value="w")]
        )
        assert tiny_dataset.dirty_objects_since(version) == {"o1", "o2"}

    def test_mutations_since_reports_first_old_value(self, tiny_dataset):
        version = tiny_dataset.version
        original = tiny_dataset.value_of("A", "o1")
        tiny_dataset.correct_claims(
            [Claim(source="A", object="o1", value="q")]
        )
        tiny_dataset.retract_claims([("A", "o1")])
        delta = tiny_dataset.mutations_since(version)
        # Two mutations on one key collapse to the state at `version`.
        assert delta["o1"]["A"] == original

    def test_add_then_retract_reports_absent(self, tiny_dataset):
        version = tiny_dataset.version
        tiny_dataset.add_claims([Claim(source="Z", object="o1", value="x")])
        tiny_dataset.retract_claims([("Z", "o1")])
        delta = tiny_dataset.mutations_since(version)
        assert delta["o1"]["Z"] is ABSENT

    def test_retractions_survive_compact_log(self, tiny_dataset):
        cutoff = tiny_dataset.version
        tiny_dataset.retract_claims([("C", "o1")])
        tiny_dataset.compact_log(cutoff)
        delta = tiny_dataset.mutations_since(cutoff)
        assert delta["o1"]["C"] == "y"

    def test_compacted_prefix_is_gone(self, tiny_dataset):
        tiny_dataset.retract_claims([("C", "o1")])
        tiny_dataset.compact_log(tiny_dataset.version)
        with pytest.raises(DataError):
            tiny_dataset.mutations_since(0)


BACKENDS = [
    ("serial", "list"),
    ("serial", "columnar"),
    ("numpy", "list"),
    ("numpy", "columnar"),
    ("resident", "columnar"),
]


class TestMutationSyncEquivalence:
    """sync() after any add/retract/correct mix == cold rebuild."""

    @pytest.mark.parametrize("backend,entry_store", BACKENDS)
    @given(seed=st.integers(0, 10**6))
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_mutation_mix_matches_cold_rebuild(
        self, backend, entry_store, seed
    ):
        rng = random.Random(seed)
        dataset = ClaimDataset(_seed_claims(rng))
        params = DependenceParams(
            parallel_backend=backend,
            entry_store=entry_store,
            num_workers=2,
        )
        cache = EvidenceCache(dataset, params=params, exact=True)
        try:
            for round_no in range(3):
                dataset.apply(_random_batch(rng, dataset))
                cache.sync()
                probs = uniform_value_probabilities(dataset)
                cold = EvidenceCache(
                    dataset, params=REFERENCE_PARAMS, exact=True
                )
                _assert_same_evidence(
                    cache.collect_all(probs),
                    cold.collect_all(probs),
                    context=f"{backend}/{entry_store} round {round_no}",
                )
        finally:
            cache.close()

    def test_retract_to_below_two_providers_clears_evidence(self):
        dataset = ClaimDataset.from_table(
            {"o1": {"A": "x", "B": "x"}, "o2": {"A": "y", "B": "y"}}
        )
        cache = EvidenceCache(dataset, params=REFERENCE_PARAMS, exact=True)
        dataset.retract_claims([("B", "o1")])
        cache.sync()
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(dataset, params=REFERENCE_PARAMS, exact=True)
        _assert_same_evidence(
            cache.collect_all(probs), cold.collect_all(probs)
        )

    def test_hot_object_cap_tracks_removals(self):
        # Retracting below the cap must clear the truncation record,
        # exactly as a cold enumeration of the final state would.
        table = {"o1": {f"S{i}": "x" for i in range(6)}}
        dataset = ClaimDataset.from_table(table)
        params = DependenceParams(
            max_providers_per_object=4,
            parallel_backend="serial",
            entry_store="list",
        )
        cache = EvidenceCache(dataset, params=params, exact=True)
        cache.refresh(uniform_value_probabilities(dataset))
        assert "o1" in cache.truncated_objects
        dataset.retract_claims([("S4", "o1"), ("S5", "o1")])
        cache.sync()
        assert "o1" not in cache.truncated_objects
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(dataset, params=params, exact=True)
        _assert_same_evidence(
            cache.collect_all(probs), cold.collect_all(probs)
        )


class TestCorrectionStorm:
    def test_compaction_bounds_store_growth(self):
        rng = random.Random(3)
        dataset = ClaimDataset(
            _seed_claims(rng, n_sources=6, n_objects=8, coverage=8)
        )
        params = DependenceParams(
            parallel_backend="serial", entry_store="columnar"
        )
        cache = EvidenceCache(dataset, params=params, exact=True)
        cache.sync()
        store = cache._store
        assert store is not None
        keys = sorted((c.source, c.object) for c in dataset)
        for round_no in range(60):
            # The storm: the same claims corrected over and over.
            corrections = [
                Claim(source=s, object=o, value=f"v{round_no % 5}")
                for s, o in rng.sample(keys, 10)
            ]
            dataset.correct_claims(corrections)
            cache.sync()
            live = store.used - store.dead
            # The compaction hysteresis invariant: dead cells never
            # outnumber live ones (beyond the fixed trigger floor), so
            # the store stays within a constant factor of a cold build.
            assert (
                store.dead < COMPACT_MIN_DEAD
                or 2 * store.dead <= store.used
            ), f"round {round_no}"
            assert store.used <= 2 * live + 2 * COMPACT_MIN_DEAD
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(dataset, params=params, exact=True)
        _assert_same_evidence(
            cache.collect_all(probs), cold.collect_all(probs)
        )


class TestStreamingAndSessionSurface:
    def test_engine_ingest_accepts_batches(self, tiny_dataset):
        engine = StreamingDependenceEngine(tiny_dataset)
        delta = engine.ingest(
            MutationBatch(
                adds=(Claim(source="D", object="o2", value="u"),),
                retractions=(("C", "o1"),),
            )
        )
        assert delta.added == 1 and delta.retracted == 1
        graph = engine.discover()
        cold = StreamingDependenceEngine(tiny_dataset).discover()
        assert len(graph) == len(cold)
        for pair in cold:
            other = graph.get(pair.s1, pair.s2)
            assert other.p_independent == pair.p_independent

    def test_session_apply_and_feed_drain(self):
        claims = [
            Claim(source="A", object="o1", value="x"),
            Claim(source="B", object="o1", value="x"),
            Claim(source="C", object="o1", value="y"),
        ]
        with Session(claims=claims) as session:
            delta = session.apply(
                MutationBatch(
                    corrections=(Claim(source="C", object="o1", value="x"),)
                )
            )
            assert delta.corrected == 1
            # feed() queues; the retraction must survive until publish.
            queued = session.feed(MutationBatch(retractions=(("B", "o1"),)))
            assert queued == 1
            assert session.dirty
            snapshot = session.publish()
            assert session.dataset.value_of("B", "o1") is None
            assert snapshot.mutation_version == session.dataset.version
            assert snapshot.mutation_version == snapshot.dataset_version

    def test_feed_batches_drain_in_arrival_order(self):
        with Session(
            claims=[
                Claim(source="A", object="o1", value="x"),
                Claim(source="B", object="o1", value="x"),
            ]
        ) as session:
            # An add queued before the retraction that withdraws it:
            # arrival order makes the sequence legal.
            session.feed([Claim(source="C", object="o1", value="y")])
            session.feed(MutationBatch(retractions=(("C", "o1"),)))
            session.publish()
            assert session.dataset.value_of("C", "o1") is None


class TestTransactionalApply:
    """``apply()`` is all-or-nothing: a poison batch leaves no trace.

    The property mirrors the sync-equivalence one, but for *failed*
    batches: whatever primitive raises — a ghost retraction (first
    phase), a targetless correction (second) or a conflicting add
    (last, with every earlier phase already applied) — the dataset's
    claims, iteration order, version and mutation log are exactly what
    they were before the call, and an :class:`EvidenceCache` synced
    afterwards is bit-for-bit what a never-poisoned cache would be.
    """

    @staticmethod
    def _poisoned(clean, dataset):
        """Three variants of ``clean`` that must fail, by failing phase."""
        retracted = set(clean.retractions)
        victim = next(
            claim
            for claim in dataset
            if (claim.source, claim.object) not in retracted
        )
        ghost_retract = MutationBatch(
            adds=clean.adds,
            retractions=clean.retractions + (("__ghost__", "o000"),),
            corrections=clean.corrections,
        )
        bad_correct = MutationBatch(
            adds=clean.adds,
            retractions=clean.retractions,
            corrections=clean.corrections
            + (Claim(source="__ghost__", object="o000", value="v0"),),
        )
        dup_add = MutationBatch(
            adds=clean.adds
            + (
                Claim(
                    source=victim.source,
                    object=victim.object,
                    value="poison",
                ),
            ),
            retractions=clean.retractions,
            corrections=clean.corrections,
        )
        return (ghost_retract, bad_correct, dup_add)

    @given(seed=st.integers(0, 10**6))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_poison_batch_leaves_no_trace(self, seed):
        rng = random.Random(seed)
        dataset = ClaimDataset(_seed_claims(rng))
        cache = EvidenceCache(dataset, params=REFERENCE_PARAMS, exact=True)
        # Build some real history first, so the rollback has a live
        # mutation log and warmed evidence to corrupt.
        dataset.apply(_random_batch(rng, dataset))
        cache.sync()

        clean = _random_batch(rng, dataset)
        for poison in self._poisoned(clean, dataset):
            before_version = dataset.version
            before_log = dataset.mutations_since(0)
            before_claims = list(dataset)  # exact iteration order
            with pytest.raises(DataError):
                dataset.apply(poison)
            assert dataset.version == before_version
            assert dataset.mutations_since(0) == before_log
            assert list(dataset) == before_claims

        # The cache synced over the rolled-back dataset equals a cold
        # rebuild — nothing half-applied leaked into evidence.
        cache.sync()
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(dataset, params=REFERENCE_PARAMS, exact=True)
        _assert_same_evidence(
            cache.collect_all(probs),
            cold.collect_all(probs),
            context="after rollback",
        )

        # And the clean batch the poison was derived from still applies.
        dataset.apply(clean)
        cache.sync()
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(dataset, params=REFERENCE_PARAMS, exact=True)
        _assert_same_evidence(
            cache.collect_all(probs),
            cold.collect_all(probs),
            context="clean batch after rollbacks",
        )

    def test_partial_retraction_phase_rolls_back(self, tiny_dataset):
        """The first retraction lands before the second raises — and is
        then undone."""
        batch = MutationBatch(
            retractions=(("A", "o1"), ("__ghost__", "o1"))
        )
        with pytest.raises(DataError):
            tiny_dataset.apply(batch)
        assert tiny_dataset.value_of("A", "o1") is not None

    def test_rolled_back_version_is_reusable(self, tiny_dataset):
        version = tiny_dataset.version
        with pytest.raises(DataError):
            tiny_dataset.apply(
                MutationBatch(retractions=(("__ghost__", "o1"),))
            )
        assert tiny_dataset.version == version
        delta = tiny_dataset.apply(
            MutationBatch(retractions=(("A", "o1"),))
        )
        assert delta.retracted == 1
        assert tiny_dataset.version == version + 1
