"""Tests for rating matrices, consensus and opinion pooling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.claims import Rating
from repro.datasets.paper_tables import RATING_SCALE, TABLE2
from repro.exceptions import DataError, ParameterError
from repro.opinions import (
    DependenceAwareConsensus,
    RatingMatrix,
    RatingScale,
    dependence_adjusted_pool,
    effective_sample_size,
    linear_pool,
    log_pool,
)


class TestRatingScale:
    def test_mirror_is_involution(self):
        scale = RatingScale(RATING_SCALE)
        for level in RATING_SCALE:
            assert scale.mirror(scale.mirror(level)) == level

    def test_mirror_maps_extremes(self):
        scale = RatingScale(RATING_SCALE)
        assert scale.mirror("Good") == "Bad"
        assert scale.mirror("Neutral") == "Neutral"

    def test_distance(self):
        scale = RatingScale(RATING_SCALE)
        assert scale.distance("Bad", "Good") == 2
        assert scale.distance("Good", "Good") == 0

    def test_rejects_duplicates(self):
        with pytest.raises(DataError):
            RatingScale(("Good", "Good"))

    def test_rejects_singleton(self):
        with pytest.raises(DataError):
            RatingScale(("OnlyOne",))

    def test_unknown_level_raises(self):
        scale = RatingScale(RATING_SCALE)
        with pytest.raises(DataError):
            scale.index("Amazing")


class TestRatingMatrix:
    def test_from_table(self, table2_matrix):
        assert table2_matrix.raters == ["R1", "R2", "R3", "R4"]
        assert table2_matrix.items == sorted(TABLE2)
        assert table2_matrix.score_of("R1", "The Pianist") == "Good"

    def test_duplicate_rating_rejected(self, table2_matrix):
        with pytest.raises(DataError):
            table2_matrix.add(Rating(rater="R1", item="The Pianist", score="Bad"))

    def test_off_scale_score_rejected(self, table2_matrix):
        with pytest.raises(DataError):
            table2_matrix.add(Rating(rater="R9", item="The Pianist", score="Meh"))

    def test_co_rated(self, table2_matrix):
        assert table2_matrix.co_rated("R1", "R4") == sorted(TABLE2)

    def test_consensus_is_distribution(self, table2_matrix):
        dist = table2_matrix.consensus("The Pianist")
        assert sum(dist.values()) == pytest.approx(1.0)
        assert set(dist) == set(RATING_SCALE)

    def test_consensus_excludes(self, table2_matrix):
        full = table2_matrix.consensus("The Matrix", smoothing=0.1)
        without = table2_matrix.consensus(
            "The Matrix", exclude=("R3", "R4"), smoothing=0.1
        )
        assert without["Good"] < full["Good"]

    def test_consensus_weights(self, table2_matrix):
        weights = {"R1": 0.0, "R2": 1.0, "R3": 1.0, "R4": 0.0}
        dist = table2_matrix.consensus("The Pianist", weights=weights, smoothing=0.1)
        assert dist["Good"] < dist["Bad"]

    def test_mean_score(self, table2_matrix):
        # The Pianist: Good(2), Neutral(1), Bad(0), Bad(0) -> 0.75
        assert table2_matrix.mean_score("The Pianist") == pytest.approx(0.75)

    def test_mean_score_no_ratings(self, table2_matrix):
        with pytest.raises(DataError):
            table2_matrix.mean_score("Unrated Movie")


class TestDependenceAwareConsensus:
    def test_naive_mode_keeps_unit_weights(self, table2_matrix):
        result = DependenceAwareConsensus(aware=False).aggregate(table2_matrix)
        assert all(w == 1.0 for w in result.weights.values())

    def test_aware_mode_downweights_the_anti_pair(self, table2_matrix):
        result = DependenceAwareConsensus().aggregate(table2_matrix)
        untouched = min(result.weights["R2"], result.weights["R3"])
        pair_weight = max(result.weights["R1"], result.weights["R4"])
        assert pair_weight < untouched

    def test_aware_distributions_closer_to_leave_pair_out_oracle(
        self, table2_matrix
    ):
        """Down-weighting the R1/R4 pair moves the consensus toward the
        consensus of the unentangled raters (R2, R3)."""
        from repro.eval import distribution_l1

        oracle = {
            item: table2_matrix.consensus(item, exclude=("R1", "R4"))
            for item in table2_matrix.items
        }
        naive = DependenceAwareConsensus(aware=False).aggregate(table2_matrix)
        aware = DependenceAwareConsensus(aware=True).aggregate(table2_matrix)
        assert distribution_l1(aware.distributions, oracle) < distribution_l1(
            naive.distributions, oracle
        )

    def test_consensus_level(self, table2_matrix):
        result = DependenceAwareConsensus().aggregate(table2_matrix)
        assert result.consensus_level("The Matrix") in RATING_SCALE

    def test_empty_matrix_rejected(self):
        scale = RatingScale(RATING_SCALE)
        with pytest.raises(DataError):
            DependenceAwareConsensus().aggregate(RatingMatrix(scale))


class TestPooling:
    def test_linear_pool_mixture(self):
        pooled = linear_pool(
            [{"a": 1.0}, {"a": 0.5, "b": 0.5}], weights=[1.0, 1.0]
        )
        assert pooled["a"] == pytest.approx(0.75)
        assert pooled["b"] == pytest.approx(0.25)

    def test_linear_pool_weight_validation(self):
        with pytest.raises(ParameterError):
            linear_pool([{"a": 1.0}], weights=[0.0])
        with pytest.raises(ParameterError):
            linear_pool([{"a": 1.0}], weights=[1.0, 1.0])

    def test_log_pool_veto(self):
        pooled = log_pool([{"a": 0.5, "b": 0.5}, {"a": 1.0}])
        assert pooled == {"a": 1.0}

    def test_log_pool_degenerate_raises(self):
        with pytest.raises(DataError):
            log_pool([{"a": 1.0}, {"b": 1.0}])

    def test_invalid_distribution_rejected(self):
        with pytest.raises(DataError):
            linear_pool([{"a": 0.4}])

    def test_effective_sample_size(self):
        assert effective_sample_size({"A": 1.0, "B": 1.0, "C": 0.2}) == pytest.approx(2.2)

    def test_effective_sample_size_validates(self):
        with pytest.raises(DataError):
            effective_sample_size({"A": 1.5})
        with pytest.raises(DataError):
            effective_sample_size({})

    def test_dependence_adjusted_pool(self):
        dists = {"A": {"x": 0.9, "y": 0.1}, "B": {"x": 0.9, "y": 0.1}}
        pooled, ess = dependence_adjusted_pool(
            dists, {"A": 1.0, "B": 0.1}, method="linear"
        )
        assert ess == pytest.approx(1.1)
        assert pooled["x"] == pytest.approx(0.9)

    def test_dependence_adjusted_pool_missing_weight(self):
        with pytest.raises(ParameterError):
            dependence_adjusted_pool({"A": {"x": 1.0}}, {})

    def test_unknown_method(self):
        with pytest.raises(ParameterError):
            dependence_adjusted_pool(
                {"A": {"x": 1.0}}, {"A": 1.0}, method="median"
            )

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=50)
    def test_linear_pool_is_distribution(self, masses):
        dists = []
        for m in masses:
            dists.append({"x": m / (m + 1), "y": 1 / (m + 1)})
        pooled = linear_pool(dists)
        assert sum(pooled.values()) == pytest.approx(1.0)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=40)
    def test_log_pool_of_identical_is_identity(self, p):
        dist = {"x": p, "y": 1 - p}
        pooled = log_pool([dist, dist, dist])
        assert pooled["x"] == pytest.approx(p)
