"""Unit and property tests for the snapshot claim store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.exceptions import DataError

source_ids = st.sampled_from(["A", "B", "C", "D"])
object_ids = st.sampled_from(["o1", "o2", "o3", "o4", "o5"])
values = st.sampled_from(["u", "v", "w", "x"])

claim_maps = st.dictionaries(
    st.tuples(source_ids, object_ids), values, min_size=1, max_size=20
)


def _dataset_from(claim_map: dict) -> ClaimDataset:
    return ClaimDataset(
        Claim(source=s, object=o, value=v) for (s, o), v in claim_map.items()
    )


class TestConstruction:
    def test_duplicate_identical_claim_is_noop(self):
        dataset = ClaimDataset()
        dataset.add(Claim("A", "o1", "v"))
        dataset.add(Claim("A", "o1", "v"))
        assert len(dataset) == 1

    def test_conflicting_claim_same_key_rejected(self):
        dataset = ClaimDataset()
        dataset.add(Claim("A", "o1", "v"))
        with pytest.raises(DataError):
            dataset.add(Claim("A", "o1", "w"))

    def test_from_table_round_trip(self, tiny_dataset):
        assert tiny_dataset.value_of("A", "o1") == "x"
        assert tiny_dataset.value_of("C", "o2") is None
        assert len(tiny_dataset) == 5

    def test_from_rows(self):
        dataset = ClaimDataset.from_rows([("A", "o1", "v"), ("B", "o1", "w")])
        assert dataset.sources == ["A", "B"]

    def test_rejects_non_claim(self):
        with pytest.raises(DataError):
            ClaimDataset().add("not a claim")


class TestIndexes:
    def test_values_for_groups_providers(self, tiny_dataset):
        values_for = tiny_dataset.values_for("o1")
        assert values_for == {"x": {"A", "B"}, "y": {"C"}}

    def test_providers_of(self, tiny_dataset):
        assert tiny_dataset.providers_of("o1", "x") == {"A", "B"}
        assert tiny_dataset.providers_of("o1", "z") == set()

    def test_claims_by_source(self, tiny_dataset):
        claims = tiny_dataset.claims_by("A")
        assert set(claims) == {"o1", "o2"}

    def test_coverage(self, tiny_dataset):
        assert tiny_dataset.coverage("A") == 2
        assert tiny_dataset.coverage("C") == 1
        assert tiny_dataset.coverage("missing") == 0

    def test_sources_and_objects_sorted(self, tiny_dataset):
        assert tiny_dataset.sources == sorted(tiny_dataset.sources)
        assert tiny_dataset.objects == sorted(tiny_dataset.objects)


class TestSetAlgebra:
    def test_overlap(self, tiny_dataset):
        assert tiny_dataset.overlap("A", "B") == {"o1", "o2"}
        assert tiny_dataset.overlap("A", "C") == {"o1"}

    def test_only_in(self, tiny_dataset):
        assert tiny_dataset.only_in("A", "C") == {"o2"}
        assert tiny_dataset.only_in("C", "A") == set()

    def test_agreement_counts(self, tiny_dataset):
        same, different = tiny_dataset.agreement_counts("A", "B")
        assert (same, different) == (1, 1)

    def test_overlap_symmetric(self, tiny_dataset):
        assert tiny_dataset.overlap("A", "B") == tiny_dataset.overlap("B", "A")


class TestTransforms:
    def test_map_values_rewrites(self, tiny_dataset):
        mapped = tiny_dataset.map_values({("o1", "y"): "x"})
        assert mapped.providers_of("o1", "x") == {"A", "B", "C"}

    def test_map_values_leaves_unmapped(self, tiny_dataset):
        mapped = tiny_dataset.map_values({})
        assert len(mapped) == len(tiny_dataset)

    def test_restrict_sources(self, tiny_dataset):
        restricted = tiny_dataset.restrict_sources(["A"])
        assert restricted.sources == ["A"]
        assert len(restricted) == 2

    def test_restrict_objects(self, tiny_dataset):
        restricted = tiny_dataset.restrict_objects(["o2"])
        assert restricted.objects == ["o2"]


class TestSerialisation:
    def test_json_round_trip(self, tiny_dataset):
        restored = ClaimDataset.from_json(tiny_dataset.to_json())
        assert sorted(restored, key=repr) == sorted(tiny_dataset, key=repr)

    def test_json_round_trip_tuple_values(self):
        dataset = ClaimDataset([Claim("A", "o1", ("x", "y"))])
        restored = ClaimDataset.from_json(dataset.to_json())
        assert restored.value_of("A", "o1") == ("x", "y")

    def test_invalid_json_raises(self):
        with pytest.raises(DataError):
            ClaimDataset.from_json("{not json")

    def test_non_array_json_raises(self):
        with pytest.raises(DataError):
            ClaimDataset.from_json('{"a": 1}')


class TestProperties:
    @given(claim_maps)
    @settings(max_examples=60)
    def test_indexes_agree(self, claim_map):
        dataset = _dataset_from(claim_map)
        assert len(dataset) == len(claim_map)
        for (source, obj), value in claim_map.items():
            assert dataset.value_of(source, obj) == value
            assert source in dataset.providers_of(obj, value)

    @given(claim_maps)
    @settings(max_examples=60)
    def test_values_for_partitions_providers(self, claim_map):
        dataset = _dataset_from(claim_map)
        for obj in dataset.objects:
            providers = [
                s for sources in dataset.values_for(obj).values() for s in sources
            ]
            assert sorted(providers) == sorted(set(providers))
            assert set(providers) == set(dataset.claims_about(obj))

    @given(claim_maps)
    @settings(max_examples=40)
    def test_json_round_trip_property(self, claim_map):
        dataset = _dataset_from(claim_map)
        restored = ClaimDataset.from_json(dataset.to_json())
        assert sorted(restored, key=repr) == sorted(dataset, key=repr)

    @given(claim_maps, st.sampled_from(["A", "B", "C", "D"]))
    @settings(max_examples=40)
    def test_overlap_plus_only_in_is_coverage(self, claim_map, source):
        dataset = _dataset_from(claim_map)
        for other in dataset.sources:
            if other == source:
                continue
            overlap = dataset.overlap(source, other)
            private = dataset.only_in(source, other)
            assert overlap | private == set(dataset.claims_by(source))
            assert overlap & private == set()
