"""Consistency checks on the encoded paper tables themselves."""

from repro.datasets.paper_tables import (
    RATING_SCALE,
    TABLE1,
    TABLE1_COPIERS,
    TABLE1_TRUTH,
    TABLE2,
    TABLE2_ANTI_PAIRS,
    TABLE3,
    TABLE3_TIMELINES,
    table1_dataset,
    table3_dataset,
)


class TestTable1Encoding:
    def test_five_sources_five_objects(self):
        dataset = table1_dataset()
        assert dataset.sources == ["S1", "S2", "S3", "S4", "S5"]
        assert len(dataset.objects) == 5

    def test_s1_asserts_exactly_the_truth(self):
        for obj, truth in TABLE1_TRUTH.items():
            assert TABLE1[obj]["S1"] == truth

    def test_s4_is_an_exact_copy_of_s3(self):
        for obj, row in TABLE1.items():
            assert row["S4"] == row["S3"]

    def test_s5_differs_from_s3_exactly_once(self):
        differences = [
            obj for obj, row in TABLE1.items() if row["S5"] != row["S3"]
        ]
        assert differences == ["Suciu"]

    def test_copier_edges(self):
        assert ("S4", "S3") in TABLE1_COPIERS
        assert ("S5", "S3") in TABLE1_COPIERS

    def test_restriction_to_prefix(self):
        dataset = table1_dataset(("S1",))
        assert dataset.sources == ["S1"]


class TestTable2Encoding:
    def test_r4_mirrors_r1_on_every_movie(self):
        mirror = {"Good": "Bad", "Neutral": "Neutral", "Bad": "Good"}
        for row in TABLE2.values():
            assert row["R4"] == mirror[row["R1"]]

    def test_scale_covers_all_scores(self):
        for row in TABLE2.values():
            for score in row.values():
                assert score in RATING_SCALE

    def test_anti_pair_encoded(self):
        assert ("R4", "R1") in TABLE2_ANTI_PAIRS


class TestTable3Encoding:
    def test_dataset_round_trip(self):
        dataset = table3_dataset()
        assert dataset.sources == ["S1", "S2", "S3"]
        assert dataset.history("S1", "Suciu") == [
            (2002.0, "UW"), (2006.0, "MSR"), (2007.0, "UW"),
        ]

    def test_s1_tracks_the_true_timelines(self):
        """Each of S1's assertions matches the ground-truth timeline at
        the moment it was made (the caption's 'up-to-date true values')."""
        for obj, history in TABLE3.items():
            for time, value in TABLE3[obj]["S1"]:
                periods = TABLE3_TIMELINES[obj]
                true_now = next(
                    (p.value for p in periods if p.contains(time)), None
                )
                assert true_now == value, (obj, time, value)

    def test_timelines_are_contiguous_and_open_ended(self):
        for obj, periods in TABLE3_TIMELINES.items():
            for earlier, later in zip(periods, periods[1:]):
                assert earlier.end == later.start
            assert periods[-1].end is None

    def test_final_timeline_values_match_table1_truth(self):
        for obj, periods in TABLE3_TIMELINES.items():
            assert periods[-1].value == TABLE1_TRUTH[obj]

    def test_s3_never_asserts_a_never_true_value(self):
        for obj, row in TABLE3.items():
            timeline_values = {p.value for p in TABLE3_TIMELINES[obj]}
            for _, value in row.get("S3", []):
                assert value in timeline_values
