"""The columnar entry store: bit-for-bit equivalence and repair mechanics.

The contract of :mod:`repro.dependence.entrystore` +
``EvidenceCache(entry_store=...)``: the physical layout of the agreement
structure is execution policy. For every model combination, every
backend, every ingest interleaving — including in-place tombstone
repair and compaction — the ``"columnar"`` store serves evidence
bit-for-bit identical to the ``"list"`` reference layout (whose own
fidelity against the per-pair reference walk is pinned by
``tests/test_dependence_evidence.py``). Also covered here: the
persistent worker pool, the ``DependenceParams`` environment-override
hook, and the collectors' :class:`~repro.dependence.entrystore.PackedRecords`.
"""

from __future__ import annotations

import random

import pytest

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams
from repro.dependence import entrystore
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.entrystore import ColumnarAgreeStore, PackedRecords
from repro.dependence.evidence import EvidenceCache
from repro.dependence.sharding import ParallelSweepExecutor, SweepConfig
from repro.dependence.streaming import StreamingDependenceEngine
from repro.exceptions import ParameterError

ALL_MODEL_PARAMS = [
    {"false_value_model": model, "evidence_form": form}
    for model in ("uniform", "empirical")
    for form in ("expected_log", "marginal")
]

QUIET = {"overlap_warning_bound": None}


def _random_claims(rng, n_sources=12, n_objects=40, coverage=25, n_values=3):
    claims = []
    for i in range(n_sources):
        for obj in rng.sample(range(n_objects), coverage):
            claims.append(
                Claim(
                    source=f"S{i:02d}",
                    object=f"o{obj:03d}",
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


class TestStoreUnit:
    """ColumnarAgreeStore mechanics, at the store level."""

    class Slot:
        __slots__ = ("sid", "start", "length", "cap")

        def __init__(self):
            self.sid = -1
            self.start = 0
            self.length = 0
            self.cap = 0

    def _packed(self, segments):
        store = ColumnarAgreeStore()
        slots = [self.Slot() for _ in segments]
        store.pack(zip(slots, segments))
        return store, slots

    def test_pack_and_segments(self):
        store, slots = self._packed([[3, 1, 4], [], [1, 5]])
        assert [store.segment(s).tolist() for s in slots] == [
            [3, 1, 4],
            [],
            [1, 5],
        ]
        assert store.used == 5
        assert store.dead == 0
        assert store.n_sids == 3

    def test_sums_match_sequential_reference(self):
        rng = random.Random(1)
        segments = [
            [rng.randrange(500) for _ in range(rng.randrange(0, 400))]
            for _ in range(30)
        ]
        p_values = [rng.random() for _ in range(500)]
        store, slots = self._packed(segments)
        import numpy as np

        kt, kf = store.sums(np.asarray(p_values))
        for slot, segment in zip(slots, segments):
            expected_kt = 0.0
            expected_kf = 0.0
            for eid in segment:  # the list reference: sequential
                expected_kt += p_values[eid]
                expected_kf += 1.0 - p_values[eid]
            assert kt[slot.sid] == expected_kt  # bitwise, not approx
            assert kf[slot.sid] == expected_kf

    def test_insert_uses_slack_then_relocates(self):
        store, slots = self._packed([[10, 30]])
        slot = slots[0]
        store.insert(slot, 1, 20)  # full: relocates with growth room
        assert store.segment(slot).tolist() == [10, 20, 30]
        assert slot.cap > slot.length
        assert store.dead > 0  # the tombstoned original region
        slack_before = slot.cap - slot.length
        store.insert(slot, 3, 40)  # slack available: in-place
        assert store.segment(slot).tolist() == [10, 20, 30, 40]
        assert slot.cap - slot.length == slack_before - 1

    def test_remove_and_release_tombstone(self):
        store, slots = self._packed([[1, 2, 3], [4, 5]])
        store.remove(slots[0], 1)
        assert store.segment(slots[0]).tolist() == [1, 3]
        dead_after_remove = store.dead
        assert dead_after_remove == 1
        store.release(slots[1])
        assert store.segment(slots[1]).tolist() == []
        assert store.dead == dead_after_remove + 2

    def test_compact_rebuilds_cold_layout(self):
        store, slots = self._packed([[1, 2, 3], [4, 5], [6]])
        store.remove(slots[0], 0)
        store.insert(slots[1], 0, 9)  # forces a relocation
        live = [slots[0], slots[1], slots[2]]
        store.compact(live)
        assert store.dead == 0
        assert store.used == sum(s.length for s in live)
        assert [s.sid for s in live] == [0, 1, 2]
        assert [store.segment(s).tolist() for s in live] == [
            [2, 3],
            [9, 4, 5],
            [6],
        ]

    def test_backfill_append_segment(self):
        store, _ = self._packed([[1]])
        late = self.Slot()
        store.new_sid(late)
        store.append_segment(late, [7, 8])
        assert store.segment(late).tolist() == [7, 8]
        assert store.n_sids == 2

    def test_maybe_compact_thresholds(self, monkeypatch):
        monkeypatch.setattr(entrystore, "COMPACT_MIN_DEAD", 1)
        store, slots = self._packed([[1, 2, 3], [4, 5]])
        assert not store.maybe_compact(slots)  # nothing dead
        store.remove(slots[0], 0)
        assert not store.maybe_compact(slots)  # 2*1 <= 5: not worth it
        store.remove(slots[0], 0)
        store.remove(slots[1], 0)
        assert store.maybe_compact(slots)  # 2*3 > 5
        assert store.dead == 0
        assert [store.segment(s).tolist() for s in slots] == [[3], [5]]


@pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
@pytest.mark.parametrize("exact", [False, True])
def test_columnar_equals_list_reference_cold(model, exact):
    rng = random.Random(3)
    dataset = ClaimDataset(_random_claims(rng))
    probs = uniform_value_probabilities(dataset)
    reference = EvidenceCache(
        dataset,
        params=DependenceParams(entry_store="list", **QUIET, **model),
        exact=exact,
    ).collect_all(probs)
    for backend in ("serial", "numpy"):
        cache = EvidenceCache(
            dataset,
            params=DependenceParams(
                entry_store="columnar",
                parallel_backend=backend,
                **QUIET,
                **model,
            ),
            exact=exact,
        )
        assert cache.entry_store == "columnar"
        assert cache.collect_all(probs) == reference, backend


@pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
def test_columnar_equals_list_reference_interleaved_ingest(model):
    rng = random.Random(23)
    claims = _random_claims(rng)
    cap = {"max_providers_per_object": 5}  # exercise removal/retire paths
    list_dataset, columnar_dataset = ClaimDataset(), ClaimDataset()
    list_cache = EvidenceCache(
        list_dataset,
        params=DependenceParams(entry_store="list", **QUIET, **cap, **model),
    )
    columnar_cache = EvidenceCache(
        columnar_dataset,
        params=DependenceParams(
            entry_store="columnar", **QUIET, **cap, **model
        ),
    )
    for batch in (claims[:120], claims[120:150], claims[150:230], claims[230:]):
        list_dataset.add_claims(batch)
        columnar_dataset.add_claims(batch)
        probs = uniform_value_probabilities(list_dataset)
        cold = EvidenceCache(
            ClaimDataset(list(list_dataset)),
            params=DependenceParams(
                entry_store="columnar", **QUIET, **cap, **model
            ),
        )
        reference = list_cache.collect_all(probs)
        assert columnar_cache.collect_all(probs) == reference
        assert cold.collect_all(probs) == reference
        assert sorted(columnar_cache.pairs) == sorted(list_cache.pairs)
        assert columnar_cache.dirty_pairs() == list_cache.dirty_pairs()
        columnar_cache.clear_dirty_pairs()
        list_cache.clear_dirty_pairs()


def test_compaction_under_churn_stays_equivalent():
    """In-place repair leaves tombstones; compacting mid-lifecycle must
    be invisible in served evidence."""
    rng = random.Random(5)
    claims = _random_claims(rng, n_sources=14, coverage=30)
    params = DependenceParams(
        entry_store="columnar",
        max_providers_per_object=4,  # prefix churn drives removals
        **QUIET,
    )
    dataset = ClaimDataset()
    cache = EvidenceCache(dataset, params=params)
    saw_tombstones = False
    for batch in (claims[:200], claims[200:260], claims[260:330], claims[330:]):
        dataset.add_claims(batch)
        cache.sync()
        store = cache._store
        if store.dead > 0:
            saw_tombstones = True
            store.compact(cache._slots.values())
            assert store.dead == 0
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(ClaimDataset(list(dataset)), params=params)
        assert cache.collect_all(probs) == cold.collect_all(probs)
    # The cap churn above must actually have produced tombstones —
    # otherwise this test is not exercising compaction at all.
    assert saw_tombstones


def test_explicit_compact_is_invisible():
    rng = random.Random(9)
    dataset = ClaimDataset(_random_claims(rng))
    params = DependenceParams(entry_store="columnar", **QUIET)
    cache = EvidenceCache(dataset, params=params)
    probs = uniform_value_probabilities(dataset)
    before = cache.collect_all(probs)
    cache._store.compact(cache._slots.values())
    cache.refresh(probs)  # sums are per-sid: re-derive after renumbering
    assert cache.collect_all(probs) == before


class TestPersistentPool:
    def _params(self, **extra):
        return DependenceParams(
            parallel_backend="process",
            num_workers=2,
            shard_size=7,
            pool="persistent",
            **QUIET,
            **extra,
        )

    def test_matches_serial_and_reuses_the_pool(self):
        rng = random.Random(11)
        dataset = ClaimDataset(_random_claims(rng))
        probs = uniform_value_probabilities(dataset)
        reference = EvidenceCache(
            dataset, params=DependenceParams(entry_store="list", **QUIET)
        ).collect_all(probs)
        with EvidenceCache(dataset, params=self._params()) as cache:
            assert cache.collect_all(probs) == reference
            executor = cache._executor
            assert executor is not None and executor.persistent
            # The supervisor wraps the pool executor; unwrap to inspect
            # the pool lifecycle itself.
            pool_executor = executor.inner
            pool = pool_executor._pool
            assert pool is not None  # warm after the first sharded build
            cache.build()  # rebuild: same workers, no re-fork
            assert pool_executor._pool is pool
            assert cache.collect_all(probs) == reference
        assert pool_executor._pool is None  # context exit released the pool

    def test_streaming_engine_close_releases_the_pool(self):
        rng = random.Random(13)
        claims = _random_claims(rng)
        with StreamingDependenceEngine(params=self._params()) as engine:
            engine.ingest(claims[:200])
            graph = engine.discover()
            engine.ingest(claims[200:])
            engine.discover()
            reference = StreamingDependenceEngine(
                dataset=ClaimDataset(list(engine.dataset)),
                params=DependenceParams(entry_store="list", **QUIET),
            )
            reference.ingest([])
            full = reference.discover()
            assert len(graph) <= len(full)  # graph from first batch only
            for pair in engine.graph:
                assert full.get(pair.s1, pair.s2) == pair

    def test_executor_persistent_lifecycle(self):
        executor = ParallelSweepExecutor("process", 2, persistent=True)
        results = executor.run(_double, [1, 2, 3])
        assert results == [2, 4, 6]
        pool = executor._pool
        assert pool is not None
        assert executor.run(_double, [5, 6]) == [10, 12]
        assert executor._pool is pool
        executor.close()
        assert executor._pool is None
        executor.close()  # idempotent

    def test_sweep_config_carries_pool_policy(self):
        config = SweepConfig("process", 2, pool="persistent")
        executor = config.executor()
        assert executor.persistent
        executor.close()
        with pytest.raises(ParameterError):
            SweepConfig("process", 2, pool="forever")
        with pytest.raises(ParameterError):
            DependenceParams(pool="forever")


def _double(x):
    return 2 * x


class TestEnvOverrides:
    def test_env_replaces_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        monkeypatch.setenv("REPRO_POOL", "persistent")
        monkeypatch.setenv("REPRO_ENTRY_STORE", "list")
        params = DependenceParams()
        assert params.parallel_backend == "process"
        assert params.num_workers == 3
        assert params.pool == "persistent"
        assert params.entry_store == "list"

    def test_explicit_arguments_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        params = DependenceParams(parallel_backend="numpy", num_workers=2)
        assert params.parallel_backend == "numpy"
        assert params.num_workers == 2

    def test_invalid_env_values_fail_eagerly(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "plenty")
        with pytest.raises(ParameterError, match="REPRO_NUM_WORKERS"):
            DependenceParams()
        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "threads")
        with pytest.raises(ParameterError, match="parallel_backend"):
            DependenceParams()

    def test_empty_env_values_are_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "")
        assert DependenceParams().parallel_backend == "serial"

    def test_env_overridden_params_stay_bit_for_bit(self, monkeypatch):
        rng = random.Random(17)
        dataset = ClaimDataset(_random_claims(rng))
        probs = uniform_value_probabilities(dataset)
        reference = EvidenceCache(
            dataset, params=DependenceParams(entry_store="list", **QUIET)
        ).collect_all(probs)
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "2")
        cache = EvidenceCache(dataset, params=DependenceParams(**QUIET))
        assert cache.collect_all(probs) == reference

    def test_entry_store_validation(self):
        with pytest.raises(ParameterError):
            DependenceParams(entry_store="rows")


class TestPackedRecords:
    def test_segments_match_slots(self):
        slots = {
            ("a", "b"): [(1, "x"), (2, "y")],
            ("a", "c"): [],
            ("b", "c"): [(3, "z")],
        }
        packed = PackedRecords(slots)
        assert len(packed) == 3
        assert packed.total_records == 3
        for key, records in slots.items():
            assert packed.segment(key) == records
            assert packed.count(key) == len(records)
            assert key in packed
        assert packed.segment(("a", "z")) == []
        assert packed.count(("a", "z")) == 0
        assert ("a", "z") not in packed

    def test_collector_packing_is_lazy_and_build_invalidated(self):
        from repro.generators import RatingWorldConfig, generate_rating_world
        from repro.dependence.opinions import RaterPairCollector

        matrix = generate_rating_world(
            RatingWorldConfig(n_items=12), seed=3
        ).matrix
        collector = RaterPairCollector(matrix)
        first = collector.packed
        assert first is collector.packed  # cached
        for key, slot in collector._slots.items():
            assert first.segment(key) == list(slot)
        collector.build([])  # a (re)build invalidates the packing
        assert collector.packed is not first
