"""Tests for string similarity primitives, including metric properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LinkageError
from repro.linkage.strings import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_similarity,
    token_jaccard,
)

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)

SIMILARITIES = [
    levenshtein_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    token_jaccard,
    ngram_similarity,
]


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("flaw", "lawn") == 2
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_similarity_normalised(self):
        assert levenshtein_similarity("abcd", "abcx") == pytest.approx(0.75)

    @given(words, words)
    @settings(max_examples=80)
    def test_distance_symmetric(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(words, words, words)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(words, words)
    @settings(max_examples=60)
    def test_distance_bounds(self, a, b):
        d = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


class TestJaro:
    def test_known_values(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)

    def test_disjoint_strings(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_prefix(self):
        plain = jaro_similarity("dwayne", "duane")
        boosted = jaro_winkler_similarity("dwayne", "duane")
        assert boosted >= plain

    def test_winkler_prefix_scale_validation(self):
        with pytest.raises(LinkageError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)


class TestTokenAndNgram:
    def test_token_jaccard(self):
        assert token_jaccard("data fusion", "fusion of data") == pytest.approx(2 / 3)

    def test_ngram_known(self):
        assert ngram_similarity("night", "nacht") == pytest.approx(1 / 7)

    def test_ngram_short_strings(self):
        assert ngram_similarity("a", "b") == 0.0
        assert ngram_similarity("a", "a") == 1.0

    def test_ngram_validates_n(self):
        with pytest.raises(LinkageError):
            ngram_similarity("ab", "cd", n=0)


@pytest.mark.parametrize("similarity", SIMILARITIES)
class TestSharedProperties:
    @given(a=words, b=words)
    @settings(max_examples=50)
    def test_symmetric(self, similarity, a, b):
        assert similarity(a, b) == pytest.approx(similarity(b, a))

    @given(a=words)
    @settings(max_examples=30)
    def test_identity_is_one(self, similarity, a):
        assert similarity(a, a) == 1.0

    @given(a=words, b=words)
    @settings(max_examples=50)
    def test_bounded(self, similarity, a, b):
        assert 0.0 <= similarity(a, b) <= 1.0
