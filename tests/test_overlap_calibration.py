"""Regression pin for the expected_log+uniform over-detection hazard.

ROADMAP: the default evidence model (``evidence_form="expected_log"``
with ``false_value_model="uniform"``) is load-bearing on the paper-scale
worked examples but over-detects dependence on large overlaps — on a
200-object, 20-source world at threshold 0.9 it flags nearly every pair
while ``marginal`` stays close to the planted edges. The engine now
emits one structured :class:`~repro.exceptions.OverlapCalibrationWarning`
when that model combination meets an overlap at or beyond
``DependenceParams.overlap_warning_bound``; these tests pin the warning,
its escape hatches, and the over-detection it guards against.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import discover_dependence
from repro.exceptions import OverlapCalibrationWarning, ParameterError
from repro.generators import simple_copier_world
from repro.truth import Depen


@pytest.fixture(scope="module")
def big_world():
    """The ROADMAP failure case: 200 objects, 20 sources, 4 copiers."""
    return simple_copier_world(
        n_objects=200, n_independent=16, n_copiers=4, accuracy=0.8, seed=7
    )


def _no_overlap_warning(recorded) -> None:
    assert not [
        w for w in recorded if issubclass(w.category, OverlapCalibrationWarning)
    ]


class TestWarningEmission:
    def test_default_model_warns_on_the_200_object_world(self, big_world):
        dataset, _ = big_world
        with pytest.warns(OverlapCalibrationWarning, match="200 objects"):
            EvidenceCache(dataset, params=DependenceParams())

    def test_warned_once_per_structural_state(self, big_world):
        dataset, _ = big_world
        probs = uniform_value_probabilities(dataset)
        with pytest.warns(OverlapCalibrationWarning) as recorded:
            cache = EvidenceCache(dataset, params=DependenceParams())
            for _ in range(3):  # iterative rounds must not re-warn
                cache.collect_all(probs)
        overlap = [
            w
            for w in recorded
            if issubclass(w.category, OverlapCalibrationWarning)
        ]
        assert len(overlap) == 1

    def test_public_api_emits_through_depen(self, big_world):
        dataset, _ = big_world
        with pytest.warns(OverlapCalibrationWarning):
            Depen(iteration=IterationParams(max_rounds=1)).discover(dataset)

    def test_empirical_escape_hatch_does_not_warn(self, big_world):
        dataset, _ = big_world
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            EvidenceCache(
                dataset,
                params=DependenceParams(false_value_model="empirical"),
            )
        _no_overlap_warning(recorded)

    def test_marginal_escape_hatch_does_not_warn(self, big_world):
        dataset, _ = big_world
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            EvidenceCache(
                dataset, params=DependenceParams(evidence_form="marginal")
            )
        _no_overlap_warning(recorded)

    def test_none_bound_disables_the_warning(self, big_world):
        dataset, _ = big_world
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            EvidenceCache(
                dataset,
                params=DependenceParams(overlap_warning_bound=None),
            )
        _no_overlap_warning(recorded)

    def test_small_overlaps_do_not_warn(self):
        dataset, _ = simple_copier_world(
            n_objects=40, n_independent=6, n_copiers=2, accuracy=0.8, seed=3
        )
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            EvidenceCache(dataset, params=DependenceParams())
        _no_overlap_warning(recorded)

    def test_ingest_crossing_the_bound_warns_at_sync(self):
        dataset, _ = simple_copier_world(
            n_objects=300, n_independent=10, n_copiers=2, accuracy=0.8, seed=3
        )
        claims = sorted(dataset, key=lambda c: (c.object, c.source))
        from repro.core.dataset import ClaimDataset

        live = ClaimDataset(claims[: len(claims) // 4])  # below the bound
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            cache = EvidenceCache(live, params=DependenceParams())
        _no_overlap_warning(recorded)
        live.add_claims(claims[len(claims) // 4 :])
        with pytest.warns(OverlapCalibrationWarning):
            cache.sync()

    def test_bound_validation(self):
        with pytest.raises(ParameterError):
            DependenceParams(overlap_warning_bound=0)


class TestOverlapPolicy:
    """The warning promoted to a policy: ``overlap_policy`` acts on the
    bound instead of just talking about it."""

    def test_policy_validation(self):
        with pytest.raises(ParameterError):
            DependenceParams(overlap_policy="shout")
        with pytest.raises(ParameterError):
            # auto needs a bound to act on
            DependenceParams(overlap_policy="auto", overlap_warning_bound=None)

    def test_ignore_silences_the_warning(self, big_world):
        dataset, _ = big_world
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            EvidenceCache(
                dataset, params=DependenceParams(overlap_policy="ignore")
            )
        _no_overlap_warning(recorded)

    def test_auto_does_not_warn(self, big_world):
        dataset, _ = big_world
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            EvidenceCache(
                dataset, params=DependenceParams(overlap_policy="auto")
            )
        _no_overlap_warning(recorded)

    def test_auto_fixes_the_200_object_over_detection(self, big_world):
        """The ROADMAP regression case: under ``auto`` the pairs at the
        bound are scored with the calibrated per-value evidence and the
        false-positive flood disappears, while every planted edge
        survives."""
        dataset, world = big_world
        probs = uniform_value_probabilities(dataset)
        accuracies = {s: 0.8 for s in dataset.sources}
        planted = world.dependent_pairs()
        graph = discover_dependence(
            dataset,
            probs,
            accuracies,
            DependenceParams(overlap_policy="auto"),
        )
        detected = graph.detected_pairs(0.9)
        assert len(detected - planted) < 20  # vs >100 under "warn"
        assert planted <= detected

    def test_auto_leaves_small_overlaps_untouched(self):
        """Below the bound nothing changes: the paper-scale worlds keep
        the aggressive expected-log evidence they need to bootstrap."""
        dataset, _ = simple_copier_world(
            n_objects=40, n_independent=6, n_copiers=2, accuracy=0.8, seed=3
        )
        probs = uniform_value_probabilities(dataset)
        accuracies = {s: 0.8 for s in dataset.sources}
        reference = discover_dependence(
            dataset, probs, accuracies, DependenceParams()
        )
        auto = discover_dependence(
            dataset, probs, accuracies, DependenceParams(overlap_policy="auto")
        )
        assert len(auto) == len(reference)
        for pair in reference:
            assert auto.get(pair.s1, pair.s2) == pair

    def test_evidence_marks_escaped_pairs_calibrated(self, big_world):
        dataset, _ = big_world
        params = DependenceParams(overlap_policy="auto")
        cache = EvidenceCache(dataset, params=params)
        evidence = cache.collect_all(uniform_value_probabilities(dataset))
        bound = params.overlap_warning_bound
        for ev in evidence.values():
            if ev.overlap_size >= bound:
                assert ev.calibrated
                assert ev.shared_values is not None  # per-value detail
            else:
                assert not ev.calibrated

    def test_check_compatible_rejects_policy_mismatch(self, big_world):
        dataset, _ = big_world
        cache = EvidenceCache(
            dataset, params=DependenceParams(overlap_policy="auto")
        )
        from repro.exceptions import DataError

        with pytest.raises(DataError):
            cache.check_compatible(DependenceParams())
        with pytest.raises(DataError):
            # same policy, different bound: evidence would differ
            cache.check_compatible(
                DependenceParams(overlap_policy="auto", overlap_warning_bound=64)
            )

    def test_auto_through_depen_both_truth_backends(self, big_world):
        """The policy composes with the iterative loop and both truth
        backends agree bitwise on its results."""
        dataset, _ = big_world
        it = IterationParams(max_rounds=3)
        results = {
            backend: Depen(
                DependenceParams(overlap_policy="auto", truth_backend=backend),
                it,
            ).discover(dataset)
            for backend in ("dict", "columnar")
        }
        assert results["dict"].decisions == results["columnar"].decisions
        assert results["dict"].distributions == results["columnar"].distributions
        assert results["dict"].accuracies == results["columnar"].accuracies


class TestOverDetectionDocumented:
    """The behaviour the warning exists for, pinned at threshold 0.9."""

    def test_expected_log_uniform_over_detects_where_marginal_does_not(
        self, big_world
    ):
        dataset, world = big_world
        probs = uniform_value_probabilities(dataset)
        accuracies = {s: 0.8 for s in dataset.sources}
        planted = world.dependent_pairs()

        with pytest.warns(OverlapCalibrationWarning):
            aggressive = discover_dependence(
                dataset, probs, accuracies, DependenceParams()
            )
        calibrated = discover_dependence(
            dataset,
            probs,
            accuracies,
            DependenceParams(evidence_form="marginal"),
        )
        false_aggressive = aggressive.detected_pairs(0.9) - planted
        false_calibrated = calibrated.detected_pairs(0.9) - planted
        # The hazard: >100 false positives out of 190 candidate pairs,
        # against a handful under the escape hatch.
        assert len(false_aggressive) > 100
        assert len(false_calibrated) < 20
