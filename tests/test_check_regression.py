"""Self-test of the CI perf-regression gate (benchmarks/check_regression.py).

The gate is exercised exactly the way CI runs it — as a subprocess over
a JSON file — with a healthy trajectory, a doctored one (a speedup
pushed below its floor), a partial one (skipped bench), and garbage.
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys
from pathlib import Path

GATE = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"

HEALTHY = {
    "schema": 1,
    "suite": "bench_scalability",
    "env": {"ci": True, "cpu_count": 4, "platform": "test", "python": "3.12"},
    "results": {
        "batch_vs_per_pair": {"speedup": 8.5, "pairs": 1225},
        "round_refresh": {"speedup": 2.6, "pairs": 1225},
        "ingest_vs_rebuild": {
            "speedups_by_dirty_fraction": {"2%": 12.0, "5%": 9.0, "10%": 6.5}
        },
        "mutation_sync": {"speedup": 3.9, "mutations": 300},
        "serial_vs_sharded": {"speedups": {"numpy": 2.1, "process_4": 1.6}},
        "streaming_rescore": {"pairs": 1225, "rescored": 77},
        "sync_delta": {
            "full_payload_bytes": 80000,
            "delta_bytes": 7000,
            "shipped_bytes_ratio": 11.4,
        },
        "recovery": {
            "clean_sync_s": 0.05,
            "recovery_sync_s": 0.12,
            "worker_losses": 1,
            "overhead_ratio": 2.4,
        },
        "pair_posterior_batch": {"speedup": 7.1, "pairs": 1225},
        "serving": {
            "qps": 150000.0,
            "p50_ms": 0.002,
            "p99_ms": 0.010,
            "torn_reads": 0,
            "versions_published": 10,
        },
        "truth_round": {
            "speedup": 2.9,
            "depen_restricted_rescore": {"rescored": 9800, "reused": 2450},
        },
    },
}


def _run(tmp_path, payload, *args):
    path = tmp_path / "trajectory.json"
    path.write_text(json.dumps(payload))
    return subprocess.run(
        [sys.executable, str(GATE), str(path), *args],
        capture_output=True,
        text=True,
    )


def test_healthy_trajectory_passes(tmp_path):
    result = _run(tmp_path, HEALTHY)
    assert result.returncode == 0, result.stdout
    assert "all perf gates hold" in result.stdout
    # Every gated metric appears in the delta table.
    for metric in (
        "batch_vs_per_pair.speedup",
        "round_refresh.speedup",
        "ingest_vs_rebuild.speedup[5%]",
        "mutation_sync.speedup",
        "serial_vs_sharded.speedups.numpy",
        "streaming_rescore.rescored/pairs",
        "sync_delta.shipped_bytes_ratio",
        "recovery.overhead_ratio",
        "pair_posterior_batch.speedup",
        "serving.qps",
        "serving.p99_ms",
        "serving.torn_reads",
        "truth_round.speedup",
        "truth_round.depen_restricted_rescore.reused",
    ):
        assert metric in result.stdout


def test_mutation_sync_gate_catches_slow_sync(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["mutation_sync"]["speedup"] = 1.4  # below 3.0
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "mutation_sync.speedup" in result.stdout
    assert "REGRESSION" in result.stdout


def test_serving_torn_read_gate_is_zero_tolerance(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["serving"]["torn_reads"] = 1
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "serving.torn_reads" in result.stdout
    assert "REGRESSION" in result.stdout


def test_serving_qps_gate_catches_slow_reads(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["serving"]["qps"] = 320.0  # below 500
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "serving.qps" in result.stdout
    assert "REGRESSION" in result.stdout


def test_sync_delta_ratio_gate_catches_full_reships(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    # A sync() that re-serializes full shard state instead of deltas.
    doctored["results"]["sync_delta"]["shipped_bytes_ratio"] = 1.2
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "sync_delta.shipped_bytes_ratio" in result.stdout
    assert "REGRESSION" in result.stdout


def test_recovery_gate_catches_slow_recovery(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    # A worker loss whose respawn + re-ship costs more than 3 clean syncs.
    doctored["results"]["recovery"]["overhead_ratio"] = 4.5
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "recovery.overhead_ratio" in result.stdout
    assert "REGRESSION" in result.stdout


def test_doctored_speedup_fails_with_readable_delta(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["round_refresh"]["speedup"] = 1.1  # below 1.3
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "REGRESSION" in result.stdout
    assert "round_refresh.speedup" in result.stdout
    assert "FAIL: round_refresh.speedup" in result.stdout
    # The healthy metrics still render as ok rows.
    assert "batch_vs_per_pair.speedup" in result.stdout


def test_posterior_batch_gate_catches_slow_kernel(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["pair_posterior_batch"]["speedup"] = 2.4  # below 3.0
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "pair_posterior_batch.speedup" in result.stdout
    assert "REGRESSION" in result.stdout


def test_truth_round_reuse_gate_catches_dead_restriction(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["truth_round"]["depen_restricted_rescore"]["reused"] = 0
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "truth_round.depen_restricted_rescore.reused" in result.stdout
    assert "REGRESSION" in result.stdout


def test_restriction_ratio_gate_is_a_ceiling(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["streaming_rescore"]["rescored"] = 1100  # 0.9 > 0.7
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "streaming_rescore.rescored/pairs" in result.stdout
    assert "REGRESSION" in result.stdout


def test_missing_section_fails_unless_allowed(tmp_path):
    partial = copy.deepcopy(HEALTHY)
    del partial["results"]["round_refresh"]  # e.g. the bench was skipped
    strict = _run(tmp_path, partial)
    assert strict.returncode == 1
    assert "MISSING" in strict.stdout
    lenient = _run(tmp_path, partial, "--allow-missing")
    assert lenient.returncode == 0, lenient.stdout
    assert "MISSING (allowed)" in lenient.stdout


def test_malformed_metric_fails_readably(tmp_path):
    doctored = copy.deepcopy(HEALTHY)
    doctored["results"]["serial_vs_sharded"] = {"speedups": {}}
    result = _run(tmp_path, doctored)
    assert result.returncode == 1
    assert "UNREADABLE" in result.stdout


def test_unreadable_file_fails(tmp_path):
    path = tmp_path / "trajectory.json"
    path.write_text("{not json")
    result = subprocess.run(
        [sys.executable, str(GATE), str(path)], capture_output=True, text=True
    )
    assert result.returncode == 1
    assert "cannot read" in result.stdout
    missing = subprocess.run(
        [sys.executable, str(GATE), str(tmp_path / "nope.json")],
        capture_output=True,
        text=True,
    )
    assert missing.returncode == 1


def test_results_mapping_required(tmp_path):
    result = _run(tmp_path, {"schema": 1})
    assert result.returncode == 1
    assert "no 'results' mapping" in result.stdout
