"""Tests for naive voting, ACCU and TruthFinder, including the paper's Example 2.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import ClaimDataset
from repro.datasets.paper_tables import TABLE1_TRUTH
from repro.exceptions import DataError, ParameterError
from repro.truth import Accu, NaiveVote, TruthFinder
from repro.dependence.graph import DependenceGraph
from repro.truth.vote_counting import (
    accuracy_score,
    all_discounted_vote_counts,
    decide,
    discounted_vote_counts,
    softmax_distribution,
)


class TestNaiveVoteOnTable1:
    """Example 2.1, first half: voting over the honest sources."""

    def test_correct_on_first_four_without_copiers(self, table1_no_copiers):
        result = NaiveVote().discover(table1_no_copiers)
        for researcher in ("Suciu", "Halevy", "Balazinska", "Dalvi"):
            assert result.decisions[researcher] == TABLE1_TRUTH[researcher]

    def test_unsure_about_dong_without_copiers(self, table1_no_copiers):
        vote = NaiveVote()
        assert vote.is_unsure(table1_no_copiers, "Dong")
        assert not vote.is_unsure(table1_no_copiers, "Balazinska")

    def test_copiers_flip_three_decisions(self, table1):
        """Example 2.1, second half: S4/S5 make voting wrong on 3 of 5."""
        result = NaiveVote().discover(table1)
        wrong = [
            obj
            for obj, truth in TABLE1_TRUTH.items()
            if result.decisions[obj] != truth
        ]
        assert sorted(wrong) == ["Dalvi", "Dong", "Halevy"]

    def test_distributions_are_vote_shares(self, table1):
        result = NaiveVote().discover(table1)
        assert result.probability("Halevy", "UW") == pytest.approx(3 / 5)
        assert result.probability("Halevy", "Google") == pytest.approx(2 / 5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(DataError):
            NaiveVote().discover(ClaimDataset())


class TestAccu:
    def test_perfect_without_copiers(self, table1_no_copiers):
        result = Accu().discover(table1_no_copiers)
        assert result.accuracy_against(TABLE1_TRUTH) == 1.0

    def test_fooled_by_copiers(self, table1):
        """Accuracy alone cannot resist a copier clique."""
        result = Accu().discover(table1)
        assert result.accuracy_against(TABLE1_TRUTH) < 0.5

    def test_accuracies_iterate_above_initial_for_good_source(
        self, table1_no_copiers
    ):
        result = Accu().discover(table1_no_copiers)
        assert result.accuracies["S1"] > 0.9

    def test_converges_and_traces(self, table1_no_copiers):
        result = Accu().discover(table1_no_copiers)
        assert result.converged
        assert len(result.trace) == result.rounds

    def test_distributions_sum_to_one(self, copier_world):
        dataset, _ = copier_world
        result = Accu().discover(dataset)
        for obj, dist in result.distributions.items():
            assert sum(dist.values()) == pytest.approx(1.0)


class TestTruthFinder:
    def test_perfect_without_copiers(self, table1_no_copiers):
        result = TruthFinder().discover(table1_no_copiers)
        assert result.accuracy_against(TABLE1_TRUTH) == 1.0

    def test_fooled_by_copiers(self, table1):
        result = TruthFinder().discover(table1)
        assert result.accuracy_against(TABLE1_TRUTH) < 0.5

    def test_rejects_bad_gamma(self):
        with pytest.raises(ParameterError):
            TruthFinder(gamma=0.0)

    def test_rejects_bad_damping(self):
        with pytest.raises(ParameterError):
            TruthFinder(damping=1.0)

    def test_trust_stays_in_unit_interval(self, copier_world):
        dataset, _ = copier_world
        result = TruthFinder().discover(dataset)
        for trust in result.accuracies.values():
            assert 0.0 <= trust <= 1.0


class TestDiscountedVoteCountValidation:
    """Satellite bugfix: a provider missing from the accuracy maps must
    fail fast with a named ParameterError, not sort last and KeyError."""

    def _dataset(self):
        return ClaimDataset.from_table(
            {"o1": {"A": "x", "B": "x", "C": "y"}}
        )

    def test_missing_accuracy_names_the_source(self):
        dataset = self._dataset()
        scores = {"A": 1.0, "B": 1.0, "C": 1.0}
        accuracies = {"A": 0.8, "B": 0.8}  # C missing
        with pytest.raises(ParameterError, match="'C'"):
            discounted_vote_counts(
                dataset, "o1", scores, DependenceGraph(), 0.8, accuracies
            )

    def test_missing_score_names_the_source(self):
        dataset = self._dataset()
        scores = {"A": 1.0, "C": 1.0}  # B missing
        accuracies = {"A": 0.8, "B": 0.8, "C": 0.8}
        with pytest.raises(ParameterError, match="'B'"):
            discounted_vote_counts(
                dataset, "o1", scores, DependenceGraph(), 0.8, accuracies
            )

    def test_batch_variant_validates_whole_dataset(self):
        dataset = self._dataset()
        with pytest.raises(ParameterError, match="'C'"):
            all_discounted_vote_counts(
                dataset,
                {"A": 1.0, "B": 1.0, "C": 1.0},
                DependenceGraph(),
                0.8,
                {"A": 0.8, "B": 0.8},
            )

    def test_complete_maps_still_count(self):
        dataset = self._dataset()
        scores = {"A": 1.0, "B": 1.0, "C": 1.0}
        accuracies = {"A": 0.8, "B": 0.8, "C": 0.8}
        counts = discounted_vote_counts(
            dataset, "o1", scores, DependenceGraph(), 0.8, accuracies
        )
        assert counts == {"x": pytest.approx(2.0), "y": pytest.approx(1.0)}


class TestVoteCounting:
    def test_accuracy_score_monotone_in_accuracy(self):
        assert accuracy_score(0.9, 100) > accuracy_score(0.5, 100)

    def test_accuracy_score_monotone_in_n(self):
        assert accuracy_score(0.8, 1000) > accuracy_score(0.8, 10)

    def test_accuracy_score_rejects_degenerate(self):
        with pytest.raises(ParameterError):
            accuracy_score(1.0, 100)
        with pytest.raises(ParameterError):
            accuracy_score(0.5, 0)

    def test_decide_breaks_ties_deterministically(self):
        counts = {"a": 1.0, "b": 1.0}
        assert decide(counts) == decide(dict(reversed(list(counts.items()))))

    def test_softmax_empty(self):
        assert softmax_distribution({}) == {}

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=-50, max_value=50),
            min_size=1,
        )
    )
    @settings(max_examples=80)
    def test_softmax_is_distribution(self, counts):
        dist = softmax_distribution(counts)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in dist.values())

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=-50, max_value=50),
            min_size=2,
        ),
        st.floats(min_value=-20, max_value=20),
    )
    @settings(max_examples=60)
    def test_softmax_shift_invariant(self, counts, shift):
        shifted = {v: c + shift for v, c in counts.items()}
        base = softmax_distribution(counts)
        moved = softmax_distribution(shifted)
        for value in counts:
            assert moved[value] == pytest.approx(base[value], abs=1e-9)

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=-20, max_value=20),
            min_size=2,
        )
    )
    @settings(max_examples=60)
    def test_softmax_argmax_matches_decide(self, counts):
        dist = softmax_distribution(counts)
        winner = decide(counts)
        assert dist[winner] == max(dist.values())
