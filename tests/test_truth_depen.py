"""Tests for DEPEN — the paper's core algorithm (Examples 2.1 and 3.1)."""

import pytest

from repro.core.params import DependenceParams, IterationParams
from repro.datasets.paper_tables import TABLE1_TRUTH
from repro.eval import detection_score
from repro.generators import simple_copier_world
from repro.truth import Accu, Depen, NaiveVote


class TestDepenOnTable1:
    """The paper's headline example, end to end."""

    def test_recovers_all_five_truths_despite_copiers(self, table1):
        result = Depen().discover(table1)
        assert result.decisions == TABLE1_TRUTH

    def test_perfect_without_copiers_too(self, table1_no_copiers):
        result = Depen().discover(table1_no_copiers)
        assert result.accuracy_against(TABLE1_TRUTH) == 1.0

    def test_detects_the_copier_clique(self, table1):
        """Example 3.1: S3, S4, S5 share false values -> dependent."""
        result = Depen().discover(table1)
        dependence = result.dependence
        assert dependence.probability("S3", "S4") > 0.9
        assert dependence.probability("S3", "S5") > 0.9
        assert dependence.probability("S4", "S5") > 0.9

    def test_honest_sources_not_flagged(self, table1):
        """Accurate sources sharing true values stay independent
        (the 'accurate sources' challenge of section 3.1)."""
        result = Depen().discover(table1)
        dependence = result.dependence
        assert dependence.probability("S1", "S2") < 0.2
        assert dependence.probability("S1", "S3") < 0.2
        assert dependence.probability("S2", "S3") < 0.2

    def test_estimated_accuracies_rank_correctly(self, table1):
        result = Depen().discover(table1)
        accuracies = result.accuracies
        assert accuracies["S1"] > accuracies["S2"] > accuracies["S3"]
        assert accuracies["S3"] >= accuracies["S5"]

    def test_copier_groups(self, table1):
        result = Depen().discover(table1)
        groups = result.dependence.copier_groups(threshold=0.5)
        assert {"S3", "S4", "S5"} in groups

    def test_beats_vote_and_accu(self, table1):
        depen_acc = Depen().discover(table1).accuracy_against(TABLE1_TRUTH)
        vote_acc = NaiveVote().discover(table1).accuracy_against(TABLE1_TRUTH)
        accu_acc = Accu().discover(table1).accuracy_against(TABLE1_TRUTH)
        assert depen_acc == 1.0
        assert depen_acc > vote_acc
        assert depen_acc > accu_acc


class TestDepenOnSyntheticWorlds:
    def test_detects_planted_clique(self, copier_world):
        dataset, world = copier_world
        result = Depen().discover(dataset)
        detected = result.dependence.detected_pairs(0.5)
        # Direct copier->original edges must all be found; pairs of
        # sibling copiers (same original) also legitimately show up.
        assert world.dependent_pairs() <= detected
        siblings = {
            frozenset((a, b))
            for a in world.copiers()
            for b in world.copiers()
            if a < b
        }
        assert detected <= world.dependent_pairs() | siblings

    def test_truth_at_least_as_good_as_vote(self, copier_world):
        dataset, world = copier_world
        depen_acc = Depen().discover(dataset).accuracy_against(world.truth)
        vote_acc = NaiveVote().discover(dataset).accuracy_against(world.truth)
        assert depen_acc >= vote_acc

    def test_partial_copier_detected(self):
        dataset, world = simple_copier_world(
            n_objects=120,
            n_independent=4,
            n_copiers=2,
            accuracy=0.7,
            copy_rate=0.6,
            copier_coverage=0.5,
            seed=13,
        )
        result = Depen().discover(dataset)
        score = detection_score(
            result.dependence.detected_pairs(0.5), world.dependent_pairs()
        )
        assert score.recall == 1.0

    def test_no_copiers_no_detections(self):
        dataset, world = simple_copier_world(
            n_objects=100, n_independent=6, n_copiers=0, accuracy=0.8, seed=3
        )
        result = Depen().discover(dataset)
        assert result.dependence.detected_pairs(0.5) == set()

    def test_min_overlap_skips_thin_pairs(self, table1):
        result = Depen(min_overlap=10).discover(table1)
        # Overlaps are all 5 objects < 10: nothing analysed, votes undiscounted.
        assert len(result.dependence) == 0


class TestDepenConfiguration:
    def test_respects_round_cap(self, table1):
        result = Depen(iteration=IterationParams(max_rounds=2)).discover(table1)
        assert result.rounds <= 2

    def test_custom_params_accepted(self, table1):
        params = DependenceParams(alpha=0.1, copy_rate=0.5, n_false_values=10)
        result = Depen(params=params).discover(table1)
        assert result.decisions  # runs to completion

    def test_result_distributions_normalised(self, table1):
        result = Depen().discover(table1)
        for dist in result.distributions.values():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_confidence_of_decisions(self, table1):
        result = Depen().discover(table1)
        for obj in TABLE1_TRUTH:
            assert result.confidence(obj) >= max(
                result.distributions[obj].values()
            ) - 1e-12
