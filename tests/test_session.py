"""repro.Session facade: lifecycle, policy normalization, async serving."""

import asyncio
import warnings

import pytest

import repro
from repro.core.claims import Claim
from repro.core.dataset import MutationBatch
from repro.core.params import DependenceParams
from repro.exceptions import ParameterError, ServeError
from repro.generators import simple_copier_world
from repro.serve import ServingEngine
from repro.truth.accu import Accu


@pytest.fixture()
def world():
    return simple_copier_world(
        n_objects=30, n_independent=5, n_copiers=2, seed=7
    )


# ---------------------------------------------------------------------------
# policy-keyword normalization
# ---------------------------------------------------------------------------


def test_policy_keywords_fold_into_params():
    session = repro.Session(
        truth_backend="dict",
        posterior_backend="scalar",
        entry_store="list",
    )
    assert session.params.truth_backend == "dict"
    assert session.params.posterior_backend == "scalar"
    assert session.params.entry_store == "list"
    session.close()


def test_explicit_keyword_beats_params_field():
    base = DependenceParams(truth_backend="dict")
    session = repro.Session(params=base, truth_backend="columnar")
    assert session.params.truth_backend == "columnar"
    assert base.truth_backend == "dict"  # the passed params are untouched
    session.close()


def test_unknown_policy_keyword_rejected_eagerly():
    with pytest.raises(ParameterError, match="unknown Session keyword"):
        repro.Session(truth_bakend="dict")


def test_dataset_and_claims_are_exclusive(world):
    dataset, _ = world
    with pytest.raises(ParameterError, match="not both"):
        repro.Session(dataset=dataset, claims=list(dataset))


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


def test_full_lifecycle(world):
    dataset, world_truth = world
    with repro.Session(claims=list(dataset), min_overlap=5) as session:
        graph = session.discover()
        assert graph is session.graph
        result = session.run_truth()
        snapshot = session.publish()
        assert snapshot.version == 1
        assert not session.dirty
        for obj in list(dataset.objects)[:10]:
            answer = session.query(obj)
            assert answer.value == result.decisions[obj]
            assert answer.version == 1
            assert session.query_value(obj, answer.value) == answer.probability
            assert session.distribution(obj) == result.distributions[obj]
        top = session.recommend(3)
        assert len(top) == 3
        pair = session.explain_dependence("ind00", "cop00")
        assert 0.0 <= pair["p_dependent"] <= 1.0
        neighbourhood = session.explain_dependence("cop00")
        assert neighbourhood
        stats = session.stats()
        assert stats["store"]["published"] == 1
        assert stats["claims"] == len(dataset)


def test_query_before_publish_guides(world):
    dataset, _ = world
    with repro.Session(dataset=dataset) as session:
        with pytest.raises(ServeError, match="no snapshot yet"):
            session.query(next(iter(dataset.objects)))


def test_refresh_skips_clean_state(world):
    dataset, _ = world
    with repro.Session(dataset=dataset, min_overlap=5) as session:
        first = session.refresh()
        assert first is not None and first.version == 1
        assert session.refresh() is None  # nothing changed
        session.feed([Claim(source="s-new", object="obj0000", value="x")])
        assert session.dirty
        second = session.refresh()
        assert second is not None and second.version == 2
        assert not session.dirty


def test_feed_drained_on_publish(world):
    dataset, _ = world
    with repro.Session(dataset=dataset, min_overlap=5) as session:
        queued = session.feed(
            [Claim(source="s-fed", object="obj0000", value="fed")]
            )
        assert queued == 1
        assert session.stats()["pending"] == 1
        session.publish()
        assert session.stats()["pending"] == 0
        assert "s-fed" in session.dataset.sources


def test_pinned_version_query(world):
    dataset, _ = world
    with repro.Session(dataset=dataset, min_overlap=5) as session:
        session.publish()
        old = session.query("obj0000", version=1)
        session.ingest(
            [Claim(source=f"n{i}", object="obj0000", value="new") for i in range(9)]
        )
        session.publish()
        assert session.query("obj0000").value == "new"
        assert session.query("obj0000", version=1) == old


# ---------------------------------------------------------------------------
# async serving front-end
# ---------------------------------------------------------------------------


def test_serving_engine_reads(world):
    dataset, _ = world

    async def scenario():
        with repro.Session(dataset=dataset, min_overlap=5) as session:
            session.publish()
            engine = session.serving()
            answer = await engine.query("obj0000")
            assert answer.version == 1
            assert await engine.query_value("obj0000", answer.value) == (
                answer.probability
            )
            top = await engine.recommend(3)
            assert len(top) == 3
            again = await engine.recommend(3)
            assert again == top  # memoized scorecards, same version
            pair = await engine.explain_dependence("ind00", "cop00")
            assert "p_dependent" in pair
            stats = engine.stats()
            assert stats["queries"] == 2
            assert stats["recommends"] == 2

    asyncio.run(scenario())


def test_serving_engine_background_loop(world):
    dataset, _ = world

    async def scenario():
        with repro.Session(dataset=dataset, min_overlap=5) as session:
            session.publish()
            engine = session.serving(refresh_interval=0.01)
            engine.start()
            assert engine.running
            with pytest.raises(ServeError, match="already running"):
                engine.start()
            session.feed(
                [Claim(source="live", object="obj0000", value="live-value")]
            )
            for _ in range(200):
                if session.store.stats()["latest_version"] >= 2:
                    break
                await asyncio.sleep(0.01)
            answer = await engine.query("obj0000")
            assert answer.version >= 2
            await engine.stop()
            assert not engine.running
            assert engine.stats()["refreshes"] >= 1

    asyncio.run(scenario())


def test_serving_engine_requires_refresh_for_loop(world):
    dataset, _ = world

    async def scenario():
        with repro.Session(dataset=dataset, min_overlap=5) as session:
            session.publish()
            engine = ServingEngine(session.store)
            assert (await engine.query("obj0000")).version == 1
            with pytest.raises(ServeError, match="no refresh callable"):
                engine.start()
            with pytest.raises(ServeError, match="no refresh callable"):
                await engine.refresh_once()

    asyncio.run(scenario())


def test_serving_engine_validates_interval(world):
    dataset, _ = world
    with repro.Session(dataset=dataset) as session:
        with pytest.raises(ServeError, match="refresh_interval"):
            session.serving(refresh_interval=0.0)


# ---------------------------------------------------------------------------
# supervised serving: loop survival, quarantine, health
# ---------------------------------------------------------------------------


def test_refresh_failure_never_kills_the_loop(world):
    """Two consecutive refresh failures: the loop records them, backs
    off, keeps serving the last-good snapshot, then recovers."""
    dataset, _ = world

    async def scenario():
        failures = {"left": 2}

        def refresh():
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("wedged executor")
            return None

        with repro.Session(dataset=dataset, min_overlap=5) as session:
            session.publish()
            engine = ServingEngine(
                session.store, refresh, refresh_interval=0.01
            )
            engine.start()
            for _ in range(500):
                if engine.health()["refreshes"] >= 1:
                    break
                await asyncio.sleep(0.01)
            assert engine.running  # the failures did not kill the loop
            health = engine.health()
            assert health["refreshes"] >= 1
            assert health["total_failures"] == 2
            assert health["consecutive_failures"] == 0  # recovered
            assert "wedged executor" in health["last_error"]
            assert health["snapshot_staleness"] is not None
            # Reads were served by the last-good snapshot throughout.
            assert (await engine.query("obj0000")).version == 1
            await engine.stop()
            assert not engine.running

    asyncio.run(scenario())


def test_refresh_once_reraises_but_records(world):
    dataset, _ = world

    async def scenario():
        def refresh():
            raise RuntimeError("boom")

        with repro.Session(dataset=dataset, min_overlap=5) as session:
            session.publish()
            engine = ServingEngine(session.store, refresh)
            with pytest.raises(RuntimeError, match="boom"):
                await engine.refresh_once()
            health = engine.health()
            assert health["total_failures"] == 1
            assert health["consecutive_failures"] == 1
            assert "boom" in health["last_error"]

    asyncio.run(scenario())


def test_poison_batch_quarantined_while_serving_continues(world):
    """The acceptance scenario: a poison mutation batch fed to a live
    serving session is quarantined to the dead-letter queue, the batch
    behind it still lands, the engine keeps answering, and health()
    reports the quarantine."""
    dataset, _ = world

    async def scenario():
        with repro.Session(dataset=dataset, min_overlap=5) as session:
            session.publish()
            engine = session.serving(refresh_interval=0.01)
            engine.start()
            session.feed(
                MutationBatch(retractions=(("__ghost__", "obj0000"),))
            )
            session.feed(
                [Claim(source="live", object="obj0000", value="fresh")]
            )
            for _ in range(500):
                if (
                    session.quarantined_total >= 1
                    and session.store.stats()["latest_version"] >= 2
                ):
                    break
                await asyncio.sleep(0.01)
            assert engine.running  # the poison never stopped the loop
            assert session.quarantined_total == 1
            (letter,) = session.dead_letters
            assert letter.batch.retractions == (("__ghost__", "obj0000"),)
            assert "DataError" in letter.error
            # The batch queued *behind* the poison landed.
            answer = await engine.query("obj0000")
            assert answer.version >= 2
            health = engine.health()
            assert health["quarantine_depth"] == 1
            assert health["quarantined_total"] == 1
            assert health["pending_batches"] == 0
            assert health["total_failures"] == 0  # refresh itself never failed
            await engine.stop()
            stats = session.stats()
            assert stats["quarantined"] == 1
            assert stats["quarantined_total"] == 1

    asyncio.run(scenario())


def test_dead_letter_queue_is_bounded(world):
    dataset, _ = world
    with repro.Session(
        dataset=dataset, min_overlap=5, dead_letter_limit=1
    ) as session:
        session.feed(MutationBatch(retractions=(("__ghost__", "a"),)))
        session.feed(MutationBatch(retractions=(("__ghost__", "b"),)))
        session.publish()
        assert session.quarantined_total == 2
        (letter,) = session.dead_letters  # oldest evicted, bound held
        assert letter.batch.retractions[0][1] == "b"


def test_dead_letter_limit_validated(world):
    dataset, _ = world
    with pytest.raises(ParameterError, match="dead_letter_limit"):
        repro.Session(dataset=dataset, dead_letter_limit=0)


def test_direct_apply_still_raises(world):
    """Quarantine is only for the fire-and-forget feed path."""
    from repro.exceptions import DataError

    dataset, _ = world
    with repro.Session(dataset=dataset, min_overlap=5) as session:
        with pytest.raises(DataError):
            session.apply(
                MutationBatch(retractions=(("__ghost__", "obj0000"),))
            )
        assert session.quarantined_total == 0


def test_session_execution_health_surfaces_supervisor(world):
    dataset, _ = world
    params = DependenceParams(parallel_backend="resident", num_workers=2)
    with repro.Session(
        dataset=dataset, params=params, min_overlap=5
    ) as session:
        session.publish()
        health = session.execution_health()
        assert health["supervised"]
        assert health["backend"] == "resident"
        assert not health["degraded"]
    with repro.Session(dataset=dataset, min_overlap=5) as session:
        # A default session is unsupervised — unless an env-override CI
        # job promotes the default backend ("serial" is the default
        # value, so the hook applies to it too).
        if session.params.parallel_backend == "serial":
            assert session.execution_health() == {"supervised": False}
        else:
            assert session.execution_health()["supervised"]


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------


def test_top_level_discover_dependence_warns(world):
    dataset, _ = world
    with pytest.warns(DeprecationWarning, match="Session.discover"):
        fn = repro.discover_dependence
    from repro.dependence import discover_dependence

    assert fn is discover_dependence


def test_unknown_top_level_attribute_raises():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.not_a_thing  # noqa: B018


def test_accu_backend_keyword_warns(world):
    dataset, _ = world
    with pytest.warns(DeprecationWarning, match="truth_backend"):
        accu = Accu(backend="dict")
    assert accu.truth_backend == "dict"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        Accu(truth_backend="dict")  # the new spelling is silent
