"""Tests for temporal copy detection: Table 3 and synthetic worlds."""

import pytest

from repro.core.params import TemporalParams
from repro.dependence.temporal import (
    collect_co_adoptions,
    discover_temporal_dependence,
    empirical_order_profile,
    lag_order_profile,
)
from repro.eval import detection_score
from repro.generators import (
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_temporal_world,
)
from repro.temporal.lifespan import infer_timelines


class TestTable3:
    """Example 3.2: S3 is a lazy copier of S1; S2 is slow but independent."""

    def test_s3_flagged_as_copier_of_s1(self, table3):
        graph = discover_temporal_dependence(table3)
        pair = graph.get("S1", "S3")
        assert pair.p_dependent > 0.5
        assert pair.likely_copier() == "S3"

    def test_s2_not_flagged(self, table3):
        graph = discover_temporal_dependence(table3)
        assert graph.probability("S1", "S2") < 0.2

    def test_direction_confidence(self, table3):
        pair = discover_temporal_dependence(table3).get("S1", "S3")
        assert pair.p_s2_copies_s1 > 10 * pair.p_s1_copies_s2  # S3 is s2 of the pair

    def test_s2_s3_ranked_below_nothing_suspicious(self, table3):
        graph = discover_temporal_dependence(table3)
        # S3 trails S2's stale values too; it may be moderately flagged,
        # but (S1,S2) must stay the cleanest pair.
        assert graph.probability("S1", "S2") < graph.probability("S1", "S3")
        assert graph.probability("S1", "S2") < graph.probability("S2", "S3")


class TestCoAdoptions:
    def test_events_enumerated(self, table3):
        timelines, _ = infer_timelines(table3)
        events = collect_co_adoptions(table3, "S1", "S3", timelines)
        values = {(e.object, e.value) for e in events}
        assert ("Balazinska", "UW") in values
        assert ("Halevy", "UW") in values

    def test_lag_sign(self, table3):
        timelines, _ = infer_timelines(table3)
        events = collect_co_adoptions(table3, "S1", "S3", timelines)
        balazinska = next(e for e in events if e.object == "Balazinska")
        assert balazinska.lag == pytest.approx(1.0)  # S3 2007 vs S1 2006

    def test_corroboration_rescue(self, table3):
        timelines, _ = infer_timelines(table3)
        events = collect_co_adoptions(table3, "S1", "S3", timelines)
        # All shared UW adoptions are adopted by all three sources and
        # are ever-true anyway.
        assert all(e.ever_true for e in events)


class TestOrderProfiles:
    def test_lag_order_profile_shapes(self):
        profile = lag_order_profile([0.0, 0.1], [1.0, 2.0], window=5.0)
        assert profile == (1.0, 0.0, 0.0, 0.0)

    def test_lag_order_profile_out_of_window(self):
        profile = lag_order_profile([0.0], [10.0], window=5.0)
        assert profile == (0.0, 1.0, 0.0, 0.0)

    def test_lag_order_profile_empty(self):
        assert lag_order_profile([], [1.0], window=5.0) is None

    def test_empirical_profile_sums_to_one(self, table3):
        timelines, _ = infer_timelines(table3)
        events = collect_co_adoptions(table3, "S1", "S3", timelines)
        profile = empirical_order_profile(events, True, TemporalParams())
        assert sum(profile) == pytest.approx(1.0)

    def test_empirical_profile_none_without_events(self):
        assert empirical_order_profile([], True, TemporalParams()) is None


class TestSyntheticTemporalWorlds:
    @pytest.fixture(scope="class")
    def world(self):
        config = TemporalConfig(
            n_objects=60,
            time_span=40.0,
            transitions_per_object=2.5,
            n_false_values=10,
            sources=[
                TemporalSourceSpec("fresh", lag=0.3, error_rate=0.1),
                TemporalSourceSpec("slow", lag=3.0, error_rate=0.1),
                TemporalSourceSpec("mid1", lag=1.0, error_rate=0.1),
                TemporalSourceSpec("mid2", lag=1.5, error_rate=0.1),
                TemporalSourceSpec("mid3", lag=0.7, error_rate=0.1),
            ],
            copiers=[
                TemporalCopierSpec("lazy1", "fresh", poll_interval=3.0, copy_rate=0.8),
                TemporalCopierSpec("lazy2", "mid1", poll_interval=4.0, copy_rate=0.8),
            ],
        )
        return generate_temporal_world(config, seed=11)

    def test_adjusted_mode_detects_copiers_not_slow_sources(self, world):
        dataset, truth = world
        graph = discover_temporal_dependence(
            dataset,
            TemporalParams(freshness_adjustment=1.0),
            leave_pair_out=True,
        )
        score = detection_score(
            graph.detected_pairs(0.5), truth.dependent_pairs()
        )
        assert score.recall >= 0.5
        assert score.precision >= 0.5
        # The slow source must not be flagged against the fresh one.
        assert graph.probability("fresh", "slow") < 0.5

    def test_raw_mode_overflags_slow_sources(self, world):
        """The paper's 'slow providers' challenge, made visible."""
        dataset, truth = world
        graph = discover_temporal_dependence(dataset, TemporalParams())
        detected = graph.detected_pairs(0.5)
        false_positives = detected - truth.dependent_pairs()
        assert len(false_positives) > 0

    def test_oracle_timelines_give_clean_separation(self, world):
        dataset, truth = world
        from repro.temporal.lifespan import exactness_from_timelines

        graph = discover_temporal_dependence(
            dataset,
            TemporalParams(freshness_adjustment=1.0),
            timelines=truth.timelines,
            exactness=exactness_from_timelines(dataset, truth.timelines),
        )
        assert graph.probability("fresh", "lazy1") > 0.9
        assert graph.probability("fresh", "slow") < 0.5

    def test_direction_of_detected_copiers(self, world):
        dataset, truth = world
        graph = discover_temporal_dependence(
            dataset,
            TemporalParams(freshness_adjustment=1.0),
            leave_pair_out=True,
        )
        pair = graph.get("fresh", "lazy1")
        if pair is not None and pair.p_dependent >= 0.5:
            assert pair.likely_copier() == "lazy1"
