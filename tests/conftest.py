"""Shared fixtures: the paper's tables and small synthetic worlds."""

from __future__ import annotations

import pytest

from repro.core.dataset import ClaimDataset
from repro.datasets.paper_tables import (
    RATING_SCALE,
    TABLE2,
    table1_dataset,
    table3_dataset,
)
from repro.generators import simple_copier_world
from repro.opinions.ratings import RatingMatrix


@pytest.fixture
def table1():
    """Table 1 with all five sources."""
    return table1_dataset()


@pytest.fixture
def table1_no_copiers():
    """Table 1 restricted to the three original sources."""
    return table1_dataset(("S1", "S2", "S3"))


@pytest.fixture
def table2_matrix():
    """Table 2 as a rating matrix."""
    return RatingMatrix.from_table(RATING_SCALE, TABLE2)


@pytest.fixture
def table3():
    """Table 3 as a temporal dataset."""
    return table3_dataset()


@pytest.fixture
def copier_world():
    """A mid-size synthetic snapshot world with a 3-copier clique."""
    return simple_copier_world(
        n_objects=60, n_independent=4, n_copiers=3, accuracy=0.75, seed=7
    )


@pytest.fixture
def tiny_dataset():
    """Three sources, two objects, one conflict."""
    return ClaimDataset.from_table(
        {
            "o1": {"A": "x", "B": "x", "C": "y"},
            "o2": {"A": "u", "B": "v"},
        }
    )
