"""Cross-module integration tests: full pipelines end to end."""

import pytest

from repro.core.params import TemporalParams
from repro.dependence.opinions import discover_rater_dependence
from repro.eval import detection_score, truth_accuracy
from repro.fusion import DataFusion
from repro.generators import (
    BookstoreConfig,
    generate_bookstore_catalog,
    simple_copier_world,
)
from repro.linkage import JointResolver, author_list_similarity
from repro.opinions import DependenceAwareConsensus
from repro.query import (
    KeywordQuery,
    LookupQuery,
    OnlineQueryEngine,
    marginal_gain_order,
    random_order,
)
from repro.recommend import build_scorecards, recommend_sources
from repro.truth import Depen, NaiveVote


@pytest.fixture(scope="module")
def small_bookstore():
    """A scaled-down bookstore world for end-to-end pipelines.

    Sparser than the paper-scale default so that independent store
    pairs rarely reach the overlap prefilter — the same geometry the
    full catalog has at 876 stores × 1263 books.
    """
    config = BookstoreConfig(
        n_stores=40,
        n_books=200,
        n_listings=900,
        max_books_per_store=80,
        n_copier_cliques=3,
        clique_size=3,
        copier_min_books=10,
        copier_max_books=30,
        n_authors=60,
        n_publishers=8,
    )
    return generate_bookstore_catalog(config, seed=17)


def canonicalise_claims(claims):
    """Linkage preprocessing: merge representation variants per book."""
    from repro.linkage import canonicalisation_map

    mapping = {}
    for obj in claims.objects:
        values = claims.values_for(obj)
        support = {v: len(p) for v, p in values.items()}
        local = canonicalisation_map(
            list(values), author_list_similarity, 0.9, support
        )
        for raw, canon in local.items():
            mapping[(obj, raw)] = canon
    return claims.map_values(mapping)


class TestSnapshotPipeline:
    def test_depen_then_fusion_then_recommendation(self):
        dataset, world = simple_copier_world(
            n_objects=80, n_independent=5, n_copiers=3, accuracy=0.75, seed=21
        )
        result = Depen().discover(dataset)
        assert truth_accuracy(result.decisions, world.truth) >= truth_accuracy(
            NaiveVote().discover(dataset).decisions, world.truth
        )

        fusion = DataFusion(discovery=Depen()).fuse(dataset)
        rows = fusion.fused_rows()
        assert len(rows) == len(world.truth)

        coverages = {s: dataset.coverage(s) for s in dataset.sources}
        cards = build_scorecards(
            result.accuracies, coverages, result.dependence
        )
        picks = recommend_sources(cards, result.dependence, k=3)
        # Recommended trio should not include two members of the clique.
        clique = world.copiers() | {e.original for e in world.edges}
        assert sum(1 for p in picks if p in clique) <= 1


class TestBookstorePipeline:
    def test_dependence_discovery_on_author_claims(self, small_bookstore):
        """Linkage + popularity-aware Bayes recovers the planted cliques
        with useful precision; recall stays high."""
        from repro.core.params import DependenceParams

        catalog, world = small_bookstore
        canonical = canonicalise_claims(catalog.field_claims("authors"))
        result = Depen(
            params=DependenceParams(false_value_model="empirical"),
            min_overlap=8,
        ).discover(canonical)
        detected = result.dependence.detected_pairs(0.5)
        score = detection_score(detected, world.dependent_pairs())
        assert score.recall >= 0.5
        assert score.precision >= 0.3

    def test_linkage_improves_author_resolution(self, small_bookstore):
        """The joint resolver produces usable decisions and a sensible
        three-way labelling; canonicalisation compresses the value space
        (its main job — splitting a value across spellings both weakens
        and fakes support)."""
        catalog, world = small_bookstore
        claims = catalog.field_claims("authors")
        resolver = JointResolver(
            similarity=author_list_similarity,
            merge_threshold=0.9,
            gray_threshold=0.7,
        )
        resolved = resolver.resolve(claims)

        truth = {book: record.authors for book, record in world.records.items()}

        def canonical_accuracy(decisions):
            correct = 0
            for book, authors in truth.items():
                decided = decisions.get(book)
                if decided is not None and author_list_similarity(
                    tuple(decided), authors
                ) > 0.9:
                    correct += 1
            return correct / len(truth)

        assert canonical_accuracy(resolved.truth.decisions) >= 0.6

        raw_variants = sum(len(claims.values_for(o)) for o in claims.objects)
        canonical_variants = len(set(resolved.canonical_map.values()))
        assert canonical_variants < raw_variants

        labels = set(resolved.labels.values())
        assert "truth" in labels
        assert "wrong" in labels

    def test_online_ordering_beats_random(self, small_bookstore):
        catalog, world = small_bookstore
        claims = catalog.field_claims("authors")
        offline = Depen(min_overlap=5).discover(claims)
        engine = OnlineQueryEngine(
            catalog,
            accuracies=offline.accuracies,
            dependence=offline.dependence,
        )
        query = KeywordQuery("java")
        reference = query.evaluate(world.true_records())

        smart = engine.run(
            query,
            marginal_gain_order(catalog, offline.accuracies, offline.dependence),
            reference=reference,
        )
        naive = engine.run(
            query, random_order(catalog.stores, seed=3), reference=reference
        )
        from repro.eval import area_under_quality_curve

        assert area_under_quality_curve(
            smart.quality_series()
        ) >= area_under_quality_curve(naive.quality_series())

    def test_lookup_query_fused_answer(self, small_bookstore):
        catalog, world = small_bookstore
        book = catalog.books[0]
        engine = OnlineQueryEngine(catalog)
        records = engine.final_records()
        answer = LookupQuery(book).evaluate(records)
        assert isinstance(answer, tuple)


class TestOpinionPipeline:
    def test_consensus_uses_detection(self, table2_matrix):
        detection = discover_rater_dependence(table2_matrix)
        consensus = DependenceAwareConsensus().aggregate(table2_matrix)
        pair = consensus.dependence.get("R1", "R4")
        assert pair.p_dissimilarity >= detection.get("R1", "R4").p_dissimilarity - 0.2


class TestTemporalPipeline:
    def test_observed_snapshots_still_detect_lazy_copier(self, table3):
        """Incomplete observations (section 3.1): yearly crawls of
        Table 3 still expose S3."""
        observed = table3.observed_at(range(2001, 2009))
        from repro.dependence.temporal import discover_temporal_dependence

        graph = discover_temporal_dependence(observed, TemporalParams())
        assert graph.probability("S1", "S3") > graph.probability("S1", "S2")
