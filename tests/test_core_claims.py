"""Unit tests for claim record types."""

import pytest

from repro.core.claims import Claim, Rating, TemporalClaim, ValuePeriod
from repro.exceptions import DataError


class TestClaim:
    def test_defaults_probability_to_one(self):
        claim = Claim(source="S1", object="o1", value="v")
        assert claim.probability == 1.0

    def test_key_is_source_object(self):
        claim = Claim(source="S1", object="o1", value="v")
        assert claim.key == ("S1", "o1")

    def test_with_value_replaces_only_value(self):
        claim = Claim(source="S1", object="o1", value="v", probability=0.5)
        other = claim.with_value("w")
        assert other.value == "w"
        assert other.source == "S1"
        assert other.probability == 0.5

    def test_rejects_empty_source(self):
        with pytest.raises(DataError):
            Claim(source="", object="o1", value="v")

    def test_rejects_none_value(self):
        with pytest.raises(DataError):
            Claim(source="S1", object="o1", value=None)

    def test_rejects_unhashable_value(self):
        with pytest.raises(DataError):
            Claim(source="S1", object="o1", value=["a", "b"])

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(DataError):
            Claim(source="S1", object="o1", value="v", probability=1.5)

    def test_tuple_values_are_allowed(self):
        claim = Claim(source="S1", object="o1", value=("a", "b"))
        assert claim.value == ("a", "b")

    def test_equality_is_structural(self):
        assert Claim("S1", "o1", "v") == Claim("S1", "o1", "v")
        assert Claim("S1", "o1", "v") != Claim("S1", "o1", "w")


class TestTemporalClaim:
    def test_carries_time(self):
        claim = TemporalClaim(source="S1", object="o1", value="v", time=2004)
        assert claim.time == 2004.0

    def test_rejects_nan_time(self):
        with pytest.raises(DataError):
            TemporalClaim(source="S1", object="o1", value="v", time=float("nan"))

    def test_as_snapshot_drops_time(self):
        claim = TemporalClaim(source="S1", object="o1", value="v", time=2004)
        assert claim.as_snapshot() == Claim(source="S1", object="o1", value="v")


class TestRating:
    def test_key(self):
        rating = Rating(rater="R1", item="m1", score="Good")
        assert rating.key == ("R1", "m1")

    def test_rejects_empty_rater(self):
        with pytest.raises(DataError):
            Rating(rater="", item="m1", score="Good")


class TestValuePeriod:
    def test_contains_half_open(self):
        period = ValuePeriod(value="v", start=2000, end=2005)
        assert period.contains(2000)
        assert period.contains(2004.9)
        assert not period.contains(2005)
        assert not period.contains(1999)

    def test_open_ended_contains_far_future(self):
        period = ValuePeriod(value="v", start=2000)
        assert period.contains(99999)

    def test_rejects_end_before_start(self):
        with pytest.raises(DataError):
            ValuePeriod(value="v", start=2005, end=2000)
