"""Tests for accuracy-split (partial copier) evidence."""

import pytest

from repro.core.dataset import ClaimDataset
from repro.dependence.partial import (
    AccuracySplit,
    accuracy_split,
    batch_accuracy_splits,
    category_splits,
    direction_evidence,
)
from repro.exceptions import DataError


class TestBatchAccuracySplits:
    def test_matches_per_pair_splits(self, copier_world):
        dataset, _ = copier_world
        from repro.dependence.bayes import uniform_value_probabilities

        probs = uniform_value_probabilities(dataset)
        sources = dataset.sources
        pairs = [
            (sources[i], sources[j])
            for i in range(len(sources))
            for j in range(i + 1, len(sources))
        ]
        splits = batch_accuracy_splits(dataset, pairs, probs)
        for s1, s2 in pairs:
            for source, other in ((s1, s2), (s2, s1)):
                batch = splits[(source, other)]
                reference = accuracy_split(dataset, source, other, probs)
                assert batch.overlap_size == reference.overlap_size
                assert batch.private_size == reference.private_size
                assert batch.overlap_accuracy == pytest.approx(
                    reference.overlap_accuracy
                )
                assert batch.private_accuracy == pytest.approx(
                    reference.private_accuracy
                )

    def test_rejects_self_pair(self, copier_world):
        dataset, _ = copier_world
        with pytest.raises(DataError):
            batch_accuracy_splits(dataset, [("ind00", "ind00")], {})


def _hard_probs(dataset, truth):
    return {
        obj: {
            value: (1.0 if value == truth[obj] else 0.0)
            for value in dataset.values_for(obj)
        }
        for obj in dataset.objects
    }


@pytest.fixture
def partial_copier_world():
    """O is accurate everywhere; P copies O on o1-o3 and guesses o4-o6.

    P's overlap accuracy (1.0, copied from accurate O) differs sharply
    from its private accuracy (0.0) — the section 3.2 intuition-2
    signature.
    """
    truth = {f"o{i}": "t" for i in range(1, 7)}
    table = {
        "o1": {"O": "t", "P": "t"},
        "o2": {"O": "t", "P": "t"},
        "o3": {"O": "t", "P": "t"},
        "o4": {"O": "t", "P": "w1"},
        "o5": {"O": "t", "P": "w2"},
        "o6": {"O": "t", "P": "w3"},
    }
    # O covers everything; P's "private" objects are elsewhere.
    table.update(
        {
            "p1": {"P": "w4"},
            "p2": {"P": "w5"},
            "p3": {"P": "w6"},
        }
    )
    truth.update({"p1": "t", "p2": "t", "p3": "t"})
    return ClaimDataset.from_table(table), truth


class TestAccuracySplit:
    def test_partial_copier_shows_split(self, partial_copier_world):
        dataset, truth = partial_copier_world
        probs = _hard_probs(dataset, truth)
        split = accuracy_split(dataset, "P", "O", probs)
        assert split.overlap_accuracy == pytest.approx(0.5)  # 3 copied + 3 own wrong
        assert split.private_accuracy == pytest.approx(0.0)
        assert split.gap > 0

    def test_consistent_source_shows_no_split(self, table1):
        probs = _hard_probs(
            table1,
            {
                "Suciu": "UW",
                "Halevy": "Google",
                "Balazinska": "UW",
                "Dalvi": "Yahoo!",
                "Dong": "AT&T",
            },
        )
        split = accuracy_split(table1, "S1", "S2", probs)
        # S1 and S2 overlap completely: no private remainder, no z-score.
        assert split.private_size == 0
        assert split.z_score == 0.0
        assert split.split_strength == 0.0

    def test_split_against_self_rejected(self, table1):
        with pytest.raises(DataError):
            accuracy_split(table1, "S1", "S1", {})

    def test_unknown_source_rejected(self, table1):
        with pytest.raises(DataError):
            accuracy_split(table1, "S9", "S1", {})

    def test_z_score_grows_with_sample(self):
        small = AccuracySplit("P", "O", 0.9, 0.3, overlap_size=5, private_size=5)
        large = AccuracySplit("P", "O", 0.9, 0.3, overlap_size=50, private_size=50)
        assert abs(large.z_score) > abs(small.z_score)

    def test_split_strength_bounded(self):
        split = AccuracySplit("P", "O", 1.0, 0.0, overlap_size=100, private_size=100)
        assert 0.0 <= split.split_strength < 1.0


class TestDirectionEvidence:
    def test_copier_has_stronger_split(self, partial_copier_world):
        dataset, truth = partial_copier_world
        probs = _hard_probs(dataset, truth)
        evidence = direction_evidence(dataset, "P", "O", probs)
        assert evidence.likely_copier == "P"
        assert evidence.direction_weight("P") > 0.5

    def test_weights_sum_to_one(self, partial_copier_world):
        dataset, truth = partial_copier_world
        probs = _hard_probs(dataset, truth)
        evidence = direction_evidence(dataset, "P", "O", probs)
        total = evidence.direction_weight("P") + evidence.direction_weight("O")
        assert total == pytest.approx(1.0)

    def test_unknown_side_rejected(self, partial_copier_world):
        dataset, truth = partial_copier_world
        probs = _hard_probs(dataset, truth)
        evidence = direction_evidence(dataset, "P", "O", probs)
        with pytest.raises(DataError):
            evidence.direction_weight("Z")


class TestCategorySplits:
    def test_split_localised_to_copied_category(self, partial_copier_world):
        dataset, truth = partial_copier_world
        probs = _hard_probs(dataset, truth)
        categories = {
            "overlap": {"o1", "o2", "o3", "o4", "o5", "o6"},
            "private": {"p1", "p2", "p3"},
        }
        splits = category_splits(dataset, "P", "O", probs, categories)
        assert set(splits) == {"overlap", "private"}
        assert splits["overlap"].overlap_size == 6
        assert splits["private"].private_size == 3

    def test_category_without_claims_skipped(self, partial_copier_world):
        dataset, truth = partial_copier_world
        probs = _hard_probs(dataset, truth)
        splits = category_splits(
            dataset, "P", "O", probs, {"empty": {"nothing"}}
        )
        assert splits == {}
