"""Unit tests for the temporal claim store."""

import pytest

from repro.core.claims import TemporalClaim
from repro.core.temporal_dataset import TemporalDataset
from repro.exceptions import DataError


def _claims(rows):
    return [
        TemporalClaim(source=s, object=o, value=v, time=t)
        for s, o, v, t in rows
    ]


@pytest.fixture
def history_dataset():
    return TemporalDataset(
        _claims(
            [
                ("S1", "o1", "a", 2000),
                ("S1", "o1", "b", 2004),
                ("S2", "o1", "a", 2001),
                ("S1", "o2", "x", 2002),
            ]
        )
    )


class TestHistories:
    def test_history_sorted(self, history_dataset):
        assert history_dataset.history("S1", "o1") == [(2000.0, "a"), (2004.0, "b")]

    def test_history_unknown_pair_empty(self, history_dataset):
        assert history_dataset.history("S9", "o1") == []

    def test_same_time_same_value_is_noop(self):
        dataset = TemporalDataset(_claims([("S1", "o1", "a", 2000)]))
        dataset.add(TemporalClaim("S1", "o1", "a", 2000))
        assert len(dataset) == 1

    def test_same_time_conflicting_value_rejected(self):
        dataset = TemporalDataset(_claims([("S1", "o1", "a", 2000)]))
        with pytest.raises(DataError):
            dataset.add(TemporalClaim("S1", "o1", "b", 2000))

    def test_out_of_order_insertion_sorts(self):
        dataset = TemporalDataset(
            _claims([("S1", "o1", "b", 2004), ("S1", "o1", "a", 2000)])
        )
        assert dataset.history("S1", "o1") == [(2000.0, "a"), (2004.0, "b")]


class TestValueAt:
    def test_before_first_update_is_none(self, history_dataset):
        assert history_dataset.value_at("S1", "o1", 1999) is None

    def test_between_updates(self, history_dataset):
        assert history_dataset.value_at("S1", "o1", 2002) == "a"

    def test_at_update_instant(self, history_dataset):
        assert history_dataset.value_at("S1", "o1", 2004) == "b"

    def test_after_last_update(self, history_dataset):
        assert history_dataset.value_at("S1", "o1", 2050) == "b"


class TestSnapshots:
    def test_snapshot_at(self, history_dataset):
        snapshot = history_dataset.snapshot_at(2002)
        assert snapshot.value_of("S1", "o1") == "a"
        assert snapshot.value_of("S2", "o1") == "a"
        assert snapshot.value_of("S1", "o2") == "x"

    def test_snapshot_before_everything_is_empty(self, history_dataset):
        assert len(history_dataset.snapshot_at(1990)) == 0

    def test_latest_snapshot(self, history_dataset):
        snapshot = history_dataset.latest_snapshot()
        assert snapshot.value_of("S1", "o1") == "b"

    def test_time_span(self, history_dataset):
        assert history_dataset.time_span() == (2000.0, 2004.0)

    def test_time_span_empty_raises(self):
        with pytest.raises(DataError):
            TemporalDataset().time_span()


class TestUpdateEvents:
    def test_events_carry_previous(self, history_dataset):
        events = list(history_dataset.update_events("S1"))
        o1_events = [e for e in events if e.object == "o1"]
        assert o1_events[0].previous is None
        assert o1_events[1].previous == "a"

    def test_adoption_time(self, history_dataset):
        assert history_dataset.adoption_time("S1", "o1", "b") == 2004.0
        assert history_dataset.adoption_time("S1", "o1", "zz") is None

    def test_objects_of(self, history_dataset):
        assert history_dataset.objects_of("S1") == {"o1", "o2"}


class TestRestrictAndObserve:
    def test_restrict_sources(self, history_dataset):
        subset = history_dataset.restrict_sources(["S2"])
        assert subset.sources == ["S2"]
        assert subset.history("S2", "o1") == [(2001.0, "a")]

    def test_observed_at_collapses_unchanged(self, history_dataset):
        observed = history_dataset.observed_at([2001, 2002, 2003, 2005])
        # S1/o1: seen as "a" at 2001 and as "b" at 2005 only.
        assert [v for _, v in observed.history("S1", "o1")] == ["a", "b"]
        assert observed.history("S1", "o1")[1][0] == 2005.0

    def test_observed_at_misses_quick_flips(self):
        dataset = TemporalDataset(
            _claims(
                [
                    ("S1", "o1", "a", 2000),
                    ("S1", "o1", "b", 2001.2),
                    ("S1", "o1", "a", 2001.8),
                ]
            )
        )
        observed = dataset.observed_at([2001, 2003])
        # The b-interlude happened entirely between observations.
        assert [v for _, v in observed.history("S1", "o1")] == ["a"]

    def test_observed_at_requires_times(self, history_dataset):
        with pytest.raises(DataError):
            history_dataset.observed_at([])
