"""Tests for the synthetic world generators."""

import pytest

from repro.core.world import DependenceKind
from repro.exceptions import ParameterError
from repro.generators import (
    BookstoreConfig,
    CopierSpec,
    RatingWorldConfig,
    SnapshotConfig,
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_bookstore_catalog,
    generate_rating_world,
    generate_snapshot_world,
    generate_temporal_world,
    simple_copier_world,
)
from repro.generators.rng import make_rng, power_law_sizes, weighted_choice


class TestRngHelpers:
    def test_weighted_choice_respects_zero_weight(self):
        rng = make_rng(0)
        for _ in range(50):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_weighted_choice_validation(self):
        rng = make_rng(0)
        with pytest.raises(ParameterError):
            weighted_choice(rng, ["a"], [1.0, 2.0])
        with pytest.raises(ParameterError):
            weighted_choice(rng, [], [])
        with pytest.raises(ParameterError):
            weighted_choice(rng, ["a"], [0.0])

    def test_power_law_sizes_sum_and_bounds(self):
        sizes = power_law_sizes(
            count=100, largest=500, smallest=1, total=3000,
            exponent=0.8, rng=make_rng(1),
        )
        assert sum(sizes) == 3000
        assert all(1 <= s <= 500 for s in sizes)

    def test_power_law_impossible_total(self):
        with pytest.raises(ParameterError):
            power_law_sizes(10, 5, 1, 1000, 0.8, make_rng(0))


class TestSnapshotGenerator:
    def test_deterministic(self):
        a, _ = simple_copier_world(seed=5)
        b, _ = simple_copier_world(seed=5)
        assert sorted(a, key=repr) == sorted(b, key=repr)

    def test_different_seeds_differ(self):
        a, _ = simple_copier_world(seed=5)
        b, _ = simple_copier_world(seed=6)
        assert sorted(a, key=repr) != sorted(b, key=repr)

    def test_world_records_edges(self):
        _, world = simple_copier_world(n_copiers=2, seed=1)
        assert len(world.edges) == 2
        assert all(e.kind is DependenceKind.SIMILARITY for e in world.edges)

    def test_copier_covers_subset_of_original(self):
        dataset, world = simple_copier_world(
            n_copiers=1, copier_coverage=0.5, seed=2
        )
        edge = world.edges[0]
        copier_objects = set(dataset.claims_by(edge.copier))
        original_objects = set(dataset.claims_by(edge.original))
        assert copier_objects <= original_objects
        assert len(copier_objects) < len(original_objects)

    def test_accuracy_roughly_matches_config(self):
        dataset, world = simple_copier_world(
            n_objects=400, n_independent=1, n_copiers=0, accuracy=0.8, seed=3
        )
        correct = sum(
            1
            for obj, claim in dataset.claims_by("ind00").items()
            if world.is_true(obj, claim.value)
        )
        assert 0.72 <= correct / 400 <= 0.88

    def test_copier_chain_resolved(self):
        config = SnapshotConfig(
            n_objects=20,
            independent_accuracies={"root": 0.8},
            copiers=[
                CopierSpec(copier="c1", original="root"),
                CopierSpec(copier="c2", original="c1"),
            ],
        )
        dataset, world = generate_snapshot_world(config, seed=0)
        assert "c2" in dataset.sources

    def test_copier_cycle_rejected(self):
        config = SnapshotConfig(
            n_objects=20,
            independent_accuracies={"root": 0.8},
            copiers=[
                CopierSpec(copier="c1", original="c2"),
                CopierSpec(copier="c2", original="c1"),
            ],
        )
        with pytest.raises(ParameterError):
            generate_snapshot_world(config, seed=0)

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            SnapshotConfig(n_objects=0, independent_accuracies={"a": 0.5})
        with pytest.raises(ParameterError):
            SnapshotConfig(n_objects=5, independent_accuracies={})
        with pytest.raises(ParameterError):
            SnapshotConfig(
                n_objects=5,
                independent_accuracies={"a": 0.5},
                copiers=[CopierSpec(copier="a", original="b")],
            )


class TestRatingGenerator:
    def test_deterministic(self):
        a = generate_rating_world(RatingWorldConfig(), seed=4)
        b = generate_rating_world(RatingWorldConfig(), seed=4)
        assert a.matrix.ratings_by("c0r00") == b.matrix.ratings_by("c0r00")

    def test_edges_recorded_with_kinds(self):
        world = generate_rating_world(
            RatingWorldConfig(n_copiers=2, n_anti=1), seed=0
        )
        kinds = [e.kind for e in world.edges]
        assert kinds.count(DependenceKind.SIMILARITY) == 2
        assert kinds.count(DependenceKind.DISSIMILARITY) == 1

    def test_genuine_raters_excludes_dependents(self):
        world = generate_rating_world(
            RatingWorldConfig(n_copiers=1, n_anti=1), seed=0
        )
        genuine = world.genuine_raters()
        assert "copier00" not in genuine
        assert "anti00" not in genuine

    def test_anti_rater_mirrors_target(self):
        world = generate_rating_world(
            RatingWorldConfig(n_items=60, n_anti=1, n_copiers=0,
                              influence_rate=0.95),
            seed=1,
        )
        edge = world.edges[0]
        matrix = world.matrix
        mirrored = 0
        co_rated = matrix.co_rated(edge.copier, edge.original)
        for item in co_rated:
            target = matrix.score_of(edge.original, item)
            if matrix.score_of(edge.copier, item) == matrix.scale.mirror(target):
                mirrored += 1
        assert mirrored / len(co_rated) > 0.7


class TestTemporalGenerator:
    @pytest.fixture
    def config(self):
        return TemporalConfig(
            n_objects=10,
            time_span=20.0,
            sources=[TemporalSourceSpec("fresh", lag=0.2)],
            copiers=[TemporalCopierSpec("lazy", "fresh", poll_interval=2.0)],
        )

    def test_deterministic(self, config):
        a, _ = generate_temporal_world(config, seed=7)
        b, _ = generate_temporal_world(config, seed=7)
        assert a.history("fresh", "obj000") == b.history("fresh", "obj000")

    def test_timelines_are_valid(self, config):
        _, world = generate_temporal_world(config, seed=7)
        for obj in world.objects:
            assert world.timelines[obj][-1].end is None

    def test_copier_adoptions_trail_original(self, config):
        dataset, world = generate_temporal_world(config, seed=7)
        trailing = 0
        total = 0
        for obj in dataset.objects_of("lazy"):
            for time, value in dataset.history("lazy", obj):
                original_time = dataset.adoption_time("fresh", obj, value)
                if original_time is not None:
                    total += 1
                    if time >= original_time:
                        trailing += 1
        assert total > 0
        assert trailing / total > 0.9

    def test_validation(self):
        with pytest.raises(ParameterError):
            TemporalConfig(n_objects=0, sources=[TemporalSourceSpec("s")])
        with pytest.raises(ParameterError):
            TemporalConfig(
                n_objects=5,
                sources=[TemporalSourceSpec("s")],
                copiers=[TemporalCopierSpec("c", "ghost")],
            )


class TestBookstoreGenerator:
    @pytest.fixture(scope="class")
    def catalog_world(self):
        return generate_bookstore_catalog(seed=42)

    def test_paper_scale_statistics(self, catalog_world):
        catalog, _ = catalog_world
        stats = catalog.statistics()
        assert stats["stores"] == 876
        assert stats["books"] == 1263
        assert abs(stats["listings"] - 24364) / 24364 < 0.10
        assert stats["min_books_per_store"] <= 2
        assert stats["max_books_per_store"] >= 1000

    def test_author_variant_spread(self, catalog_world):
        catalog, _ = catalog_world
        stats = catalog.statistics()
        assert stats["min_author_variants"] == 1
        assert 10 <= stats["max_author_variants"] <= 30
        assert 3 <= stats["mean_author_variants"] <= 7

    def test_accuracy_range(self, catalog_world):
        _, world = catalog_world
        accuracies = list(world.store_accuracy.values())
        assert min(accuracies) < 0.05
        assert max(accuracies) <= 0.92

    def test_planted_pairs_order_of_paper(self, catalog_world):
        catalog, world = catalog_world
        pairs = world.dependent_pairs()
        assert 380 <= len(pairs) <= 560  # paper: 471
        for pair in list(pairs)[:20]:
            a, b = sorted(pair)
            assert len(catalog.shared_books(a, b)) >= 10

    def test_deterministic(self):
        a, _ = generate_bookstore_catalog(BookstoreConfig(
            n_stores=30, n_books=50, n_listings=300, max_books_per_store=50,
            n_copier_cliques=2, clique_size=3, copier_min_books=5,
            copier_max_books=20,
        ), seed=1)
        b, _ = generate_bookstore_catalog(BookstoreConfig(
            n_stores=30, n_books=50, n_listings=300, max_books_per_store=50,
            n_copier_cliques=2, clique_size=3, copier_min_books=5,
            copier_max_books=20,
        ), seed=1)
        assert a.statistics() == b.statistics()

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            BookstoreConfig(n_stores=1)
        with pytest.raises(ParameterError):
            BookstoreConfig(n_listings=10)
