"""Tests for the pairwise Bayes model and the dependence graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DependenceParams
from repro.dependence.bayes import (
    PairDependence,
    PairEvidence,
    collect_evidence,
    pair_posterior,
    uniform_value_probabilities,
)
from repro.dependence.graph import DependenceGraph, discover_dependence
from repro.exceptions import DataError

accuracies = st.floats(min_value=0.05, max_value=0.95)
counts = st.integers(min_value=0, max_value=40)


def _evidence(kt=0.0, kf=0.0, kd=0):
    return PairEvidence(s1="A", s2="B", kt_soft=kt, kf_soft=kf, kd=kd)


class TestUniformInitialisation:
    def test_uniform_over_observed_values(self, tiny_dataset):
        probs = uniform_value_probabilities(tiny_dataset)
        assert probs["o1"] == {"x": 0.5, "y": 0.5}
        assert probs["o2"] == {"u": 0.5, "v": 0.5}

    def test_single_value_gets_mass_one(self, table1):
        probs = uniform_value_probabilities(table1)
        assert probs["Balazinska"]["UW"] == 1.0


class TestEvidenceCollection:
    def test_counts_add_up_to_overlap(self, table1):
        probs = uniform_value_probabilities(table1)
        evidence = collect_evidence(table1, "S1", "S2", probs)
        assert evidence.overlap_size == 5
        assert evidence.kd == 2  # Suciu, Dong differ

    def test_hard_probabilities_give_hard_counts(self, table1):
        hard = {
            obj: {v: (1.0 if v == "UW" else 0.0) for v in table1.values_for(obj)}
            for obj in table1.objects
        }
        evidence = collect_evidence(table1, "S3", "S4", hard)
        assert evidence.kt_soft == pytest.approx(5.0)
        assert evidence.kf_soft == pytest.approx(0.0)


class TestPairPosterior:
    def test_shared_false_values_imply_dependence(self):
        """Intuition 1: the multiple-choice-quiz analogy."""
        posterior = pair_posterior(
            _evidence(kf=3.0), 0.8, 0.8, DependenceParams()
        )
        assert posterior.p_dependent > 0.95

    def test_shared_true_values_alone_are_weak(self):
        posterior = pair_posterior(
            _evidence(kt=5.0), 0.9, 0.9, DependenceParams()
        )
        assert posterior.p_dependent < 0.5

    def test_disagreement_exonerates(self):
        posterior = pair_posterior(
            _evidence(kt=2.0, kd=8), 0.8, 0.8, DependenceParams()
        )
        assert posterior.p_independent > 0.9

    def test_monotone_in_shared_false(self):
        params = DependenceParams()
        previous = 0.0
        for kf in (0.5, 1.0, 2.0, 4.0):
            p = pair_posterior(_evidence(kf=kf), 0.8, 0.8, params).p_dependent
            assert p > previous
            previous = p

    def test_no_evidence_returns_prior(self):
        params = DependenceParams(alpha=0.2)
        posterior = pair_posterior(_evidence(), 0.8, 0.8, params)
        assert posterior.p_dependent == pytest.approx(params.alpha)

    def test_rejects_degenerate_accuracy(self):
        with pytest.raises(DataError):
            pair_posterior(_evidence(kt=1.0), 1.0, 0.8, DependenceParams())

    def test_copies_probability_by_side(self):
        posterior = pair_posterior(
            _evidence(kf=2.0), 0.9, 0.4, DependenceParams()
        )
        assert posterior.copies_probability("A") == posterior.p_s1_copies_s2
        assert posterior.copies_probability("B") == posterior.p_s2_copies_s1
        with pytest.raises(DataError):
            posterior.copies_probability("Z")

    @given(accuracies, accuracies, counts, counts, counts)
    @settings(max_examples=120)
    def test_posterior_is_distribution(self, a1, a2, kt, kf, kd):
        posterior = pair_posterior(
            _evidence(kt=float(kt), kf=float(kf), kd=kd),
            a1,
            a2,
            DependenceParams(),
        )
        total = (
            posterior.p_independent
            + posterior.p_s1_copies_s2
            + posterior.p_s2_copies_s1
        )
        assert total == pytest.approx(1.0)
        assert 0.0 <= posterior.p_dependent <= 1.0 + 1e-9

    @given(accuracies, accuracies, counts, counts, counts)
    @settings(max_examples=80)
    def test_posterior_symmetric_under_pair_swap(self, a1, a2, kt, kf, kd):
        params = DependenceParams()
        forward = pair_posterior(
            _evidence(kt=float(kt), kf=float(kf), kd=kd), a1, a2, params
        )
        swapped = pair_posterior(
            PairEvidence(s1="B", s2="A", kt_soft=float(kt), kf_soft=float(kf), kd=kd),
            a2,
            a1,
            params,
        )
        assert forward.p_dependent == pytest.approx(swapped.p_dependent)
        assert forward.p_s1_copies_s2 == pytest.approx(swapped.p_s2_copies_s1)


class TestDependenceGraph:
    def _pair(self, s1, s2, p_dep):
        half = p_dep / 2
        return PairDependence(
            s1=s1,
            s2=s2,
            p_independent=1 - p_dep,
            p_s1_copies_s2=half,
            p_s2_copies_s1=half,
        )

    def test_probability_defaults_to_zero(self):
        graph = DependenceGraph()
        assert graph.probability("A", "B") == 0.0

    def test_pair_key_order_insensitive(self):
        graph = DependenceGraph([self._pair("A", "B", 0.8)])
        assert graph.probability("B", "A") == pytest.approx(0.8)

    def test_self_pair_rejected(self):
        graph = DependenceGraph()
        with pytest.raises(DataError):
            graph.probability("A", "A")

    def test_detected_pairs_threshold(self):
        graph = DependenceGraph(
            [self._pair("A", "B", 0.8), self._pair("A", "C", 0.3)]
        )
        assert graph.detected_pairs(0.5) == {frozenset(("A", "B"))}

    def test_independence_weight_decreases_with_counted(self):
        graph = DependenceGraph([self._pair("A", "B", 0.9)])
        alone = graph.independence_weight("A", [], 0.8)
        with_b = graph.independence_weight("A", ["B"], 0.8)
        assert alone == 1.0
        assert with_b == pytest.approx(1 - 0.8 * 0.9)

    def test_independence_weight_ignores_self(self):
        graph = DependenceGraph([self._pair("A", "B", 0.9)])
        assert graph.independence_weight("A", ["A"], 0.8) == 1.0

    def test_dependence_score_is_max(self):
        graph = DependenceGraph(
            [self._pair("A", "B", 0.8), self._pair("A", "C", 0.3)]
        )
        assert graph.dependence_score("A") == pytest.approx(0.8)
        assert graph.dependence_score("C") == pytest.approx(0.3)

    def test_dependence_score_unknown_source_is_zero(self):
        graph = DependenceGraph([self._pair("A", "B", 0.8)])
        assert graph.dependence_score("Z") == 0.0

    def test_adjacency_tracks_replacement(self):
        """add() replaces in both the pair store and the adjacency index."""
        graph = DependenceGraph([self._pair("A", "B", 0.9)])
        graph.add(self._pair("B", "A", 0.2))  # replaces, order-insensitive
        assert len(graph) == 1
        assert graph.dependence_score("A") == pytest.approx(0.2)
        assert graph.dependence_score("B") == pytest.approx(0.2)

    def test_pairs_of_adjacency_view(self):
        graph = DependenceGraph(
            [self._pair("A", "B", 0.8), self._pair("A", "C", 0.3)]
        )
        adjacent = graph.pairs_of("A")
        assert set(adjacent) == {"B", "C"}
        assert adjacent["B"].p_dependent == pytest.approx(0.8)
        assert graph.pairs_of("Z") == {}
        with pytest.raises(TypeError):
            graph.pairs_of("A")["D"] = self._pair("A", "D", 0.5)

    def test_networkx_export(self):
        graph = DependenceGraph([self._pair("A", "B", 0.8)])
        nx_graph = graph.to_networkx()
        assert nx_graph["A"]["B"]["weight"] == pytest.approx(0.8)

    def test_copier_groups_components(self):
        graph = DependenceGraph(
            [
                self._pair("A", "B", 0.9),
                self._pair("B", "C", 0.9),
                self._pair("X", "Y", 0.9),
            ]
        )
        groups = graph.copier_groups(0.5)
        assert {"A", "B", "C"} in groups
        assert {"X", "Y"} in groups

    def test_discover_respects_min_overlap(self, table1):
        probs = uniform_value_probabilities(table1)
        accs = {s: 0.8 for s in table1.sources}
        graph = discover_dependence(table1, probs, accs, min_overlap=6)
        assert len(graph) == 0
        graph = discover_dependence(table1, probs, accs, min_overlap=1)
        assert len(graph) == 10  # all pairs of 5 sources
