"""Worker-count invariance of the sharded parallel evidence sweep.

The contract of :mod:`repro.dependence.sharding` and the executors in
:mod:`repro.exec`: for every backend (``serial``, ``numpy``,
``process``, ``resident``) and every worker count, the structural pass
produces **bit-for-bit identical** results — evidence, candidate
pairs, co-coverage counts, cap truncations, and the dependence
posteriors scored from them — across all three modalities (snapshot,
temporal, opinions), including after interleaved streaming ingest.
These tests pin exactly that, with deterministic worlds and a
hypothesis property over random claim tables, plus the deterministic
shard-planning and restricted-rescoring behaviour the streaming engine
builds on, the resident pool's delta shipping and crash recovery, and
the owned-vs-borrowed executor lifecycle.
"""

from __future__ import annotations

import logging
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.opinions import (
    RaterPairCollector,
    discover_rater_dependence,
)
from repro.dependence.sharding import (
    ShardPlanner,
    SweepConfig,
)
from repro.dependence.streaming import StreamingDependenceEngine
from repro.dependence.temporal import (
    CoAdoptionCollector,
    discover_temporal_dependence,
)
from repro.exceptions import ParameterError
from repro.generators import (
    RatingWorldConfig,
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_rating_world,
    generate_temporal_world,
    simple_copier_world,
)
from repro.truth import Depen

WORKER_COUNTS = (1, 2, 4)

#: Backends whose builds fan out over shards (everything but serial).
SHARDED_BACKENDS = ("numpy", "process", "resident")

ALL_MODEL_PARAMS = [
    {"false_value_model": model, "evidence_form": form}
    for model in ("uniform", "empirical")
    for form in ("expected_log", "marginal")
]


def _parallel(backend, num_workers=2, shard_size=7, **model):
    return DependenceParams(
        parallel_backend=backend,
        num_workers=num_workers,
        shard_size=shard_size,
        **model,
    )


def _graphs_equal(g1, g2):
    assert len(g1) == len(g2)
    for pair in g1:
        other = g2.get(pair.s1, pair.s2)
        assert other == pair, (pair.s1, pair.s2)


def _random_claims(rng, n_sources=10, n_objects=30, coverage=18, n_values=3):
    claims = []
    for i in range(n_sources):
        for obj in rng.sample(range(n_objects), coverage):
            claims.append(
                Claim(
                    source=f"S{i:02d}",
                    object=f"o{obj:03d}",
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


class TestShardPlanner:
    def test_plan_covers_items_contiguously(self):
        items = [f"o{i:03d}" for i in range(100)]
        plan = ShardPlanner(shard_size=17).plan(items)
        assert plan.n_shards == 6
        covered = [i for start, end in plan.ranges() for i in range(start, end)]
        assert covered == list(range(100))

    def test_plan_is_deterministic_and_size_driven(self):
        items = [f"o{i:03d}" for i in range(50)]
        p1 = ShardPlanner(num_workers=2, shard_size=10).plan(items)
        p2 = ShardPlanner(num_workers=4, shard_size=10).plan(items)
        assert p1 == p2  # explicit size: worker count never moves a boundary

    def test_derived_size_scales_with_workers(self):
        planner = ShardPlanner(num_workers=2)
        assert planner.resolve_size(8_000) == 1_000
        assert planner.resolve_size(10) == 32  # floor: no confetti shards

    def test_routing_matches_ranges_and_handles_new_items(self):
        items = [f"o{i:03d}" for i in range(40)]
        plan = ShardPlanner(shard_size=10).plan(items)
        for start, end in plan.ranges():
            for idx in range(start, end):
                assert plan.shard_of(items[idx]) == start // 10
        # An item that sorts before everything routes to shard 0; one
        # past the end routes to the last shard.
        assert plan.shard_of("o000") == 0
        assert plan.shard_of("a") == 0
        assert plan.shard_of("z") == plan.n_shards - 1
        routed = plan.route(["z", "o015", "a", "o035"])
        assert routed == {0: ["a"], 1: ["o015"], 3: ["o035", "z"]}

    def test_empty_plan(self):
        plan = ShardPlanner().plan([])
        assert plan.n_shards == 0
        assert plan.ranges() == []
        assert plan.shard_of("anything") == 0

    def test_validation(self):
        with pytest.raises(ParameterError):
            ShardPlanner(num_workers=0)
        with pytest.raises(ParameterError):
            ShardPlanner(shard_size=0)
        with pytest.raises(ParameterError):
            SweepConfig(backend="threads")
        with pytest.raises(ParameterError):
            DependenceParams(parallel_backend="threads")
        with pytest.raises(ParameterError):
            DependenceParams(num_workers=0)
        with pytest.raises(ParameterError):
            DependenceParams(shard_size=0)


@pytest.fixture(scope="module")
def snapshot_world():
    dataset, _ = simple_copier_world(
        n_objects=80, n_independent=12, n_copiers=4, accuracy=0.8, seed=17
    )
    return dataset


class TestSnapshotInvariance:
    """EvidenceCache: sharded backends == serial, bit for bit."""

    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_cold_build_matches_serial(self, snapshot_world, model):
        dataset = snapshot_world
        probs = uniform_value_probabilities(dataset)
        serial = EvidenceCache(dataset, params=DependenceParams(**model))
        reference = serial.collect_all(probs)
        # The pure-Python list layout is the root reference; the default
        # (columnar) serial build must already match it bit for bit.
        list_store = EvidenceCache(
            dataset, params=DependenceParams(entry_store="list", **model)
        )
        assert list_store.collect_all(probs) == reference
        for backend in SHARDED_BACKENDS:
            for workers in WORKER_COUNTS:
                cache = EvidenceCache(
                    dataset, params=_parallel(backend, workers, 13, **model)
                )
                assert cache.pairs == serial.pairs
                assert cache.collect_all(probs) == reference
                cache.close()

    def test_exact_mode_matches_serial(self, snapshot_world):
        probs = uniform_value_probabilities(snapshot_world)
        reference = EvidenceCache(
            snapshot_world, params=DependenceParams(), exact=True
        ).collect_all(probs)
        for backend in SHARDED_BACKENDS:
            cache = EvidenceCache(
                snapshot_world, params=_parallel(backend), exact=True
            )
            assert cache.collect_all(probs) == reference
            cache.close()

    def test_min_overlap_and_co_counts_match(self, snapshot_world):
        probs = uniform_value_probabilities(snapshot_world)
        for min_overlap in (1, 10, 40):
            serial = EvidenceCache(
                snapshot_world, params=DependenceParams(), min_overlap=min_overlap
            )
            for backend in SHARDED_BACKENDS:
                cache = EvidenceCache(
                    snapshot_world,
                    params=_parallel(backend),
                    min_overlap=min_overlap,
                )
                assert cache.pairs == serial.pairs
                assert cache._co_counts == serial._co_counts
                assert cache.collect_all(probs) == serial.collect_all(probs)
                cache.close()

    def test_fixed_candidate_pairs_match(self, snapshot_world):
        sources = snapshot_world.sources
        fixed = [
            (sources[0], sources[1]),
            (sources[5], sources[2]),
            (sources[3], "never-seen"),
        ]
        probs = uniform_value_probabilities(snapshot_world)
        reference = EvidenceCache(snapshot_world, fixed).collect_all(probs)
        for backend in SHARDED_BACKENDS:
            cache = EvidenceCache(
                snapshot_world, fixed, params=_parallel(backend)
            )
            assert cache.collect_all(probs) == reference
            cache.close()

    def test_hot_object_cap_and_truncations_match(self, snapshot_world):
        probs = uniform_value_probabilities(snapshot_world)
        serial = EvidenceCache(
            snapshot_world,
            params=DependenceParams(max_providers_per_object=6),
        )
        reference = serial.collect_all(probs)
        for backend in SHARDED_BACKENDS:
            params = _parallel(backend, 3, 11, max_providers_per_object=6)
            cache = EvidenceCache(snapshot_world, params=params)
            assert cache.collect_all(probs) == reference
            assert dict(cache.truncated_objects) == dict(
                serial.truncated_objects
            )
            cache.close()

    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_interleaved_ingest_matches_cold_serial_rebuild(self, model):
        rng = random.Random(23)
        claims = _random_claims(rng, n_sources=12, n_objects=40)
        batches = [claims[:150], claims[150:170], claims[170:]]
        caches = {
            (backend, workers): EvidenceCache(
                ClaimDataset(),
                params=_parallel(backend, workers, 9, **model),
            )
            for backend in ("process", "resident")
            for workers in WORKER_COUNTS
        }
        datasets = {key: cache.dataset for key, cache in caches.items()}
        first = ("process", 1)
        for batch in batches:
            for key, cache in caches.items():
                datasets[key].add_claims(batch)
                cache.sync()
            probs = uniform_value_probabilities(datasets[first])
            cold = EvidenceCache(
                ClaimDataset(list(datasets[first])),
                params=DependenceParams(**model),
            )
            reference = cold.collect_all(
                uniform_value_probabilities(cold.dataset)
            )
            for key, cache in caches.items():
                assert cache.collect_all(probs) == reference, key
        for cache in caches.values():
            cache.close()

    def test_sync_reports_shard_routing(self):
        rng = random.Random(5)
        claims = _random_claims(rng, n_sources=14, coverage=25)
        cache = EvidenceCache(
            ClaimDataset(claims[:250]), params=_parallel("numpy", 1, 8)
        )
        assert cache.shard_plan is not None
        assert cache.shard_plan.n_shards > 1
        cache.dataset.add_claims(claims[250:])
        cache.sync()
        routing = cache.last_sync_routing
        assert routing  # some shard was repaired
        assert sum(routing.values()) > 0
        assert all(
            0 <= shard < cache.shard_plan.n_shards for shard in routing
        )

    def test_depen_end_to_end_matches_serial(self, snapshot_world):
        iteration = IterationParams(max_rounds=3)
        reference = Depen(DependenceParams(), iteration).discover(snapshot_world)
        for backend in SHARDED_BACKENDS:
            result = Depen(_parallel(backend), iteration).discover(
                snapshot_world
            )
            assert result.decisions == reference.decisions
            assert result.accuracies == reference.accuracies
            _graphs_equal(result.dependence, reference.dependence)


class TestCollectorSharding:
    """Temporal and opinion collectors under the generic sharded sweep."""

    @pytest.fixture(scope="class")
    def temporal_world(self):
        config = TemporalConfig(
            n_objects=24,
            sources=[TemporalSourceSpec(f"T{i}") for i in range(6)],
            copiers=[TemporalCopierSpec("C0", "T0")],
        )
        dataset, _ = generate_temporal_world(config, seed=11)
        return dataset

    @pytest.fixture(scope="class")
    def rating_world(self):
        return generate_rating_world(RatingWorldConfig(n_items=30), seed=9)

    def test_temporal_collector_matches_serial(self, temporal_world):
        serial = CoAdoptionCollector(temporal_world)
        for backend in ("process", "resident"):
            for workers in WORKER_COUNTS:
                sweep = SweepConfig(backend, workers, shard_size=5)
                sharded = CoAdoptionCollector(temporal_world, sweep=sweep)
                assert sharded.pairs == serial.pairs
                assert sharded._slots == serial._slots

    def test_temporal_discovery_matches_serial(self, temporal_world):
        reference = discover_temporal_dependence(temporal_world)
        for workers in (2, 4):
            graph = discover_temporal_dependence(
                temporal_world,
                sweep=SweepConfig("process", workers, shard_size=5),
            )
            _graphs_equal(graph, reference)

    def test_rater_collector_matches_serial(self, rating_world):
        matrix = rating_world.matrix
        serial = RaterPairCollector(matrix)
        for backend in ("process", "resident"):
            for workers in WORKER_COUNTS:
                sweep = SweepConfig(backend, workers, shard_size=4)
                sharded = RaterPairCollector(matrix, sweep=sweep)
                assert sharded.pairs == serial.pairs
                assert sharded._slots == serial._slots

    def test_rater_discovery_matches_serial(self, rating_world):
        matrix = rating_world.matrix
        reference = discover_rater_dependence(matrix)
        for workers in (2, 4):
            result = discover_rater_dependence(
                matrix, sweep=SweepConfig("process", workers, shard_size=4)
            )
            assert len(result) == len(reference)
            for pair in reference:
                assert result.get(pair.r1, pair.r2) == pair

    def test_rater_cap_truncations_absorbed_from_workers(self, rating_world):
        matrix = rating_world.matrix
        serial = RaterPairCollector(matrix, max_raters_per_item=4)
        sharded = RaterPairCollector(
            matrix,
            max_raters_per_item=4,
            sweep=SweepConfig("process", 2, shard_size=4),
        )
        assert dict(sharded.truncated_items) == dict(serial.truncated_items)
        assert sharded._slots == serial._slots

    def test_sharded_cap_warns_once_per_item(self, rating_world, caplog):
        matrix = rating_world.matrix
        with caplog.at_level(logging.WARNING, logger="repro.dependence"):
            sharded = RaterPairCollector(
                matrix,
                max_raters_per_item=4,
                sweep=SweepConfig("process", 2, shard_size=4),
            )
        warned = [
            record
            for record in caplog.records
            if "hot-item guard" in record.getMessage()
        ]
        # One authoritative parent-side warning per truncated item —
        # never zero (silent) and never duplicated by worker logging.
        assert len(warned) == len(sharded.truncated_items)
        assert len(sharded.truncated_items) > 0

    def test_serial_sweep_config_is_the_serial_path(self, rating_world):
        matrix = rating_world.matrix
        serial = RaterPairCollector(matrix)
        config = RaterPairCollector(matrix, sweep=SweepConfig("serial"))
        assert config._slots == serial._slots


class TestStreamingRestrictedDiscover:
    """discover() re-scores only pairs that can have moved — exactly."""

    def _engine_and_batches(self, backend="serial"):
        rng = random.Random(41)
        claims = _random_claims(rng, n_sources=12, n_objects=40)
        params = (
            DependenceParams()
            if backend == "serial"
            else _parallel(backend, 2, 9)
        )
        engine = StreamingDependenceEngine(params=params)
        return engine, [claims[:150], claims[150:180], claims[180:]]

    def test_restriction_reuses_untouched_pairs(self):
        engine, batches = self._engine_and_batches()
        engine.ingest(batches[0])
        engine.discover()
        first = engine.last_discover_stats
        assert first["restricted"] is False
        assert first["rescored"] == first["pairs"]
        engine.ingest(batches[1])
        engine.discover()
        stats = engine.last_discover_stats
        assert stats["restricted"] is True
        assert stats["reused"] > 0
        assert stats["rescored"] < stats["pairs"]
        assert stats["rescored"] + stats["reused"] == stats["pairs"]

    @pytest.mark.parametrize("backend", ["serial", "process", "resident"])
    def test_restricted_equals_full_bit_for_bit(self, backend):
        engine, batches = self._engine_and_batches(backend)
        for batch in batches:
            engine.ingest(batch)
            graph = engine.discover()
            fresh = StreamingDependenceEngine(
                dataset=ClaimDataset(list(engine.dataset))
            )
            _graphs_equal(graph, fresh.discover())
        engine.close()

    def test_no_change_rescores_nothing(self):
        engine, batches = self._engine_and_batches()
        engine.ingest(batches[0])
        g1 = engine.discover()
        g2 = engine.discover()
        stats = engine.last_discover_stats
        assert stats["restricted"] is True
        assert stats["rescored"] == 0
        assert stats["reused"] == stats["pairs"]
        _graphs_equal(g1, g2)

    def test_accuracy_change_rescores_only_that_sources_pairs(self):
        engine, batches = self._engine_and_batches()
        engine.ingest(batches[0])
        engine.discover()
        accs = engine.accuracies
        accs["S00"] = 0.55
        graph = engine.discover(accuracies=accs)
        stats = engine.last_discover_stats
        expected = sum(1 for s1, s2 in engine.cache if "S00" in (s1, s2))
        assert stats["restricted"] is True
        assert stats["rescored"] == expected
        fresh = StreamingDependenceEngine(
            dataset=ClaimDataset(list(engine.dataset))
        )
        _graphs_equal(graph, fresh.discover(accuracies=accs))

    def test_failed_discover_does_not_lose_invalidations(self):
        engine, batches = self._engine_and_batches()
        engine.ingest(batches[0])
        engine.discover()
        engine.ingest(batches[1])
        bad = engine.accuracies
        bad.pop(batches[1][0].source)  # a source with freshly dirty pairs
        with pytest.raises(KeyError):
            engine.discover(accuracies=bad)
        # The failed discover must not have consumed the dirty set: the
        # retry still re-scores the ingested batch's pairs and matches a
        # cold full pass exactly.
        graph = engine.discover()
        fresh = StreamingDependenceEngine(
            dataset=ClaimDataset(list(engine.dataset))
        )
        _graphs_equal(graph, fresh.discover())

    def test_explicit_value_probs_force_full_rescore(self):
        engine, batches = self._engine_and_batches()
        engine.ingest(batches[0])
        engine.discover()
        probs = uniform_value_probabilities(engine.dataset)
        engine.discover(value_probs=probs)
        assert engine.last_discover_stats["restricted"] is False
        # ... and the explicit-probs graph is not reused as a baseline.
        engine.discover(value_probs=probs)
        assert engine.last_discover_stats["restricted"] is False

    def test_run_truth_invalidates_the_reuse_baseline(self):
        engine, batches = self._engine_and_batches()
        engine.ingest(batches[0])
        engine.discover()
        engine.run_truth()
        engine.discover()
        assert engine.last_discover_stats["restricted"] is False
        engine.discover()
        assert engine.last_discover_stats["restricted"] is True


class TestResidentPool:
    """The resident executor: delta shipping, warm builds, crash repair."""

    def _cache(self, claims, workers=2, shard_size=13):
        dataset = ClaimDataset(claims)
        return EvidenceCache(
            dataset, params=_parallel("resident", workers, shard_size)
        )

    def _world_claims(self, n_objects=120, seed=3):
        dataset, _ = simple_copier_world(
            n_objects=n_objects,
            n_independent=8,
            n_copiers=3,
            accuracy=0.8,
            seed=seed,
        )
        return list(dataset)

    def test_sync_ships_deltas_not_state(self):
        """≤10% dirty objects must cut shipped bytes by ≥5x vs a full
        state ship — the point of keeping records worker-resident."""
        cache = self._cache(self._world_claims())
        full = cache.last_build_shipped_bytes
        assert full > 0
        n_objects = len(cache.dataset.objects)
        new_objs = [f"zzz-{i:02d}" for i in range(6)]
        assert len(new_objs) <= 0.10 * n_objects
        cache.dataset.add_claims(
            [
                Claim(src, obj, f"v-{obj}")
                for obj in new_objs
                for src in ("ind00", "ind01")
            ]
        )
        cache.sync()
        delta = cache.last_sync_shipped_bytes
        assert 0 < delta * 5 <= full, (delta, full)
        # ... and the repaired cache is bit-for-bit a cold rebuild.
        cold = EvidenceCache(
            ClaimDataset(list(cache.dataset)), params=DependenceParams()
        )
        probs = uniform_value_probabilities(cache.dataset)
        assert cache.collect_all(probs) == cold.collect_all(probs)
        cache.close()

    def test_warm_rebuild_ships_no_shard_state(self):
        cache = self._cache(self._world_claims())
        cold = cache.last_build_shipped_bytes
        cache.build()  # dataset unchanged: workers already hold the rows
        assert cache.last_build_shipped_bytes < cold / 5
        probs = uniform_value_probabilities(cache.dataset)
        reference = EvidenceCache(
            ClaimDataset(list(cache.dataset)), params=DependenceParams()
        )
        assert cache.collect_all(probs) == reference.collect_all(probs)
        cache.close()

    def test_new_source_rearms_residency(self):
        cache = self._cache(self._world_claims())
        cache.dataset.add_claims(
            [
                Claim("brand-new", obj, f"v-{obj}")
                for obj in cache.dataset.objects[:30]
            ]
        )
        cache.sync()
        probs = uniform_value_probabilities(cache.dataset)
        cold = EvidenceCache(
            ClaimDataset(list(cache.dataset)), params=DependenceParams()
        )
        assert cache.collect_all(probs) == cold.collect_all(probs)
        # Residency survived the re-arm: the next sync is deltas again.
        cache.dataset.add_claims(
            [Claim(s, "yyy-0", "w") for s in ("ind00", "ind01")]
        )
        cache.sync()
        assert (
            0
            < cache.last_sync_shipped_bytes * 5
            <= cache.last_build_shipped_bytes
        )
        cache.close()

    def test_worker_crash_mid_stream_rebuilds_resident_state(self):
        """SIGKILL one pinned worker; the next sync's delta send finds
        the corpse, re-ships the lost shards' state onto a respawned
        worker, and the repaired cache equals a cold rebuild bit for
        bit."""
        import os
        import signal
        import time

        cache = self._cache(self._world_claims())
        pids = cache.executor.worker_pids()
        assert len(pids) == 2
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.1)
        cache.dataset.add_claims(
            [
                Claim(src, f"crash-{i}", f"w-{i}")
                for i in range(4)
                for src in ("ind02", "ind03")
            ]
        )
        cache.sync()
        probs = uniform_value_probabilities(cache.dataset)
        cold = EvidenceCache(
            ClaimDataset(list(cache.dataset)), params=DependenceParams()
        )
        assert cache.collect_all(probs) == cold.collect_all(probs)
        # The replacement worker is live and distinct from the corpse.
        new_pids = cache.executor.worker_pids()
        assert pids[0] not in new_pids
        cache.close()


class TestExecutorLifecycle:
    """Owned vs borrowed executors, idempotent close, no stray pools."""

    def _claims(self):
        rng = random.Random(17)
        return _random_claims(rng, n_sources=10, n_objects=40)

    @staticmethod
    def _alive(pid):
        import os

        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        return True

    def test_owned_executor_closed_with_cache(self):
        cache = EvidenceCache(
            ClaimDataset(self._claims()), params=_parallel("resident", 2, 9)
        )
        assert cache.owns_executor
        pids = cache.executor.worker_pids()
        assert all(self._alive(pid) for pid in pids)
        cache.close()
        cache.close()  # idempotent
        assert cache.executor is None
        assert not any(self._alive(pid) for pid in pids)

    def test_borrowed_executor_survives_cache_close(self):
        from repro.exec import make_executor

        executor = make_executor("resident", 2)
        try:
            cache = EvidenceCache(
                ClaimDataset(self._claims()),
                params=_parallel("resident", 2, 9),
                executor=executor,
            )
            assert not cache.owns_executor
            pids = executor.worker_pids()
            cache.close()
            assert not executor.closed
            assert all(self._alive(pid) for pid in pids)
            # The borrowed executor still serves the next build.
            cache2 = EvidenceCache(
                ClaimDataset(self._claims()),
                params=_parallel("resident", 2, 9),
                executor=executor,
            )
            probs = uniform_value_probabilities(cache2.dataset)
            reference = EvidenceCache(
                ClaimDataset(self._claims()), params=DependenceParams()
            )
            assert cache2.collect_all(probs) == reference.collect_all(probs)
            cache2.close()
        finally:
            executor.close()
        assert executor.closed
        assert not any(self._alive(pid) for pid in pids)

    def test_streaming_exit_leaves_no_live_pool(self):
        pids = []
        with StreamingDependenceEngine(
            params=_parallel("resident", 2, 9)
        ) as engine:
            engine.ingest(self._claims())
            engine.discover()
            pids = engine.cache.executor.worker_pids()
            assert pids and all(self._alive(pid) for pid in pids)
        assert not any(self._alive(pid) for pid in pids)

    def test_serial_and_pool_executor_close_idempotent(self):
        from repro.exec import make_executor

        for backend in ("serial", "process"):
            executor = make_executor(backend, 2, persistent=True)
            executor.run("evidence.sweep_shard", [])
            executor.close()
            executor.close()
            assert executor.closed

    @staticmethod
    def _spawn_resident_workers(executor):
        """Workers spawn lazily; adopt an empty shard on each to start
        them, and return their pids."""
        empty = {"objs": [], "src": [], "entry": [], "n_sources": 0}
        executor.run_shards("resident.adopt", {0: dict(empty), 1: dict(empty)})
        return executor.worker_pids()

    def test_resident_terminate_kills_workers_without_handshake(self):
        from repro.exec import make_executor

        executor = make_executor("resident", 2)
        pids = self._spawn_resident_workers(executor)
        assert len(pids) == 2
        assert all(self._alive(pid) for pid in pids)
        executor.terminate()
        assert executor.closed
        # terminate() reaps as it kills: no zombies left behind (a
        # reaped pid no longer accepts signal 0).
        assert not any(self._alive(pid) for pid in pids)
        executor.close()  # idempotent after terminate

    def test_close_escalates_to_kill_for_wedged_worker(self):
        import os
        import signal

        from repro.exec import make_executor

        executor = make_executor("resident", 2)
        executor._teardown_grace = 0.1
        pids = self._spawn_resident_workers(executor)
        assert len(pids) == 2
        # SIGSTOP wedges the worker: it will never drain its pipe or
        # honour the shutdown sentinel, and SIGTERM stays pending — only
        # the final SIGKILL escalation can end it.
        os.kill(pids[0], signal.SIGSTOP)
        executor.close()
        assert not any(self._alive(pid) for pid in pids)

    def test_pool_terminate_kills_workers(self):
        from repro.exec import make_executor

        executor = make_executor("process", 2, persistent=True)
        assert executor.run(len, [[1], [2, 3]]) == [1, 2]
        processes = list(executor._pool._processes.values())
        assert processes and all(p.is_alive() for p in processes)
        executor.terminate()
        for process in processes:
            process.join(5)
        assert not any(process.is_alive() for process in processes)

    def test_capabilities_are_declared(self):
        from repro.exec import make_executor

        serial = make_executor("serial")
        pool = make_executor("process", 2)
        resident = make_executor("resident", 2)
        try:
            assert serial.capabilities.resident_state
            assert not pool.capabilities.resident_state
            assert pool.capabilities.serialization == "pickle"
            assert resident.capabilities.resident_state
            assert resident.capabilities.serialization == "pickle"
        finally:
            for executor in (serial, pool, resident):
                executor.close()


# ----------------------------------------------------------------------
# property: worker-count invariance over arbitrary claim tables
# ----------------------------------------------------------------------


@st.composite
def claim_tables(draw):
    """A random claim table plus a split point for interleaved ingest."""
    n_sources = draw(st.integers(min_value=3, max_value=8))
    n_objects = draw(st.integers(min_value=2, max_value=12))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_sources - 1),
                st.integers(0, n_objects - 1),
                st.integers(0, 2),
            ),
            min_size=5,
            max_size=70,
        )
    )
    seen = set()
    claims = []
    for source, obj, value in rows:
        if (source, obj) in seen:
            continue  # one claim per (source, object) in a snapshot
        seen.add((source, obj))
        claims.append(
            Claim(source=f"S{source}", object=f"o{obj:02d}", value=f"v{value}")
        )
    split = draw(st.integers(min_value=0, max_value=len(claims)))
    return claims, split


@given(table=claim_tables())
@settings(max_examples=30, deadline=None)
def test_property_numpy_backend_invariance(table):
    claims, _ = table
    dataset = ClaimDataset(claims)
    probs = uniform_value_probabilities(dataset)
    serial = EvidenceCache(dataset, params=DependenceParams())
    reference = serial.collect_all(probs)
    cache = EvidenceCache(dataset, params=_parallel("numpy", 1, 3))
    assert cache.pairs == serial.pairs
    assert cache.collect_all(probs) == reference


@given(table=claim_tables())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_worker_count_invariance_with_ingest(table):
    """Every execution policy — num_workers ∈ {1, 2, 4}, the in-process
    numpy backend, the persistent worker pool, the resident pool, and
    the columnar entry store behind them all — serves the same cache
    contents and posteriors as the pure-Python list-store reference,
    before and after interleaved streaming ingest."""
    claims, split = table
    engines = {
        f"{backend}-{workers}": StreamingDependenceEngine(
            params=_parallel(backend, workers, 3)
        )
        for backend in ("process", "resident")
        for workers in WORKER_COUNTS
    }
    engines["numpy"] = StreamingDependenceEngine(
        params=_parallel("numpy", 1, 3)
    )
    engines["persistent-pool"] = StreamingDependenceEngine(
        params=_parallel("process", 2, 3, pool="persistent")
    )
    # The reference: serial backend over the list-based entry store —
    # the layout every vectorised path must reproduce bit for bit.
    serial_engine = StreamingDependenceEngine(
        params=DependenceParams(entry_store="list")
    )
    try:
        for batch in (claims[:split], claims[split:]):
            serial_engine.ingest(batch)
            for engine in engines.values():
                engine.ingest(batch)
            if len(serial_engine.dataset) == 0:
                continue
            reference_graph = serial_engine.discover()
            probs = uniform_value_probabilities(serial_engine.dataset)
            reference = serial_engine.cache.collect_all(probs)
            for label, engine in engines.items():
                assert engine.cache.pairs == serial_engine.cache.pairs, label
                assert engine.cache.collect_all(probs) == reference, label
                _graphs_equal(engine.discover(), reference_graph)
    finally:
        for engine in engines.values():
            engine.close()


@given(data=st.data())
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_temporal_and_opinion_invariance(data):
    """The other two modalities: sharded sweeps match serial for
    num_workers ∈ {1, 2, 4} on randomised worlds."""
    seed = data.draw(st.integers(0, 2**16))
    temporal, _ = generate_temporal_world(
        TemporalConfig(
            n_objects=data.draw(st.integers(4, 16)),
            sources=[TemporalSourceSpec(f"T{i}") for i in range(4)],
            copiers=[TemporalCopierSpec("C0", "T1")],
        ),
        seed=seed,
    )
    temporal_serial = CoAdoptionCollector(temporal)
    matrix = generate_rating_world(
        RatingWorldConfig(n_items=data.draw(st.integers(4, 20))), seed=seed
    ).matrix
    rating_serial = RaterPairCollector(matrix)
    for backend, workers in (
        ("process", 1),
        ("process", 2),
        ("process", 4),
        ("resident", 2),
    ):
        sweep = SweepConfig(backend, workers, shard_size=3)
        sharded_temporal = CoAdoptionCollector(temporal, sweep=sweep)
        assert sharded_temporal._slots == temporal_serial._slots
        sharded_raters = RaterPairCollector(matrix, sweep=sweep)
        assert sharded_raters._slots == rating_serial._slots
        # The packed (columnar) read path serves the same segments the
        # slot registry holds, for both modalities.
        for collector in (sharded_temporal, sharded_raters):
            packed = collector.packed
            for key, slot in collector._slots.items():
                assert packed.segment(key) == list(slot)
