"""Batched posterior kernel: bit-for-bit equivalence with the scalar path.

The contract of :mod:`repro.dependence.bayes_batch`: for every evidence
model, the :class:`BatchedPosteriorEngine` produces posteriors that are
**bit-for-bit identical** to calling
:func:`~repro.dependence.bayes.pair_posterior` on the evidence the cache
serves for the same pair — all pairs or any index-selected subset,
including under streaming ingest — plus the backend resolution rules,
the env override, and the hoisted accuracy validation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import pair_posterior, uniform_value_probabilities
from repro.dependence.bayes_batch import (
    BatchedPosteriorEngine,
    resolve_posterior_backend,
)
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import discover_dependence
from repro.dependence.streaming import StreamingDependenceEngine
from repro.exceptions import DataError, ParameterError
from repro.truth import Depen

ALL_MODEL_PARAMS = [
    {"false_value_model": model, "evidence_form": form}
    for model in ("uniform", "empirical")
    for form in ("expected_log", "marginal")
]


def _params(entry_store="columnar", **overrides):
    overrides.setdefault("overlap_warning_bound", None)
    return DependenceParams(entry_store=entry_store, **overrides)


def _random_claims(rng, n_sources=10, n_objects=30, coverage=18, n_values=3):
    claims = []
    for i in range(n_sources):
        for obj in rng.sample(range(n_objects), coverage):
            claims.append(
                Claim(
                    source=f"S{i:02d}",
                    object=f"o{obj:03d}",
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


def _random_accuracies(rng, dataset):
    return {s: rng.uniform(0.05, 0.95) for s in dataset.sources}


def _scalar_reference(cache, value_probs, accs, params):
    """The scalar path's posteriors, keyed by pair."""
    return {
        key: pair_posterior(evidence, accs[key[0]], accs[key[1]], params)
        for key, evidence in cache.collect_all(value_probs).items()
    }


def _assert_pairs_equal(batch_pairs, reference):
    assert len(batch_pairs) == len(reference)
    for pair in batch_pairs:
        ref = reference[(pair.s1, pair.s2)]
        assert pair.p_independent == ref.p_independent, (pair.s1, pair.s2)
        assert pair.p_s1_copies_s2 == ref.p_s1_copies_s2, (pair.s1, pair.s2)
        assert pair.p_s2_copies_s1 == ref.p_s2_copies_s1, (pair.s1, pair.s2)


# ---------------------------------------------------------------------------
# backend resolution and parameter plumbing
# ---------------------------------------------------------------------------


class TestBackendResolution:
    def test_params_validate_posterior_backend(self):
        with pytest.raises(ParameterError):
            DependenceParams(posterior_backend="vectorized")

    def test_env_override_on_default_params(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTERIOR_BACKEND", "scalar")
        assert DependenceParams().posterior_backend == "scalar"
        # An explicit non-default argument always wins.
        assert (
            DependenceParams(posterior_backend="batch").posterior_backend
            == "batch"
        )

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_POSTERIOR_BACKEND", "simd")
        with pytest.raises(ParameterError):
            DependenceParams()

    def test_auto_resolves_by_entry_store(self):
        dataset = ClaimDataset(_random_claims(random.Random(0)))
        columnar = EvidenceCache(dataset, params=_params("columnar"))
        listy = EvidenceCache(dataset, params=_params("list"))
        assert resolve_posterior_backend("auto", columnar) == "batch"
        assert resolve_posterior_backend("auto", listy) == "scalar"
        assert resolve_posterior_backend("auto", None) == "scalar"
        assert resolve_posterior_backend("scalar", columnar) == "scalar"
        assert resolve_posterior_backend("batch", columnar) == "batch"

    def test_explicit_batch_on_list_store_raises(self):
        dataset = ClaimDataset(_random_claims(random.Random(0)))
        listy = EvidenceCache(dataset, params=_params("list"))
        with pytest.raises(ParameterError):
            resolve_posterior_backend("batch", listy)
        with pytest.raises(ParameterError):
            BatchedPosteriorEngine(listy, _params("list"))

    def test_invalid_setting_raises(self):
        with pytest.raises(ParameterError):
            resolve_posterior_backend("simd", None)

    def test_engine_memoized_per_params(self):
        dataset = ClaimDataset(_random_claims(random.Random(0)))
        params = _params()
        cache = EvidenceCache(dataset, params=params)
        assert cache.posterior_engine(params) is cache.posterior_engine(params)


# ---------------------------------------------------------------------------
# bit-for-bit equivalence with pair_posterior
# ---------------------------------------------------------------------------


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_all_pairs_bitwise(self, model):
        rng = random.Random(7)
        dataset = ClaimDataset(_random_claims(rng))
        params = _params(**model)
        cache = EvidenceCache(dataset, params=params)
        probs = uniform_value_probabilities(dataset)
        accs = _random_accuracies(rng, dataset)
        reference = _scalar_reference(cache, probs, accs, params)
        engine = cache.posterior_engine(params)
        _assert_pairs_equal(engine.posterior_pairs(accs), reference)

    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_nonuniform_value_probs_bitwise(self, model):
        rng = random.Random(11)
        dataset = ClaimDataset(_random_claims(rng))
        params = _params(**model)
        cache = EvidenceCache(dataset, params=params)
        probs = uniform_value_probabilities(dataset)
        for by_value in probs.values():
            for value in by_value:
                by_value[value] = rng.uniform(0.01, 0.99)
        accs = _random_accuracies(rng, dataset)
        reference = _scalar_reference(cache, probs, accs, params)
        engine = cache.posterior_engine(params)
        _assert_pairs_equal(engine.posterior_pairs(accs), reference)

    def test_calibrated_pairs_bitwise(self):
        # overlap_policy="auto" with a small bound: bound-reaching pairs
        # escape to the calibrated (marginal, popularity-aware)
        # treatment while the rest stay on the fast aggregate path —
        # the batch kernel must mix both modes in one pass.
        rng = random.Random(13)
        claims = []
        for i in range(8):
            # Alternate dense and sparse sources so only dense-dense
            # pairs reach the calibration bound.
            for obj in rng.sample(range(20), 18 if i % 2 else 6):
                claims.append(
                    Claim(
                        source=f"S{i:02d}",
                        object=f"o{obj:03d}",
                        value=f"v{rng.randrange(3)}",
                    )
                )
        rng.shuffle(claims)
        dataset = ClaimDataset(claims)
        params = _params(overlap_policy="auto", overlap_warning_bound=12)
        cache = EvidenceCache(dataset, params=params)
        probs = uniform_value_probabilities(dataset)
        accs = _random_accuracies(rng, dataset)
        reference = _scalar_reference(cache, probs, accs, params)
        engine = cache.posterior_engine(params)
        engine.pair_keys()  # force static state for the mode check
        escaped = engine._escaped
        assert escaped.any() and not escaped.all()  # genuinely mixed
        _assert_pairs_equal(engine.posterior_pairs(accs), reference)

    def test_subset_selection_bitwise(self):
        rng = random.Random(17)
        dataset = ClaimDataset(_random_claims(rng))
        params = _params(evidence_form="marginal")
        cache = EvidenceCache(dataset, params=params)
        probs = uniform_value_probabilities(dataset)
        accs = _random_accuracies(rng, dataset)
        reference = _scalar_reference(cache, probs, accs, params)
        engine = cache.posterior_engine(params)
        keys = engine.pair_keys()
        subset = rng.sample(keys, len(keys) // 3)
        positions = engine.positions_of(subset)
        batch = engine.posterior_pairs(accs, positions)
        assert [(p.s1, p.s2) for p in batch] == subset
        _assert_pairs_equal(batch, {k: reference[k] for k in subset})

    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_streaming_ingest_then_subset_bitwise(self, model):
        rng = random.Random(19)
        claims = _random_claims(rng, n_sources=8, n_objects=24, coverage=14)
        split = len(claims) // 2
        params = _params(**model)
        streaming = StreamingDependenceEngine(params=params)
        streaming.ingest(claims[:split])
        streaming.discover()
        streaming.ingest(claims[split:])
        cache = streaming.cache
        cache.sync()
        probs = uniform_value_probabilities(streaming.dataset)
        accs = _random_accuracies(rng, streaming.dataset)
        reference = _scalar_reference(cache, probs, accs, params)
        engine = cache.posterior_engine(params)
        keys = engine.pair_keys()
        assert set(keys) == set(reference)
        subset = rng.sample(keys, max(1, len(keys) // 2))
        positions = engine.positions_of(subset)
        _assert_pairs_equal(
            engine.posterior_pairs(accs, positions),
            {k: reference[k] for k in subset},
        )
        _assert_pairs_equal(engine.posterior_pairs(accs), reference)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**20),
        model=st.sampled_from(ALL_MODEL_PARAMS),
        n_sources=st.integers(3, 9),
        n_values=st.integers(1, 4),
    )
    def test_hypothesis_equivalence(self, seed, model, n_sources, n_values):
        rng = random.Random(seed)
        dataset = ClaimDataset(
            _random_claims(
                rng,
                n_sources=n_sources,
                n_objects=12,
                coverage=rng.randint(4, 12),
                n_values=n_values,
            )
        )
        params = _params(**model)
        cache = EvidenceCache(dataset, params=params)
        probs = uniform_value_probabilities(dataset)
        accs = _random_accuracies(rng, dataset)
        reference = _scalar_reference(cache, probs, accs, params)
        engine = cache.posterior_engine(params)
        _assert_pairs_equal(engine.posterior_pairs(accs), reference)


# ---------------------------------------------------------------------------
# hoisted accuracy validation
# ---------------------------------------------------------------------------


class TestHoistedValidation:
    def _engine(self, rng):
        dataset = ClaimDataset(_random_claims(rng))
        params = _params()
        cache = EvidenceCache(dataset, params=params)
        cache.refresh(uniform_value_probabilities(dataset))
        return dataset, params, cache.posterior_engine(params)

    def test_out_of_range_accuracy_matches_scalar_error(self):
        rng = random.Random(23)
        dataset, params, engine = self._engine(rng)
        accs = _random_accuracies(rng, dataset)
        # The lexicographically smallest source is s1 of its pairs, so
        # the scalar loop and the batch check name the same operand.
        accs[min(dataset.sources)] = 1.5
        with pytest.raises(DataError, match=r"a1 must be in \(0, 1\), got 1.5"):
            engine.posterior_pairs(accs)

    def test_missing_accuracy_raises_key_error_like_scalar(self):
        rng = random.Random(29)
        dataset, params, engine = self._engine(rng)
        accs = _random_accuracies(rng, dataset)
        victim = dataset.sources[0]
        del accs[victim]
        with pytest.raises(KeyError):
            engine.posterior_pairs(accs)

    def test_unrefreshed_cache_raises(self):
        dataset = ClaimDataset(_random_claims(random.Random(31)))
        params = _params()
        cache = EvidenceCache(dataset, params=params)
        engine = cache.posterior_engine(params)
        with pytest.raises(DataError, match="has not been refreshed"):
            engine.posterior_pairs({s: 0.8 for s in dataset.sources})


# ---------------------------------------------------------------------------
# end-to-end: Depen and the streaming engine, batch vs scalar
# ---------------------------------------------------------------------------


def _results_equal(a, b):
    assert a.decisions == b.decisions
    assert a.distributions == b.distributions
    assert a.accuracies == b.accuracies
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert len(a.trace) == len(b.trace)
    for ta, tb in zip(a.trace, b.trace):
        assert ta.round_index == tb.round_index
        assert ta.accuracy_change == tb.accuracy_change
        assert ta.decisions_changed == tb.decisions_changed
        assert ta.pairs_rescored == tb.pairs_rescored
        assert ta.pairs_reused == tb.pairs_reused


def _graphs_equal(a, b):
    keys_a = {(p.s1, p.s2): p for p in a}
    keys_b = {(p.s1, p.s2): p for p in b}
    assert set(keys_a) == set(keys_b)
    for key, pa in keys_a.items():
        pb = keys_b[key]
        assert pa.p_independent == pb.p_independent, key
        assert pa.p_s1_copies_s2 == pb.p_s1_copies_s2, key
        assert pa.p_s2_copies_s1 == pb.p_s2_copies_s1, key


class TestEndToEnd:
    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_depen_batch_equals_scalar(self, model):
        dataset = ClaimDataset(_random_claims(random.Random(37)))
        iteration = IterationParams(max_rounds=6, fail_on_max_rounds=False)
        results = {}
        for backend in ("batch", "scalar"):
            params = _params(posterior_backend=backend, **model)
            results[backend] = Depen(params, iteration).discover(dataset)
        _results_equal(results["batch"], results["scalar"])
        _graphs_equal(
            results["batch"].dependence, results["scalar"].dependence
        )

    def test_depen_dict_truth_backend_with_batch(self):
        dataset = ClaimDataset(_random_claims(random.Random(41)))
        iteration = IterationParams(max_rounds=4, fail_on_max_rounds=False)
        results = {}
        for backend in ("batch", "scalar"):
            params = _params(
                posterior_backend=backend, truth_backend="dict"
            )
            results[backend] = Depen(params, iteration).discover(dataset)
        _results_equal(results["batch"], results["scalar"])

    def test_depen_list_store_auto_resolves_scalar(self):
        # auto on a list entry store must quietly stay on the scalar
        # reference, matching the columnar/batch result bitwise.
        dataset = ClaimDataset(_random_claims(random.Random(43)))
        iteration = IterationParams(max_rounds=4, fail_on_max_rounds=False)
        listy = Depen(_params("list"), iteration).discover(dataset)
        columnar = Depen(_params("columnar"), iteration).discover(dataset)
        assert listy.decisions == columnar.decisions
        assert listy.distributions == columnar.distributions
        assert listy.accuracies == columnar.accuracies

    def test_discover_dependence_batch_equals_scalar(self):
        rng = random.Random(47)
        dataset = ClaimDataset(_random_claims(rng))
        probs = uniform_value_probabilities(dataset)
        accs = _random_accuracies(rng, dataset)
        graphs = {}
        for backend in ("batch", "scalar"):
            graphs[backend] = discover_dependence(
                dataset, probs, accs, _params(posterior_backend=backend)
            )
        _graphs_equal(graphs["batch"], graphs["scalar"])

    @pytest.mark.parametrize("model", ALL_MODEL_PARAMS)
    def test_streaming_restricted_batch_equals_scalar(self, model):
        rng = random.Random(53)
        claims = _random_claims(rng, n_sources=9, n_objects=30, coverage=16)
        batches = [claims[i::3] for i in range(3)]
        engines = {
            backend: StreamingDependenceEngine(
                params=_params(posterior_backend=backend, **model)
            )
            for backend in ("batch", "scalar")
        }
        accs = None
        for i, batch in enumerate(batches):
            for backend, engine in engines.items():
                engine.ingest(batch)
                engine.discover(accuracies=accs)
            stats = {
                backend: engine.last_discover_stats
                for backend, engine in engines.items()
            }
            assert stats["batch"] == stats["scalar"], f"batch {i}"
            _graphs_equal(engines["batch"].graph, engines["scalar"].graph)
            if i == 1:
                # Perturb a few accuracies so the restricted path's
                # changed-endpoint selection is exercised.
                accs = engines["batch"].accuracies
                for s in rng.sample(sorted(accs), 3):
                    accs[s] = rng.uniform(0.2, 0.9)
        final = {
            backend: engine.last_discover_stats
            for backend, engine in engines.items()
        }
        assert final["batch"]["restricted"]
        assert final["batch"] == final["scalar"]
