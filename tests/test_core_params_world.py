"""Unit tests for model parameters and ground-truth worlds."""

import pytest

from repro.core.claims import ValuePeriod
from repro.core.params import (
    DependenceParams,
    IterationParams,
    OpinionParams,
    TemporalParams,
)
from repro.core.world import (
    DependenceEdge,
    DependenceKind,
    TemporalWorld,
    World,
    make_timeline,
)
from repro.exceptions import DataError, ParameterError


class TestDependenceParams:
    def test_priors_sum_to_one(self):
        params = DependenceParams(alpha=0.3)
        assert params.prior_independent + 2 * params.prior_direction == pytest.approx(1.0)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.2])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ParameterError):
            DependenceParams(alpha=alpha)

    def test_rejects_bad_copy_rate(self):
        with pytest.raises(ParameterError):
            DependenceParams(copy_rate=1.0)

    def test_rejects_bad_n(self):
        with pytest.raises(ParameterError):
            DependenceParams(n_false_values=0)


class TestIterationParams:
    def test_clamp_accuracy(self):
        it = IterationParams(accuracy_floor=0.1, accuracy_ceiling=0.9)
        assert it.clamp_accuracy(0.95) == 0.9
        assert it.clamp_accuracy(0.05) == 0.1
        assert it.clamp_accuracy(0.5) == 0.5

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ParameterError):
            IterationParams(accuracy_floor=0.9, accuracy_ceiling=0.1)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ParameterError):
            IterationParams(max_rounds=0)


class TestOpinionParams:
    def test_hypothesis_priors_sum_to_one(self):
        params = OpinionParams(alpha=0.2)
        assert params.prior_independent + 4 * params.prior_per_hypothesis == pytest.approx(1.0)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ParameterError):
            OpinionParams(smoothing=0.0)


class TestTemporalParams:
    def test_defaults_valid(self):
        TemporalParams()

    def test_rejects_bad_lag(self):
        with pytest.raises(ParameterError):
            TemporalParams(max_copy_lag=0.0)

    def test_rejects_bad_adjustment(self):
        with pytest.raises(ParameterError):
            TemporalParams(freshness_adjustment=1.5)

    def test_rejects_bad_nt_floor(self):
        with pytest.raises(ParameterError):
            TemporalParams(nt_floor=1.0)


class TestWorld:
    def test_is_true(self):
        world = World(truth={"o1": "v"})
        assert world.is_true("o1", "v")
        assert not world.is_true("o1", "w")

    def test_is_true_unknown_object(self):
        world = World(truth={"o1": "v"})
        with pytest.raises(DataError):
            world.is_true("o2", "v")

    def test_dependent_pairs_unordered(self):
        world = World(
            truth={"o1": "v"},
            edges=[DependenceEdge(copier="B", original="A")],
        )
        assert world.dependent_pairs() == {frozenset(("A", "B"))}

    def test_copiers_only_similarity(self):
        world = World(
            truth={"o1": "v"},
            edges=[
                DependenceEdge("B", "A", kind=DependenceKind.SIMILARITY),
                DependenceEdge("C", "A", kind=DependenceKind.DISSIMILARITY),
            ],
        )
        assert world.copiers() == {"B"}

    def test_edge_rejects_self_loop(self):
        with pytest.raises(DataError):
            DependenceEdge(copier="A", original="A")


class TestTemporalWorld:
    def test_make_timeline(self):
        periods = make_timeline([(2006, "MSR"), (2002, "UW"), (2007, "UW2")])
        assert [p.value for p in periods] == ["UW", "MSR", "UW2"]
        assert periods[0].end == 2006
        assert periods[-1].end is None

    def test_rejects_gap(self):
        with pytest.raises(DataError):
            TemporalWorld(
                timelines={
                    "o1": [
                        ValuePeriod("a", 2000, 2002),
                        ValuePeriod("b", 2003, None),
                    ]
                }
            )

    def test_rejects_closed_final_period(self):
        with pytest.raises(DataError):
            TemporalWorld(timelines={"o1": [ValuePeriod("a", 2000, 2002)]})

    def test_true_value_at(self):
        world = TemporalWorld(
            timelines={"o1": make_timeline([(2000, "a"), (2004, "b")])}
        )
        assert world.true_value_at("o1", 2003) == "a"
        assert world.true_value_at("o1", 2004) == "b"
        assert world.true_value_at("o1", 1999) is None

    def test_was_ever_true(self):
        world = TemporalWorld(
            timelines={"o1": make_timeline([(2000, "a"), (2004, "b")])}
        )
        assert world.was_ever_true("o1", "a")
        assert not world.was_ever_true("o1", "zz")

    def test_transition_times_exclude_creation(self):
        world = TemporalWorld(
            timelines={"o1": make_timeline([(2000, "a"), (2004, "b")])}
        )
        assert world.transition_times("o1") == [2004]

    def test_current_truth(self):
        world = TemporalWorld(
            timelines={"o1": make_timeline([(2000, "a"), (2004, "b")])}
        )
        assert world.current_truth() == {"o1": "b"}
