"""Tests for rater dependence: Table 2 and synthetic rating worlds."""

import pytest

from repro.core.params import OpinionParams
from repro.core.world import DependenceKind
from repro.dependence.opinions import (
    discover_rater_dependence,
    rater_pair_posterior,
)
from repro.eval import detection_score
from repro.exceptions import DataError
from repro.generators import RatingWorldConfig, generate_rating_world


class TestTable2:
    """Example 2.2: R4 dissimilarity-depends on R1."""

    def test_r1_r4_detected_as_dissimilarity(self, table2_matrix):
        result = discover_rater_dependence(table2_matrix)
        pair = result.get("R1", "R4")
        assert pair.dominant_kind() is DependenceKind.DISSIMILARITY
        assert pair.p_dissimilarity > 0.5

    def test_r1_r4_is_the_only_detection(self, table2_matrix):
        result = discover_rater_dependence(table2_matrix)
        assert result.detected_pairs(threshold=0.5) == {frozenset(("R1", "R4"))}

    def test_independent_pairs_stay_independent(self, table2_matrix):
        result = discover_rater_dependence(table2_matrix)
        assert result.get("R1", "R2").p_independent > 0.9
        assert result.get("R2", "R4").p_independent > 0.9

    def test_posterior_sums_to_one(self, table2_matrix):
        for pair in discover_rater_dependence(table2_matrix):
            total = (
                pair.p_independent
                + pair.p_r1_copies_r2
                + pair.p_r2_copies_r1
                + pair.p_r1_opposes_r2
                + pair.p_r2_opposes_r1
            )
            assert total == pytest.approx(1.0)

    def test_self_pair_rejected(self, table2_matrix):
        with pytest.raises(DataError):
            rater_pair_posterior(table2_matrix, "R1", "R1")

    def test_min_co_rated_filters(self, table2_matrix):
        result = discover_rater_dependence(table2_matrix, min_co_rated=4)
        assert len(result) == 0  # only 3 movies exist


class TestSyntheticRatingWorlds:
    @pytest.fixture(scope="class")
    def world(self):
        config = RatingWorldConfig(
            n_items=50,
            n_clusters=2,
            raters_per_cluster=4,
            n_copiers=2,
            n_anti=2,
        )
        return generate_rating_world(config, seed=9)

    def test_planted_pairs_detected(self, world):
        result = discover_rater_dependence(world.matrix)
        score = detection_score(
            result.detected_pairs(threshold=0.5), world.dependent_pairs()
        )
        assert score.recall == 1.0
        assert score.precision >= 0.8

    def test_kinds_classified_correctly(self, world):
        result = discover_rater_dependence(world.matrix)
        for edge in world.edges:
            pair = result.get(edge.copier, edge.original)
            assert pair is not None
            assert pair.dominant_kind() is edge.kind

    def test_taste_clusters_not_flagged(self, world):
        """The 'correlated information' challenge: same-cluster genuine
        raters agree a lot but must not be called dependent."""
        result = discover_rater_dependence(world.matrix)
        genuine = world.genuine_raters()
        false_flags = [
            (r1, r2)
            for i, r1 in enumerate(genuine)
            for r2 in genuine[i + 1 :]
            if result.probability(r1, r2) >= 0.5
        ]
        assert false_flags == []

    def test_dependence_on_direction_mass(self, world):
        result = discover_rater_dependence(world.matrix)
        for edge in world.edges:
            pair = result.get(edge.copier, edge.original)
            # The dependent side carries at least as much directed mass.
            assert pair.dependence_on(edge.original) >= 0.0

    def test_dependence_weight_discounts_dependents(self, world):
        params = OpinionParams()
        result = discover_rater_dependence(world.matrix, params)
        weights = {
            rater: result.dependence_weight(rater, params.influence_rate)
            for rater in world.matrix.raters
        }
        planted_dependent = {edge.copier for edge in world.edges}
        avg_dep = sum(weights[r] for r in planted_dependent) / len(planted_dependent)
        genuine = world.genuine_raters()
        # Genuine raters targeted by a dependent also lose some weight
        # (direction is soft), so compare against untargeted genuines.
        targeted = {edge.original for edge in world.edges}
        clean = [r for r in genuine if r not in targeted]
        avg_clean = sum(weights[r] for r in clean) / len(clean)
        assert avg_dep < avg_clean
