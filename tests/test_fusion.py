"""Tests for data fusion and probabilistic-answer combination."""

import pytest

from repro.dependence.bayes import PairDependence
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError
from repro.fusion import (
    DataFusion,
    combination_gap,
    dependent_combination,
    independent_combination,
)
from repro.truth import Depen, NaiveVote


def _graph(p_dep: float, s1="A", s2="B") -> DependenceGraph:
    half = p_dep / 2
    return DependenceGraph(
        [
            PairDependence(
                s1=s1,
                s2=s2,
                p_independent=1 - p_dep,
                p_s1_copies_s2=half,
                p_s2_copies_s1=half,
            )
        ]
    )


class TestDataFusion:
    def test_fused_rows_cover_all_objects(self, table1):
        result = DataFusion(discovery=Depen()).fuse(table1)
        rows = result.fused_rows()
        assert {row.object for row in rows} == set(table1.objects)

    def test_fused_values_match_depen(self, table1):
        from repro.datasets.paper_tables import TABLE1_TRUTH

        result = DataFusion(discovery=Depen()).fuse(table1)
        fused = {row.object: row.value for row in result.fused_rows()}
        assert fused == TABLE1_TRUTH

    def test_copied_support_discounted(self, table1):
        result = DataFusion(discovery=Depen()).fuse(table1)
        rows = {row.object: row for row in result.fused_rows()}
        # Balazinska's UW has 5 supporters but 2 are copies of S3:
        # effective independent support must be well below 5.
        balazinska = rows["Balazinska"]
        assert len(balazinska.supporters) == 5
        assert balazinska.independent_support < 3.5

    def test_vote_based_fusion_has_full_support(self, table1):
        result = DataFusion(discovery=NaiveVote()).fuse(table1)
        rows = {row.object: row for row in result.fused_rows()}
        assert rows["Balazinska"].independent_support == 5.0

    def test_probabilistic_rows_filter(self, table1):
        result = DataFusion(discovery=Depen()).fuse(table1)
        all_rows = result.probabilistic_rows()
        confident = result.probabilistic_rows(min_probability=0.5)
        assert len(confident) <= len(all_rows)
        assert all(r.probability >= 0.5 for r in confident)

    def test_probabilistic_rows_validation(self, table1):
        result = DataFusion(discovery=Depen()).fuse(table1)
        with pytest.raises(DataError):
            result.probabilistic_rows(min_probability=2.0)


class TestProbabilisticCombination:
    def test_independent_noisy_or(self):
        assert independent_combination({"A": 0.5, "B": 0.5}) == pytest.approx(0.75)

    def test_single_source(self):
        assert independent_combination({"A": 0.3}) == pytest.approx(0.3)

    def test_validates_probabilities(self):
        with pytest.raises(DataError):
            independent_combination({"A": 1.5})
        with pytest.raises(DataError):
            independent_combination({})

    def test_dependent_combination_discounts(self):
        assertions = {"A": 0.8, "B": 0.8}
        dependent = dependent_combination(assertions, _graph(1.0))
        independent = independent_combination(assertions)
        assert dependent < independent

    def test_full_copy_collapses_to_one_source(self):
        assertions = {"A": 0.8, "B": 0.8}
        combined = dependent_combination(
            assertions, _graph(1.0), copy_rate=0.999
        )
        assert combined == pytest.approx(0.8, abs=0.01)

    def test_no_dependence_equals_independent(self):
        assertions = {"A": 0.7, "B": 0.4}
        assert dependent_combination(
            assertions, DependenceGraph()
        ) == pytest.approx(independent_combination(assertions))

    def test_combination_gap_nonnegative(self):
        assertions = {"A": 0.8, "B": 0.6}
        assert combination_gap(assertions, _graph(0.9)) >= 0.0

    def test_accuracy_order_counts_credible_first(self):
        assertions = {"A": 0.9, "B": 0.2}
        high_a_first = dependent_combination(
            assertions, _graph(1.0), accuracies={"A": 0.9, "B": 0.1}
        )
        high_b_first = dependent_combination(
            assertions, _graph(1.0), accuracies={"A": 0.1, "B": 0.9}
        )
        # Whoever is counted first keeps full weight.
        assert high_a_first != high_b_first
