"""Serving layer: snapshot immutability, store concurrency, persistence.

The contract under test is the ISSUE-8 acceptance bar: a reader pinned
to version N keeps seeing bit-for-bit unchanged answers while the
writer publishes N+1 mid-read, persistence round-trips are bitwise
equal to the in-memory snapshot, and no query ever observes a torn
(half-updated) state.
"""

import threading

import numpy as np
import pytest

import repro
from repro.core.claims import Claim
from repro.exceptions import ServeError
from repro.generators import simple_copier_world
from repro.query.catalog import BookCatalog, Listing
from repro.query.engine import ServedQueryEngine
from repro.query.queries import LookupQuery
from repro.recommend import recommend_from_snapshot, snapshot_scorecards
from repro.serve import (
    Snapshot,
    SnapshotStore,
    cache_stats,
    clear_cache,
    fetch_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.truth.columnar import ValueProbTable
from repro.truth.depen import Depen


@pytest.fixture(scope="module")
def world():
    return simple_copier_world(
        n_objects=40, n_independent=6, n_copiers=3, seed=11
    )


@pytest.fixture(scope="module")
def published(world):
    dataset, _ = world
    result = Depen(min_overlap=5).discover(dataset)
    return dataset, result, Snapshot.from_result(dataset, result)


# ---------------------------------------------------------------------------
# snapshot: immutability + reads
# ---------------------------------------------------------------------------


def test_snapshot_arrays_are_read_only(published):
    _, _, snapshot = published
    for name in ("probs", "bounds", "counts", "winners", "accuracies",
                 "coverage", "p_dependent"):
        arr = getattr(snapshot, name)
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 0 if arr.size else 0  # noqa: PLW2901 - write must raise
    assert isinstance(snapshot.objects, tuple)
    assert isinstance(snapshot.slot_values, tuple)


def test_snapshot_rejects_writable_arrays(published):
    dataset, result, snapshot = published
    arrays = {
        name: getattr(snapshot, name).copy()  # copies are writable again
        for name in (
            "bounds", "counts", "probs", "winners", "accuracies",
            "coverage", "pair_s1", "pair_s2", "p_dependent",
            "p_s1_copies", "p_s2_copies",
        )
    }
    with pytest.raises(ServeError, match="writable"):
        Snapshot(
            objects=snapshot.objects,
            sources=snapshot.sources,
            slot_values=snapshot.slot_values,
            arrays=arrays,
            dataset_version=snapshot.dataset_version,
            round_id=snapshot.round_id,
        )


def test_snapshot_answers_match_truth_result(published):
    dataset, result, snapshot = published
    for obj in dataset.objects:
        answer = snapshot.answer(obj)
        assert answer.value == result.decisions[obj]
        assert answer.probability == result.distributions[obj][answer.value]
        assert snapshot.distribution(obj) == result.distributions[obj]
    assert snapshot.decisions() == result.decisions
    for source in dataset.sources:
        assert snapshot.accuracy(source) == result.accuracies[source]
        assert snapshot.source_coverage(source) == dataset.coverage(source)


def test_snapshot_dependence_matches_graph(published):
    dataset, result, snapshot = published
    graph = result.dependence
    sources = dataset.sources
    for i, s1 in enumerate(sources):
        assert snapshot.dependence_score(s1) == graph.dependence_score(s1)
        for s2 in sources[i + 1 :]:
            assert snapshot.dependence_probability(s1, s2) == graph.probability(
                s1, s2
            )
            assert snapshot.directed_probability(s1, s2) == (
                graph.directed_probability(s1, s2)
            )


def test_snapshot_explain_dependence_sorted(published):
    _, _, snapshot = published
    entries = snapshot.explain_dependence("cop00")
    assert entries
    probs = [e["p_dependent"] for e in entries]
    assert probs == sorted(probs, reverse=True)
    strong = snapshot.explain_dependence("cop00", threshold=0.9)
    assert all(e["p_dependent"] >= 0.9 for e in strong)


def test_snapshot_unknown_object_and_source(published):
    _, _, snapshot = published
    with pytest.raises(ServeError, match="not covered"):
        snapshot.answer("no-such-object")
    with pytest.raises(ServeError, match="not covered"):
        snapshot.accuracy("no-such-source")
    assert snapshot.probability(snapshot.objects[0], "unseen-value") == 0.0


def test_snapshot_stamp_exactly_once(published):
    dataset, result, _ = published
    snapshot = Snapshot.from_result(dataset, result)
    assert snapshot.version is None
    store = SnapshotStore()
    store.publish(snapshot)
    assert snapshot.version == 1
    with pytest.raises(ServeError, match="already published"):
        store.publish(snapshot)


def test_frozen_table_survives_set_probs(world):
    dataset, _ = world
    table = ValueProbTable(dataset)
    frozen = table.freeze()
    before = frozen["probs"].copy()
    table.set_probs(np.linspace(0.0, 1.0, len(table)))
    assert np.array_equal(frozen["probs"], before)
    assert not frozen["probs"].flags.writeable
    with pytest.raises(ValueError):
        table.bounds[0] = 7  # structural arrays are locked in place


# ---------------------------------------------------------------------------
# store: latest-wins, retention, pinning
# ---------------------------------------------------------------------------


def _publish_round(store, dataset, result):
    return store.publish(Snapshot.from_result(dataset, result))


def test_store_latest_wins_and_versions(published):
    dataset, result, _ = published
    store = SnapshotStore(retention=2)
    v1 = _publish_round(store, dataset, result)
    v2 = _publish_round(store, dataset, result)
    assert (v1.version, v2.version) == (1, 2)
    assert store.latest is v2
    assert store.get(1) is v1
    v3 = _publish_round(store, dataset, result)
    assert store.versions() == [2, 3]
    with pytest.raises(ServeError, match="not in the store"):
        store.get(1)
    stats = store.stats()
    assert stats["published"] == 3
    assert stats["evicted"] == 1
    assert stats["latest_version"] == 3
    assert v3.version == 3


def test_store_empty_reads_raise():
    store = SnapshotStore()
    with pytest.raises(ServeError, match="no snapshot"):
        store.latest
    with pytest.raises(ServeError):
        with store.pin():
            pass


def test_store_pin_blocks_eviction(published):
    dataset, result, _ = published
    store = SnapshotStore(retention=1)
    v1 = _publish_round(store, dataset, result)
    with store.pin(1) as pinned:
        assert pinned is v1
        _publish_round(store, dataset, result)
        _publish_round(store, dataset, result)
        # Out of the retention window but pinned: still resolvable.
        assert store.get(1) is v1
        assert 1 in store.pins()
    # Last release drops the stale version.
    assert 1 not in store.versions()
    with pytest.raises(ServeError):
        store.get(1)


def test_store_clear_spares_pins(published):
    dataset, result, _ = published
    store = SnapshotStore()
    _publish_round(store, dataset, result)
    _publish_round(store, dataset, result)
    with store.pin(1):
        assert store.clear() == 1
        assert store.versions() == [1]
        with pytest.raises(ServeError, match="no snapshot"):
            store.latest
    v3 = _publish_round(store, dataset, result)
    assert v3.version == 3  # version sequence never restarts


def test_store_retention_validation():
    with pytest.raises(ServeError):
        SnapshotStore(retention=0)


# ---------------------------------------------------------------------------
# the headline consistency contract
# ---------------------------------------------------------------------------


def test_pinned_reader_unchanged_across_publish(world):
    """Writer publishes round N+1 mid-read; the pinned reader of N sees
    bit-for-bit unchanged answers."""
    dataset, _ = world
    session = repro.Session(dataset=dataset, min_overlap=5)
    first = session.publish()
    probe = list(first.objects)[:10]
    before = {
        obj: (first.answer(obj), tuple(sorted(first.distribution(obj).items())))
        for obj in probe
    }
    fingerprint = first.fingerprint()

    # Mid-read ingest + publish of round N+1 that *changes* answers.
    flip = [
        Claim(source=f"flood{i}", object=probe[0], value="flooded-value")
        for i in range(12)
    ]
    session.ingest(flip)
    second = session.publish()
    assert second.version == first.version + 1
    assert session.query(probe[0]).value == "flooded-value"

    # The pinned version N is bitwise what it was.
    pinned = session.store.get(first.version)
    assert pinned is first
    assert pinned.fingerprint() == fingerprint
    for obj in probe:
        answer, dist = before[obj]
        assert pinned.answer(obj) == answer
        assert tuple(sorted(pinned.distribution(obj).items())) == dist
    session.close()


def test_concurrent_readers_never_tear(world):
    """Threaded readers racing a publishing writer always see answers
    internally consistent with exactly one published version."""
    dataset, _ = world
    session = repro.Session(dataset=dataset, min_overlap=5)
    session.publish()
    probe = list(session.store.latest.objects)[:5]
    expected: dict[int, dict] = {}
    expected[1] = {o: session.store.latest.answer(o) for o in probe}

    stop = threading.Event()
    torn: list[str] = []

    def reader():
        while not stop.is_set():
            snapshot = session.store.latest
            version = snapshot.version
            for obj in probe:
                answer = snapshot.answer(obj)
                if answer.version != version:
                    torn.append(f"{obj}: {answer.version} != {version}")
                reference = expected.get(version)
                if reference is not None and answer != reference[obj]:
                    torn.append(f"{obj}@{version}: {answer} != {reference[obj]}")

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for round_index in range(5):
            claims = [
                Claim(
                    source=f"w{round_index}",
                    object=obj,
                    value=f"round-{round_index}",
                )
                for obj in probe
            ]
            session.ingest(claims)
            snapshot = session.publish()
            expected[snapshot.version] = {
                o: snapshot.answer(o) for o in probe
            }
    finally:
        stop.set()
        for thread in threads:
            thread.join()
        session.close()
    assert torn == []


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def test_persistence_roundtrip_bitwise(published, tmp_path):
    dataset, result, snapshot = published
    directory = str(tmp_path / "snap")
    save_snapshot(snapshot, directory)
    for mmap in (True, False):
        loaded = load_snapshot(directory, mmap=mmap)
        assert loaded.fingerprint() == snapshot.fingerprint()
        assert loaded.objects == snapshot.objects
        assert loaded.sources == snapshot.sources
        assert loaded.slot_values == snapshot.slot_values
        assert np.array_equal(loaded.probs, snapshot.probs)
        assert np.array_equal(loaded.winners, snapshot.winners)
        for obj in dataset.objects:
            assert loaded.answer(obj) == snapshot.answer(obj)
        assert not loaded.probs.flags.writeable


def test_persistence_preserves_tuple_identifiers(tmp_path):
    catalog = BookCatalog(
        [
            Listing("s1", "b1", "T", ("a", "b"), "P", 2001, "cs"),
            Listing("s2", "b1", "T", ("a", "b"), "P", 2001, "cs"),
        ]
    )
    dataset = catalog.claim_dataset()
    result = Depen().discover(dataset)
    snapshot = Snapshot.from_result(dataset, result)
    directory = str(tmp_path / "catalog-snap")
    save_snapshot(snapshot, directory)
    loaded = load_snapshot(directory)
    assert loaded.objects == snapshot.objects  # (book, field) tuples
    assert loaded.answer(("b1", "authors")).value == ("a", "b")
    assert loaded.fingerprint() == snapshot.fingerprint()


def test_persistence_detects_corruption(published, tmp_path):
    _, _, snapshot = published
    directory = str(tmp_path / "corrupt")
    save_snapshot(snapshot, directory)
    probs = np.load(directory + "/probs.npy")
    probs[0] += 0.25
    np.save(directory + "/probs.npy", probs)
    with pytest.raises(ServeError, match="fingerprint"):
        load_snapshot(directory)
    # verify=False serves it anyway (caller's explicit choice).
    assert load_snapshot(directory, verify=False) is not None


def test_persistence_missing_manifest(tmp_path):
    with pytest.raises(ServeError, match="manifest"):
        load_snapshot(str(tmp_path / "nowhere"))


def test_fetch_snapshot_cache(published, tmp_path):
    _, _, snapshot = published
    directory = str(tmp_path / "cached")
    save_snapshot(snapshot, directory)
    clear_cache()
    base = cache_stats()
    first = fetch_snapshot(directory)
    again = fetch_snapshot(directory)
    assert again is first
    stats = cache_stats()
    assert stats["misses"] == base["misses"] + 1
    assert stats["hits"] == base["hits"] + 1
    assert clear_cache() >= 1
    assert cache_stats()["resident"] == 0


# ---------------------------------------------------------------------------
# snapshot-backed application layers
# ---------------------------------------------------------------------------


def test_served_query_engine(world):
    catalog = BookCatalog(
        [
            Listing("s1", "b1", "Title A", ("ann",), "PubX", 2001, "cs"),
            Listing("s2", "b1", "Title A", ("ann",), "PubX", 2001, "cs"),
            Listing("s3", "b1", "Title B", ("ann",), "PubY", 2001, "cs"),
            Listing("s1", "b2", "Other", ("bob",), "PubX", 1999, "math"),
            Listing("s2", "b2", "Other", ("bob",), "PubX", 1999, "math"),
        ]
    )
    session = repro.Session(dataset=catalog.claim_dataset())
    snapshot = session.publish()
    served = ServedQueryEngine(snapshot)
    assert served.version == snapshot.version
    assert served.answer(LookupQuery("b1", "title")) == "Title A"
    records = served.records()
    assert records["b2"]["publisher"] == "PubX"
    assert 0.0 < served.confidence("b1", "title") <= 1.0
    # Records are assembled once; a later publish elsewhere cannot bleed in.
    session.ingest(
        [Claim(source="s9", object=("b1", "title"), value="Title Z")]
    )
    session.publish()
    assert served.answer(LookupQuery("b1", "title")) == "Title A"
    session.close()


def test_served_query_engine_needs_catalog_shape(published):
    _, _, snapshot = published
    from repro.exceptions import QueryError

    with pytest.raises(QueryError, match="catalog-shaped"):
        ServedQueryEngine(snapshot)


def test_recommend_from_snapshot_matches_live_path(published):
    dataset, result, snapshot = published
    from repro.recommend import build_scorecards, recommend_sources

    live_cards = build_scorecards(
        result.accuracies,
        {s: dataset.coverage(s) for s in dataset.sources},
        result.dependence,
    )
    frozen_cards = snapshot_scorecards(snapshot)
    assert frozen_cards == live_cards
    assert recommend_from_snapshot(snapshot, 3) == recommend_sources(
        live_cards, result.dependence, 3
    )
