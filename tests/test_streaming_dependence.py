"""Incremental-dependence equivalence tests.

The contract of the streaming subsystem: after *any* sequence of ingest
batches, the incrementally maintained :class:`EvidenceCache` (and any
:class:`DependenceGraph` discovered from it) is bit-for-bit identical to
a cold rebuild on the final dataset. The tests interleave random ingest
batches with refreshes/discoveries and assert exactly that, across every
evidence-model combination, overlap thresholds and the hot-object cap.

The ported temporal and opinion collectors are pinned the same way:
their batch output must match the per-pair reference walks
(:func:`collect_co_adoptions`, :func:`rater_pair_posterior`) that the
pre-refactor discovery loops used.
"""

from __future__ import annotations

import logging
import random

import pytest

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, OpinionParams, TemporalParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import discover_dependence
from repro.dependence.opinions import (
    RaterPairCollector,
    discover_rater_dependence,
    rater_pair_posterior,
)
from repro.dependence.streaming import StreamingDependenceEngine
from repro.dependence.temporal import (
    CoAdoptionCollector,
    collect_co_adoptions,
    discover_temporal_dependence,
    temporal_pair_posterior,
)
from repro.exceptions import DataError
from repro.generators import (
    RatingWorldConfig,
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_rating_world,
    generate_temporal_world,
)
from repro.temporal.lifespan import infer_timelines
from repro.truth import Depen
from repro.truth.vote_counting import (
    VoteOrderCache,
    all_discounted_vote_counts,
)

ALL_PARAMS = [
    DependenceParams(false_value_model=model, evidence_form=form)
    for model in ("uniform", "empirical")
    for form in ("expected_log", "marginal")
]


def _random_claims(rng, n_sources=12, n_objects=40, coverage=25, n_values=3):
    sources = [f"S{i:02d}" for i in range(n_sources)]
    objects = [f"o{i:03d}" for i in range(n_objects)]
    claims = []
    for source in sources:
        for obj in rng.sample(objects, coverage):
            claims.append(
                Claim(
                    source=source,
                    object=obj,
                    value=f"v{rng.randrange(n_values)}",
                )
            )
    rng.shuffle(claims)
    return claims


def _assert_same_evidence(incremental, cold, context=""):
    assert set(incremental) == set(cold), context
    for key in cold:
        a, b = incremental[key], cold[key]
        assert (a.s1, a.s2) == (b.s1, b.s2), (context, key)
        assert a.kt_soft == b.kt_soft, (context, key)
        assert a.kf_soft == b.kf_soft, (context, key)
        assert a.kd == b.kd, (context, key)
        assert a.shared_values == b.shared_values, (context, key)
        assert a.shared_count == b.shared_count, (context, key)


def _assert_same_graph(incremental, cold):
    assert len(incremental) == len(cold)
    for pair in cold:
        other = incremental.get(pair.s1, pair.s2)
        assert other.p_independent == pair.p_independent
        assert other.p_s1_copies_s2 == pair.p_s1_copies_s2
        assert other.p_s2_copies_s1 == pair.p_s2_copies_s1


class TestDatasetIngest:
    def test_version_counts_adds_not_duplicates(self, tiny_dataset):
        version = tiny_dataset.version
        assert version == len(tiny_dataset)
        delta = tiny_dataset.add_claims(
            [
                Claim(source="A", object="o1", value="x"),  # duplicate
                Claim(source="D", object="o1", value="x"),
            ]
        )
        assert delta.added == 1
        assert delta.duplicates == 1
        assert delta.dirty_objects == frozenset({"o1"})
        assert tiny_dataset.version == version + 1
        assert bool(delta)

    def test_empty_batch_is_falsy(self, tiny_dataset):
        delta = tiny_dataset.add_claims([])
        assert not delta
        assert delta.dirty_objects == frozenset()

    def test_conflicting_claim_still_raises(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.add_claims(
                [Claim(source="A", object="o1", value="DIFFERENT")]
            )

    def test_new_claims_since_reports_per_object_sources(self, tiny_dataset):
        version = tiny_dataset.version
        tiny_dataset.add_claims(
            [
                Claim(source="D", object="o1", value="x"),
                Claim(source="D", object="o2", value="u"),
                Claim(source="E", object="o2", value="v"),
            ]
        )
        delta = tiny_dataset.new_claims_since(version)
        assert delta == {"o1": {"D"}, "o2": {"D", "E"}}
        assert tiny_dataset.dirty_objects_since(version) == {"o1", "o2"}
        assert tiny_dataset.new_claims_since(tiny_dataset.version) == {}

    def test_future_version_rejected(self, tiny_dataset):
        with pytest.raises(DataError, match="future"):
            tiny_dataset.dirty_objects_since(tiny_dataset.version + 1)

    def test_compacting_past_current_version_rejected(self, tiny_dataset):
        with pytest.raises(DataError, match="compact past"):
            tiny_dataset.compact_log(tiny_dataset.version + 1)
        # The log floor is untouched by the failed call.
        assert tiny_dataset.new_claims_since(0) != {}

    def test_compacted_log_rejects_old_queries(self, tiny_dataset):
        version = tiny_dataset.version
        tiny_dataset.add_claims([Claim(source="D", object="o1", value="x")])
        dropped = tiny_dataset.compact_log()
        assert dropped == tiny_dataset.version
        with pytest.raises(DataError, match="compacted"):
            tiny_dataset.new_claims_since(version)
        # Queries from the compaction point onward still work.
        assert tiny_dataset.new_claims_since(tiny_dataset.version) == {}


class TestIncrementalEvidenceEquivalence:
    """Interleaved ingest + refresh == cold rebuild, bit for bit."""

    @pytest.mark.parametrize("params", ALL_PARAMS)
    def test_random_ingest_matches_cold_rebuild(self, params):
        rng = random.Random(13)
        claims = _random_claims(rng)
        dataset = ClaimDataset(claims[:80])
        cache = EvidenceCache(dataset, params=params, exact=True)
        cursor = 80
        while cursor < len(claims):
            batch = claims[cursor : cursor + rng.randrange(1, 30)]
            cursor += len(batch)
            dataset.add_claims(batch)
            probs = uniform_value_probabilities(dataset)
            cold = EvidenceCache(dataset, params=params, exact=True)
            _assert_same_evidence(
                cache.collect_all(probs),
                cold.collect_all(probs),
                context=f"cursor={cursor}",
            )

    @pytest.mark.parametrize("min_overlap", [1, 5, 12])
    def test_pairs_crossing_overlap_threshold_are_backfilled(
        self, min_overlap
    ):
        rng = random.Random(29)
        claims = _random_claims(rng, n_sources=8, n_objects=30, coverage=18)
        dataset = ClaimDataset(claims[:40])
        params = DependenceParams()
        cache = EvidenceCache(
            dataset, min_overlap=min_overlap, params=params, exact=True
        )
        dataset.add_claims(claims[40:])
        probs = uniform_value_probabilities(dataset)
        cold = EvidenceCache(
            dataset, min_overlap=min_overlap, params=params, exact=True
        )
        # The pair set itself must match what the cold build derives —
        # including pairs that crossed min_overlap only through ingest.
        assert set(cache.collect_all(probs)) == set(cold.collect_all(probs))
        _assert_same_evidence(
            cache.collect_all(probs), cold.collect_all(probs)
        )

    def test_brand_new_sources_and_objects_join_the_pair_set(self):
        dataset = ClaimDataset.from_table(
            {"o1": {"A": "x", "B": "x"}, "o2": {"A": "y", "B": "z"}}
        )
        cache = EvidenceCache(dataset, params=DependenceParams(), exact=True)
        assert cache.pairs == [("A", "B")]
        dataset.add_claims(
            [
                Claim(source="C", object="o1", value="x"),
                Claim(source="C", object="o9", value="w"),
                Claim(source="A", object="o9", value="w"),
            ]
        )
        probs = uniform_value_probabilities(dataset)
        evidence = cache.collect_all(probs)
        assert set(evidence) == {("A", "B"), ("A", "C"), ("B", "C")}
        cold = EvidenceCache(dataset, params=DependenceParams(), exact=True)
        _assert_same_evidence(evidence, cold.collect_all(probs))

    def test_fixed_pair_set_updates_but_never_grows(self):
        dataset = ClaimDataset.from_table(
            {"o1": {"A": "x", "B": "x", "C": "y"}}
        )
        cache = EvidenceCache(dataset, [("A", "B")], exact=True)
        dataset.add_claims([Claim(source="C", object="o2", value="q"),
                           Claim(source="A", object="o2", value="q")])
        evidence = cache.collect_all(uniform_value_probabilities(dataset))
        assert set(evidence) == {("A", "B")}  # explicit pair set is fixed
        # ... but the listed pair's evidence does track new claims.
        dataset.add_claims([Claim(source="B", object="o2", value="q")])
        evidence = cache.collect_all(uniform_value_probabilities(dataset))
        assert evidence[("A", "B")].shared_count == 2

    def test_stale_evidence_access_rejected(self, tiny_dataset):
        cache = EvidenceCache(tiny_dataset, params=DependenceParams())
        cache.refresh(uniform_value_probabilities(tiny_dataset))
        tiny_dataset.add_claims([Claim(source="D", object="o1", value="x")])
        with pytest.raises(DataError, match="grown"):
            cache.evidence("A", "B")
        cache.refresh(uniform_value_probabilities(tiny_dataset))
        assert cache.evidence("A", "B") is not None

    @pytest.mark.parametrize(
        "params",
        [
            DependenceParams(max_providers_per_object=4),
            DependenceParams(
                false_value_model="empirical", max_providers_per_object=4
            ),
        ],
    )
    def test_hot_object_cap_keeps_equivalence_under_ingest(self, params):
        rng = random.Random(47)
        claims = _random_claims(rng, n_sources=10, n_objects=20, coverage=14)
        dataset = ClaimDataset(claims[:60])
        cache = EvidenceCache(dataset, params=params, exact=True)
        cursor = 60
        while cursor < len(claims):
            batch = claims[cursor : cursor + rng.randrange(1, 25)]
            cursor += len(batch)
            dataset.add_claims(batch)
            probs = uniform_value_probabilities(dataset)
            cold = EvidenceCache(dataset, params=params, exact=True)
            _assert_same_evidence(
                cache.collect_all(probs), cold.collect_all(probs)
            )
            assert dict(cache.truncated_objects) == dict(
                cold.truncated_objects
            )

    def test_cap_truncations_are_recorded_and_logged(self, caplog):
        dataset = ClaimDataset.from_table(
            {"hot": {f"S{i}": "x" for i in range(8)}, "cold": {"S0": "y", "S1": "y"}}
        )
        with caplog.at_level(logging.WARNING, logger="repro.dependence"):
            cache = EvidenceCache(
                dataset,
                params=DependenceParams(max_providers_per_object=3),
            )
        assert dict(cache.truncated_objects) == {"hot": 5}
        assert any("hot-item guard" in r.message for r in caplog.records)
        # Capped enumeration: the hot object only contributes pairs
        # among its first 3 providers.
        assert ("S0", "S3") not in set(cache.pairs)
        assert ("S0", "S2") in set(cache.pairs)

    def test_incompatible_cap_params_rejected(self, tiny_dataset):
        cache = EvidenceCache(tiny_dataset, params=DependenceParams())
        with pytest.raises(DataError, match="max_providers_per_object"):
            discover_dependence(
                tiny_dataset,
                uniform_value_probabilities(tiny_dataset),
                {s: 0.8 for s in tiny_dataset.sources},
                DependenceParams(max_providers_per_object=5),
                evidence_cache=cache,
            )


class TestStreamingEngine:
    def test_interleaved_ingest_discover_matches_cold_graph(self):
        rng = random.Random(3)
        claims = _random_claims(rng)
        params = DependenceParams()
        engine = StreamingDependenceEngine(params=params)
        cursor = 0
        while cursor < len(claims):
            batch = claims[cursor : cursor + rng.randrange(5, 60)]
            cursor += len(batch)
            engine.ingest(batch)
            live = engine.discover()
            probs = uniform_value_probabilities(engine.dataset)
            cold = discover_dependence(
                engine.dataset,
                probs,
                {s: 0.8 for s in engine.dataset.sources},
                params,
            )
            _assert_same_graph(live, cold)

    def test_staleness_tracking(self, tiny_dataset):
        engine = StreamingDependenceEngine(tiny_dataset)
        assert engine.is_stale
        engine.discover()
        assert not engine.is_stale
        engine.ingest([Claim(source="D", object="o1", value="x")])
        assert engine.is_stale
        engine.discover()
        assert not engine.is_stale

    def test_duplicate_only_batch_keeps_graph_fresh(self, tiny_dataset):
        engine = StreamingDependenceEngine(tiny_dataset)
        engine.discover()
        delta = engine.ingest([Claim(source="A", object="o1", value="x")])
        assert not delta
        assert not engine.is_stale

    def test_empty_engine_rejects_discover(self):
        engine = StreamingDependenceEngine()
        with pytest.raises(DataError, match="no claims"):
            engine.discover()

    def test_run_truth_reuses_cache_and_matches_fresh_depen(
        self, copier_world
    ):
        dataset, world = copier_world
        claims = sorted(dataset, key=lambda c: (c.source, str(c.object)))
        engine = StreamingDependenceEngine()
        engine.ingest(claims[: len(claims) // 2])
        engine.run_truth()
        engine.ingest(claims[len(claims) // 2 :])
        streamed = engine.run_truth()

        fresh = Depen().discover(engine.dataset)
        assert streamed.decisions == fresh.decisions
        assert streamed.accuracies == fresh.accuracies
        _assert_same_graph(streamed.dependence, fresh.dependence)
        # The engine adopted the run's outputs as live state.
        assert engine.graph is streamed.dependence
        assert not engine.is_stale
        assert engine.accuracies == streamed.accuracies

    def test_discover_clamps_perfect_accuracy_estimates(self):
        """DEPEN can estimate accuracy exactly 1.0; discover must clamp.

        A tiny fully-agreeing world converges to accuracies of 1.0;
        feeding them unclamped into the Bayes model (which needs the
        open interval) used to raise DataError.
        """
        engine = StreamingDependenceEngine(
            params=DependenceParams(n_false_values=20)
        )
        engine.ingest(
            [Claim(source=f"S{i}", object=f"o{j}", value="x")
             for i in range(3) for j in range(3)]
        )
        result = engine.run_truth()
        assert max(result.accuracies.values()) == 1.0
        engine.ingest([Claim(source="S9", object="o0", value="y")])
        graph = engine.discover()  # must not raise on the 1.0 estimates
        assert len(graph) > 0

    def test_compact_trims_the_mutation_log(self, tiny_dataset):
        engine = StreamingDependenceEngine(tiny_dataset)
        engine.ingest([Claim(source="D", object="o1", value="x")])
        assert engine.compact() > 0
        # The cache is synced past the compaction point, so it still works.
        engine.ingest([Claim(source="E", object="o2", value="u")])
        engine.discover()


class TestDepenEvidenceCacheInjection:
    def test_injected_cache_matches_default_run(self, table1):
        baseline = Depen().discover(table1)
        cache = EvidenceCache(table1, params=DependenceParams())
        injected = Depen().discover(table1, evidence_cache=cache)
        assert injected.decisions == baseline.decisions
        assert injected.accuracies == baseline.accuracies
        _assert_same_graph(injected.dependence, baseline.dependence)

    def test_incompatible_cache_rejected(self, table1):
        cache = EvidenceCache(
            table1, params=DependenceParams(false_value_model="empirical")
        )
        with pytest.raises(DataError, match="false_value_model"):
            Depen().discover(table1, evidence_cache=cache)

    def test_cache_bound_to_other_dataset_rejected(self, table1, tiny_dataset):
        cache = EvidenceCache(tiny_dataset, params=DependenceParams())
        with pytest.raises(DataError, match="different ClaimDataset"):
            Depen().discover(table1, evidence_cache=cache)

    def test_min_overlap_mismatch_rejected(self, table1):
        cache = EvidenceCache(table1, params=DependenceParams())
        with pytest.raises(DataError, match="min_overlap"):
            Depen(min_overlap=3).discover(table1, evidence_cache=cache)


class TestVoteOrderCache:
    def _scores(self, accuracies):
        return {s: 1.0 + i for i, s in enumerate(sorted(accuracies))}

    def test_cached_counts_match_uncached(self, copier_world):
        dataset, _ = copier_world
        rng = random.Random(5)
        accuracies = {s: rng.uniform(0.2, 0.95) for s in dataset.sources}
        scores = {s: 0.5 + rng.random() for s in dataset.sources}
        graph = discover_dependence(
            dataset,
            uniform_value_probabilities(dataset),
            {s: 0.8 for s in dataset.sources},
            DependenceParams(),
        )
        cache = VoteOrderCache(dataset)
        plain = all_discounted_vote_counts(
            dataset, scores, graph, 0.8, accuracies
        )
        cached = all_discounted_vote_counts(
            dataset, scores, graph, 0.8, accuracies, order_cache=cache
        )
        assert plain == cached
        # Second round with identical ranking: served from cache, equal.
        again = all_discounted_vote_counts(
            dataset, scores, graph, 0.8, accuracies, order_cache=cache
        )
        assert again == plain

    def test_invalidates_on_rank_change_and_ingest(self, tiny_dataset):
        cache = VoteOrderCache(tiny_dataset)
        orders = cache.orderings({"A": 0.9, "B": 0.5, "C": 0.3})
        assert orders["o1"][0][1][0] == "A"  # most accurate first
        same_rank = cache.orderings({"A": 0.8, "B": 0.45, "C": 0.29})
        assert same_rank is orders  # rank order unchanged: reuse
        flipped = cache.orderings({"A": 0.4, "B": 0.5, "C": 0.3})
        assert flipped is not orders
        assert flipped["o1"][0][1][0] == "B"
        tiny_dataset.add_claims([Claim(source="D", object="o1", value="x")])
        after_ingest = cache.orderings(
            {"A": 0.4, "B": 0.5, "C": 0.3, "D": 0.2}
        )
        assert after_ingest is not flipped
        providers = {s for _, ps in after_ingest["o1"] for s in ps}
        assert "D" in providers


class TestTemporalCollectorEquivalence:
    @pytest.fixture(scope="class")
    def world(self):
        config = TemporalConfig(
            n_objects=40,
            time_span=40.0,
            transitions_per_object=2.0,
            n_false_values=10,
            sources=[
                TemporalSourceSpec("fresh", lag=0.3, error_rate=0.1),
                TemporalSourceSpec("slow", lag=3.0, error_rate=0.1),
                TemporalSourceSpec("mid1", lag=1.0, error_rate=0.1),
                TemporalSourceSpec("mid2", lag=1.5, error_rate=0.1),
            ],
            copiers=[
                TemporalCopierSpec(
                    "lazy1", "fresh", poll_interval=3.0, copy_rate=0.8
                ),
            ],
        )
        return generate_temporal_world(config, seed=11)

    def test_collector_events_match_per_pair_reference(self, world):
        dataset, _ = world
        timelines, _ = infer_timelines(dataset)
        collector = CoAdoptionCollector(dataset)
        sources = dataset.sources
        for i, s1 in enumerate(sources):
            for s2 in sources[i + 1 :]:
                reference = collect_co_adoptions(
                    dataset, s1, s2, timelines, collector.adopter_counts
                )
                assert collector.events(s1, s2, timelines) == reference

    def test_collector_events_swap_direction_cleanly(self, world):
        dataset, _ = world
        timelines, _ = infer_timelines(dataset)
        collector = CoAdoptionCollector(dataset)
        forward = collector.events("fresh", "lazy1", timelines)
        backward = collector.events("lazy1", "fresh", timelines)
        assert {(e.object, e.value, e.t1, e.t2) for e in forward} == {
            (e.object, e.value, e.t2, e.t1) for e in backward
        }

    def test_discovery_matches_pre_refactor_reference(self, world):
        """The ported loop reproduces the per-pair walk bit for bit."""
        dataset, _ = world
        params = TemporalParams(freshness_adjustment=0.6)
        timelines, exactness = infer_timelines(dataset)
        ported = discover_temporal_dependence(
            dataset, params, timelines, exactness
        )

        # Pre-refactor reference: per-pair collection walks + the
        # adopter/never-true precompute loops, verbatim.
        collector = CoAdoptionCollector(dataset)
        adopter_counts = dict(collector.adopter_counts)
        nt_rate = collector.never_true_rates(timelines)

        def clamp(a):
            return min(0.99, max(0.01, a))

        sources = dataset.sources
        n_pairs = 0
        for i, s1 in enumerate(sources):
            for s2 in sources[i + 1 :]:
                events = collect_co_adoptions(
                    dataset, s1, s2, timelines, adopter_counts
                )
                if not events:
                    continue
                n_pairs += 1
                expected = temporal_pair_posterior(
                    events,
                    s1,
                    s2,
                    clamp(exactness.get(s1, 0.5)),
                    clamp(exactness.get(s2, 0.5)),
                    params,
                    nt_rates=(nt_rate.get(s1, 0.0), nt_rate.get(s2, 0.0)),
                )
                got = ported.get(s1, s2)
                assert got.p_independent == expected.p_independent
                assert got.p_s1_copies_s2 == expected.p_s1_copies_s2
                assert got.p_s2_copies_s1 == expected.p_s2_copies_s1
        assert len(ported) == n_pairs > 0

    def test_stale_collector_rejected(self):
        from repro.core.claims import TemporalClaim
        from repro.core.temporal_dataset import TemporalDataset

        dataset = TemporalDataset.from_table(
            {"o1": {"A": [(1.0, "x"), (3.0, "y")], "B": [(2.0, "x")]}}
        )
        collector = CoAdoptionCollector(dataset)
        dataset.add(
            TemporalClaim(source="B", object="o1", value="y", time=4.0)
        )
        with pytest.raises(DataError, match="grown"):
            collector.events("A", "B", {})
        with pytest.raises(DataError, match="grown"):
            collector.never_true_rates({})

    def test_collector_for_other_dataset_rejected(self, world):
        dataset, _ = world
        other = dataset.restrict_sources(["fresh", "slow", "mid1"])
        collector = CoAdoptionCollector(other)
        with pytest.raises(DataError, match="different TemporalDataset"):
            discover_temporal_dependence(dataset, collector=collector)

    def test_self_pair_membership_is_false_not_error(self, world):
        dataset, _ = world
        collector = CoAdoptionCollector(dataset)
        assert ("fresh", "fresh") not in collector
        assert ("fresh", "slow") in collector

    def test_never_true_rates_match_reference_computation(self, world):
        dataset, _ = world
        timelines, _ = infer_timelines(dataset)
        collector = CoAdoptionCollector(dataset)
        from repro.dependence.temporal import _first_adoptions

        nt_counts: dict = {}
        adoption_counts: dict = {}
        for source in dataset.sources:
            for obj in dataset.objects_of(source):
                periods = timelines.get(obj, [])
                for value in _first_adoptions(dataset, source, obj):
                    adoption_counts[source] = (
                        adoption_counts.get(source, 0) + 1
                    )
                    if not any(p.value == value for p in periods):
                        nt_counts[source] = nt_counts.get(source, 0) + 1
        expected = {
            source: nt_counts.get(source, 0) / count
            for source, count in adoption_counts.items()
        }
        assert collector.never_true_rates(timelines) == expected


class TestRaterCollectorEquivalence:
    @pytest.fixture(scope="class")
    def world(self):
        config = RatingWorldConfig(
            n_items=40,
            n_clusters=2,
            raters_per_cluster=4,
            n_copiers=2,
            n_anti=1,
        )
        return generate_rating_world(config, seed=9)

    def test_unit_weight_posteriors_match_reference_exactly(self, world):
        """Unit weights: the count subtraction is exact arithmetic."""
        matrix = world.matrix
        params = OpinionParams()
        collector = RaterPairCollector(matrix)
        raters = matrix.raters
        checked = 0
        for i, r1 in enumerate(raters):
            for r2 in raters[i + 1 :]:
                if not matrix.co_rated(r1, r2):
                    continue
                reference = rater_pair_posterior(matrix, r1, r2, params)
                got = collector.pair_posterior(r1, r2, params)
                assert got.p_independent == reference.p_independent
                assert got.p_r1_copies_r2 == reference.p_r1_copies_r2
                assert got.p_r2_copies_r1 == reference.p_r2_copies_r1
                assert got.p_r1_opposes_r2 == reference.p_r1_opposes_r2
                assert got.p_r2_opposes_r1 == reference.p_r2_opposes_r1
                assert got.co_rated == reference.co_rated
                checked += 1
        assert checked > 0

    def test_weighted_posteriors_match_reference(self, world):
        matrix = world.matrix
        params = OpinionParams()
        rng = random.Random(17)
        weights = {r: rng.uniform(0.0, 1.0) for r in matrix.raters}
        collector = RaterPairCollector(matrix)
        counts = collector.weighted_counts(weights, params.smoothing)
        for r1, r2 in sorted(collector.pairs):
            reference = rater_pair_posterior(matrix, r1, r2, params, weights)
            got = collector.pair_posterior(
                r1, r2, params, weights, counts=counts
            )
            assert got.p_independent == pytest.approx(
                reference.p_independent, rel=1e-9, abs=1e-12
            )
            assert got.p_r1_copies_r2 == pytest.approx(
                reference.p_r1_copies_r2, rel=1e-9, abs=1e-12
            )
            assert got.p_r1_opposes_r2 == pytest.approx(
                reference.p_r1_opposes_r2, rel=1e-9, abs=1e-12
            )

    def test_discovery_matches_pre_refactor_reference(self, world):
        """The ported loop reproduces the per-pair reference loop."""
        matrix = world.matrix
        params = OpinionParams()
        ported = discover_rater_dependence(matrix, params, min_co_rated=3)

        raters = matrix.raters
        n_pairs = 0
        for i, r1 in enumerate(raters):
            for r2 in raters[i + 1 :]:
                if len(matrix.co_rated(r1, r2)) < 3:
                    continue
                n_pairs += 1
                reference = rater_pair_posterior(matrix, r1, r2, params)
                got = ported.get(r1, r2)
                assert got is not None
                assert got.p_independent == reference.p_independent
                assert got.p_dependent == reference.p_dependent
        assert len(ported) == n_pairs > 0

    def test_swapped_query_mirrors_directions(self, world):
        matrix = world.matrix
        collector = RaterPairCollector(matrix)
        r1, r2 = sorted(collector.pairs)[0]
        forward = collector.pair_posterior(r1, r2)
        backward = collector.pair_posterior(r2, r1)
        assert forward.p_r1_copies_r2 == backward.p_r2_copies_r1
        assert forward.p_r1_opposes_r2 == backward.p_r2_opposes_r1
        assert forward.p_independent == backward.p_independent

    def test_stale_collector_rejected(self):
        from repro.core.claims import Rating
        from repro.opinions.ratings import RatingMatrix

        matrix = RatingMatrix.from_table(
            ("Bad", "Good"),
            {"m1": {"R1": "Good", "R2": "Good"}, "m2": {"R1": "Bad", "R2": "Bad"}},
        )
        collector = RaterPairCollector(matrix)
        matrix.add(Rating(rater="R3", item="m1", score="Bad"))
        with pytest.raises(DataError, match="grown"):
            collector.pair_posterior("R1", "R2")
        with pytest.raises(DataError, match="grown"):
            collector.weighted_counts(None, 0.5)

    def test_collector_for_other_matrix_rejected(self, world, table2_matrix):
        collector = RaterPairCollector(table2_matrix)
        with pytest.raises(DataError, match="different RatingMatrix"):
            discover_rater_dependence(world.matrix, collector=collector)
