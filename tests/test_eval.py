"""Tests for evaluation metrics, tables and the experiment harness."""

import pytest

from repro.core.claims import ValuePeriod
from repro.core.world import make_timeline
from repro.eval import (
    area_under_quality_curve,
    compare_algorithms,
    consensus_error,
    detection_score,
    distribution_l1,
    pair_probabilities,
    render_series,
    render_table,
    threshold_sweep,
    timeline_accuracy,
    truth_accuracy,
)
from repro.exceptions import DataError
from repro.truth import Depen, NaiveVote


def _pairs(*names):
    return {frozenset(pair) for pair in names}


class TestDetectionScore:
    def test_perfect(self):
        score = detection_score(_pairs(("a", "b")), _pairs(("a", "b")))
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_partial(self):
        score = detection_score(
            _pairs(("a", "b"), ("a", "c")), _pairs(("a", "b"), ("b", "c"))
        )
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_empty_conventions(self):
        assert detection_score(set(), _pairs(("a", "b"))).precision == 1.0
        assert detection_score(_pairs(("a", "b")), set()).recall == 1.0

    def test_f1_zero_when_nothing_matches(self):
        score = detection_score(_pairs(("a", "b")), _pairs(("c", "d")))
        assert score.f1 == 0.0

    def test_threshold_sweep_monotone_detected(self):
        probabilities = {
            frozenset(("a", "b")): 0.9,
            frozenset(("a", "c")): 0.4,
        }
        sweep = threshold_sweep(probabilities, _pairs(("a", "b")))
        detected_counts = [score.detected for _, score in sweep]
        assert detected_counts == sorted(detected_counts, reverse=True)

    def test_threshold_sweep_validation(self):
        with pytest.raises(DataError):
            threshold_sweep({}, set(), thresholds=[1.5])


class TestScalarMetrics:
    def test_truth_accuracy(self):
        assert truth_accuracy({"o": "v"}, {"o": "v", "p": "w"}) == 0.5

    def test_truth_accuracy_empty_truth(self):
        with pytest.raises(DataError):
            truth_accuracy({}, {})

    def test_consensus_error(self):
        assert consensus_error({"a": 1.0}, {"a": 0.5}) == pytest.approx(0.5)

    def test_consensus_error_missing_item(self):
        with pytest.raises(DataError):
            consensus_error({}, {"a": 1.0})

    def test_distribution_l1_identical_is_zero(self):
        dists = {"a": {"x": 0.7, "y": 0.3}}
        assert distribution_l1(dists, dists) == 0.0

    def test_distribution_l1_disjoint_is_two(self):
        assert distribution_l1(
            {"a": {"x": 1.0}}, {"a": {"y": 1.0}}
        ) == pytest.approx(2.0)

    def test_area_under_quality_curve(self):
        assert area_under_quality_curve([0.0, 0.5, 1.0]) == pytest.approx(0.5)
        with pytest.raises(DataError):
            area_under_quality_curve([])


class TestTimelineAccuracy:
    def test_perfect_match(self):
        timelines = {"o": make_timeline([(0, "a"), (5, "b")])}
        assert timeline_accuracy(timelines, timelines) == 1.0

    def test_half_wrong(self):
        true = {"o": make_timeline([(0, "a"), (5, "b")])}
        inferred = {"o": [ValuePeriod("a", 0, None)]}
        accuracy = timeline_accuracy(inferred, true, grid=10)
        assert accuracy == pytest.approx(0.5, abs=0.1)

    def test_missing_object_counts_zero(self):
        true = {"o": make_timeline([(0, "a"), (5, "b")])}
        assert timeline_accuracy({}, true) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            timeline_accuracy({}, {}, grid=50)
        with pytest.raises(DataError):
            timeline_accuracy({}, {"o": make_timeline([(0, "a")])}, grid=1)


class TestHarness:
    def test_compare_algorithms(self, table1):
        from repro.datasets.paper_tables import TABLE1_TRUTH

        rows = compare_algorithms(table1, TABLE1_TRUTH, [NaiveVote(), Depen()])
        by_name = {row["algorithm"]: row for row in rows}
        assert by_name["depen"]["accuracy"] == 1.0
        assert by_name["vote"]["accuracy"] < 1.0
        assert all(row["seconds"] >= 0 for row in rows)

    def test_compare_requires_algorithms(self, table1):
        with pytest.raises(DataError):
            compare_algorithms(table1, {"o": "v"}, [])

    def test_pair_probabilities_extraction(self, table1):
        result = Depen().discover(table1)
        probs = pair_probabilities(result.dependence)
        assert probs[frozenset(("S3", "S4"))] > 0.9


class TestTables:
    def test_render_table_aligns(self):
        text = render_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in lines[2]

    def test_render_table_validates_row_width(self):
        with pytest.raises(DataError):
            render_table(["one"], [["a", "b"]])

    def test_render_table_needs_headers(self):
        with pytest.raises(DataError):
            render_table([], [])

    def test_render_series(self):
        assert render_series("q", [0.1, 0.25]) == "q: [0.100, 0.250]"
