"""Streaming temporal engine: incremental ingest == cold rebuild.

:class:`StreamingTemporalDataset` mirrors the snapshot streaming engine
for the temporal modality: each ingest batch repairs exactly the
co-adoption state it dirtied, and the maintained collector must equal a
cold :class:`CoAdoptionCollector` of the post-ingest dataset — slot
record order, adopter counts, cap truncation records and discover
posteriors, bit for bit, for every provider cap. Also covered here:
the TemporalDataset versioning surface the stream consumes, and the
opt-in ``evidence_decay`` down-weighting (default 1.0 must be a
bitwise no-op).
"""

from __future__ import annotations

import random

import pytest

from repro.core.claims import TemporalClaim
from repro.core.params import TemporalParams
from repro.core.temporal_dataset import TemporalDataset
from repro.dependence.temporal import (
    CoAdoptionCollector,
    StreamingTemporalDataset,
    discover_temporal_dependence,
)
from repro.exceptions import DataError, ParameterError


def _random_temporal_claims(rng, seen, n=40, n_sources=6, n_objects=10):
    """Random update claims, consistent with everything generated before.

    ``seen`` maps (source, object, time) -> value across *all* batches
    drawn from it, so no batch ever asserts a second value for an
    already-used timestamp (which the dataset rejects by design).
    """
    claims = []
    for _ in range(n):
        key = (
            f"S{rng.randrange(n_sources)}",
            f"o{rng.randrange(n_objects)}",
            float(rng.randrange(0, 30)),
        )
        value = seen.setdefault(key, f"v{rng.randrange(4)}")
        claims.append(
            TemporalClaim(
                source=key[0], object=key[1], value=value, time=key[2]
            )
        )
    rng.shuffle(claims)
    return claims


def _sorted_adoptions(collector):
    return {
        source: sorted(adoptions)
        for source, adoptions in collector._adoptions_by_source.items()
        if adoptions
    }


def _assert_collector_equal(maintained, cold, context=""):
    assert maintained._slots.keys() == cold._slots.keys(), context
    for key in cold._slots:
        assert maintained._slots[key] == cold._slots[key], (context, key)
    assert maintained._adopter_counts == cold._adopter_counts, context
    assert _sorted_adoptions(maintained) == _sorted_adoptions(cold), context
    assert dict(maintained._cap.truncated) == dict(cold._cap.truncated), (
        context
    )


def _assert_same_graph(incremental, cold, context=""):
    pairs = {(p.s1, p.s2) for p in cold}
    assert {(p.s1, p.s2) for p in incremental} == pairs, context
    for pair in cold:
        other = incremental.get(pair.s1, pair.s2)
        assert other.p_independent == pair.p_independent, (context, pair)
        assert other.p_s1_copies_s2 == pair.p_s1_copies_s2, (context, pair)
        assert other.p_s2_copies_s1 == pair.p_s2_copies_s1, (context, pair)


class TestStreamingTemporalEquivalence:
    @pytest.mark.parametrize("cap", [None, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_ingest_matches_cold_rebuild(self, cap, seed):
        rng = random.Random(seed)
        seen = {}
        stream = StreamingTemporalDataset(
            TemporalDataset(_random_temporal_claims(rng, seen)),
            max_providers_per_object=cap,
        )
        for round_no in range(3):
            delta = stream.ingest(
                _random_temporal_claims(rng, seen, n=15)
            )
            assert stream.synced_version == stream.dataset.version
            assert delta.version == stream.dataset.version
            cold = CoAdoptionCollector(
                stream.dataset, max_providers_per_object=cap
            )
            context = f"cap={cap} seed={seed} round={round_no}"
            _assert_collector_equal(stream.collector, cold, context)
            _assert_same_graph(
                stream.discover(),
                discover_temporal_dependence(
                    stream.dataset, collector=cold
                ),
                context,
            )

    def test_duplicate_only_batch_is_a_noop(self):
        rng = random.Random(7)
        seen = {}
        claims = _random_temporal_claims(rng, seen)
        stream = StreamingTemporalDataset(TemporalDataset(claims))
        version = stream.dataset.version
        delta = stream.ingest(claims[:10])
        assert not delta
        assert delta.duplicates == 10
        assert stream.dataset.version == version

    def test_mid_batch_rejection_repairs_landed_prefix(self):
        rng = random.Random(11)
        seen = {}
        stream = StreamingTemporalDataset(
            TemporalDataset(_random_temporal_claims(rng, seen))
        )
        good = _random_temporal_claims(rng, seen, n=5)
        used_key = next(iter(seen))
        conflicting = TemporalClaim(
            source=used_key[0],
            object=used_key[1],
            value=seen[used_key] + "-conflict",
            time=used_key[2],
        )
        with pytest.raises(DataError):
            stream.ingest(good + [conflicting])
        # The rejected claim never landed; the five before it did, and
        # the collector must reflect exactly that landed prefix.
        assert stream.synced_version == stream.dataset.version
        _assert_collector_equal(
            stream.collector, CoAdoptionCollector(stream.dataset)
        )

    def test_starts_empty(self):
        stream = StreamingTemporalDataset()
        assert len(stream) == 0
        stream.ingest(
            [TemporalClaim(source="A", object="o", value="x", time=1.0)]
        )
        assert len(stream) == 1


class TestTemporalDatasetVersioning:
    def test_version_advances_per_accepted_claim(self):
        dataset = TemporalDataset()
        claim = TemporalClaim(source="A", object="o", value="x", time=1.0)
        assert dataset.version == 0
        assert dataset.add(claim)
        assert dataset.version == 1
        assert not dataset.add(claim)  # exact duplicate
        assert dataset.version == 1

    def test_add_claims_delta(self):
        dataset = TemporalDataset()
        claims = [
            TemporalClaim(source="A", object="o1", value="x", time=1.0),
            TemporalClaim(source="A", object="o2", value="y", time=2.0),
            TemporalClaim(source="A", object="o1", value="x", time=1.0),
        ]
        delta = dataset.add_claims(claims)
        assert delta.added == 2
        assert delta.duplicates == 1
        assert delta.dirty_objects == {"o1", "o2"}
        assert delta.version == dataset.version == 2

    def test_claims_and_dirty_objects_since(self):
        dataset = TemporalDataset()
        first = TemporalClaim(source="A", object="o1", value="x", time=1.0)
        dataset.add(first)
        mark = dataset.version
        later = TemporalClaim(source="B", object="o2", value="y", time=2.0)
        dataset.add(later)
        assert dataset.new_claims_since(0) == [first, later]
        assert dataset.new_claims_since(mark) == [later]
        assert dataset.dirty_objects_since(mark) == {"o2"}
        assert dataset.new_claims_since(dataset.version) == []

    def test_negative_version_rejected(self):
        with pytest.raises(DataError):
            TemporalDataset().new_claims_since(-1)


class TestEvidenceDecay:
    @pytest.fixture(autouse=True)
    def _clean_decay_env(self, monkeypatch):
        # CI re-runs this file with REPRO_EVIDENCE_DECAY exported; the
        # assertions below are about the parameter itself, so they start
        # from a clean environment (the env-override tests set it back).
        monkeypatch.delenv("REPRO_EVIDENCE_DECAY", raising=False)

    @staticmethod
    def _dataset():
        rng = random.Random(5)
        return TemporalDataset(_random_temporal_claims(rng, {}, n=60))

    def test_default_decay_is_one(self):
        assert TemporalParams().evidence_decay == 1.0

    def test_decay_one_is_bitwise_identical(self):
        dataset = self._dataset()
        _assert_same_graph(
            discover_temporal_dependence(
                dataset, params=TemporalParams(evidence_decay=1.0)
            ),
            discover_temporal_dependence(dataset),
        )

    def test_decay_changes_posteriors(self):
        dataset = self._dataset()
        default = discover_temporal_dependence(dataset)
        decayed = discover_temporal_dependence(
            dataset, params=TemporalParams(evidence_decay=0.8)
        )
        assert any(
            decayed.get(p.s1, p.s2).p_independent != p.p_independent
            for p in default
        )

    @pytest.mark.parametrize("bad", [0.0, -0.2, 1.5])
    def test_decay_out_of_range_rejected(self, bad):
        with pytest.raises(ParameterError):
            TemporalParams(evidence_decay=bad)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVIDENCE_DECAY", "0.8")
        assert TemporalParams().evidence_decay == 0.8
        # An explicit value beats the environment.
        assert TemporalParams(evidence_decay=0.9).evidence_decay == 0.9

    def test_env_override_bad_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVIDENCE_DECAY", "fast")
        with pytest.raises(ParameterError):
            TemporalParams()

    def test_env_override_smoke_discovery(self, monkeypatch):
        # The CI smoke: discovery under a decayed environment still runs
        # end to end and matches an explicit-parameter run exactly.
        dataset = self._dataset()
        explicit = discover_temporal_dependence(
            dataset, params=TemporalParams(evidence_decay=0.9)
        )
        monkeypatch.setenv("REPRO_EVIDENCE_DECAY", "0.9")
        _assert_same_graph(
            discover_temporal_dependence(dataset), explicit
        )
