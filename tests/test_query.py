"""Tests for the catalog, queries, ordering policies and the online engine."""

import pytest

from repro.dependence.bayes import PairDependence
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError, QueryError
from repro.query import (
    BookCatalog,
    BooksByAuthorQuery,
    KeywordQuery,
    Listing,
    LookupQuery,
    OnlineQueryEngine,
    TopPublisherQuery,
    accuracy_order,
    coverage_order,
    marginal_gain_order,
    random_order,
)


def _listing(store, book, title="Effective Java", authors=("Joshua Bloch",),
             publisher="Harbor Press", year=2001, category="Programming"):
    return Listing(
        store=store, book=book, title=title, authors=authors,
        publisher=publisher, year=year, category=category,
    )


@pytest.fixture
def catalog():
    catalog = BookCatalog()
    catalog.add(_listing("s1", "b1"))
    catalog.add(_listing("s2", "b1", authors=("J. Bloch",)))
    catalog.add(_listing("s1", "b2", title="Foundations of Databases",
                         authors=("Serge Abiteboul",), category="Database",
                         publisher="Summit Books"))
    catalog.add(_listing("s3", "b2", title="Foundations of Databases",
                         authors=("Serge Abiteboul",), category="Database",
                         publisher="Summit Books"))
    catalog.add(_listing("s3", "b3", title="Advanced Java",
                         authors=("Jeffrey Ullman",), category="Programming"))
    return catalog


class TestCatalog:
    def test_duplicate_listing_rejected(self, catalog):
        with pytest.raises(DataError):
            catalog.add(_listing("s1", "b1", title="Different"))

    def test_identical_listing_is_noop(self, catalog):
        before = len(catalog)
        catalog.add(_listing("s1", "b1"))
        assert len(catalog) == before

    def test_field_claims_projection(self, catalog):
        claims = catalog.field_claims("authors")
        assert claims.value_of("s1", "b1") == ("Joshua Bloch",)
        assert claims.value_of("s2", "b1") == ("J. Bloch",)

    def test_field_claims_unknown_field(self, catalog):
        with pytest.raises(DataError):
            catalog.field_claims("price")

    def test_shared_books(self, catalog):
        assert catalog.shared_books("s1", "s2") == {"b1"}
        assert catalog.shared_books("s1", "s3") == {"b2"}

    def test_remove_store(self, catalog):
        catalog.remove_store("s2")
        assert "s2" not in catalog.stores
        assert catalog.shared_books("s1", "s2") == set()

    def test_statistics(self, catalog):
        stats = catalog.statistics()
        assert stats["stores"] == 3.0
        assert stats["books"] == 3.0
        assert stats["listings"] == 5.0

    def test_restrict_stores(self, catalog):
        sub = catalog.restrict_stores(["s1"])
        assert sub.stores == ["s1"]
        assert len(sub) == 2


class TestQueries:
    @pytest.fixture
    def records(self, catalog):
        return OnlineQueryEngine(catalog).final_records()

    def test_keyword_query(self, records):
        assert KeywordQuery("java").evaluate(records) == frozenset({"b1", "b3"})

    def test_lookup_query(self, records):
        assert LookupQuery("b2").evaluate(records) == ("Serge Abiteboul",)

    def test_lookup_missing_book(self, records):
        assert LookupQuery("b9").evaluate(records) is None

    def test_books_by_author_fuzzy(self, records):
        result = BooksByAuthorQuery("Joshua Bloch").evaluate(records)
        assert result == frozenset({"b1"})

    def test_top_publisher(self, records):
        assert TopPublisherQuery("Database").evaluate(records) == "Summit Books"

    def test_top_publisher_empty_category(self, records):
        assert TopPublisherQuery("Poetry").evaluate(records) is None

    def test_answer_f1_sets(self):
        from repro.query.queries import Query

        assert Query.answer_f1(frozenset({"a"}), frozenset({"a", "b"})) == pytest.approx(2 / 3)
        assert Query.answer_f1(frozenset(), frozenset()) == 1.0
        assert Query.answer_f1(frozenset({"x"}), frozenset()) == 0.0

    def test_answer_f1_scalars(self):
        from repro.query.queries import Query

        assert Query.answer_f1("a", "a") == 1.0
        assert Query.answer_f1("a", "b") == 0.0


class TestOrderingPolicies:
    def test_random_order_deterministic(self, catalog):
        assert random_order(catalog.stores, seed=1) == random_order(
            catalog.stores, seed=1
        )

    def test_coverage_order(self, catalog):
        order = coverage_order(catalog)
        assert order[0] in ("s1", "s3")  # both cover 2 books

    def test_accuracy_order(self, catalog):
        order = accuracy_order(catalog.stores, {"s1": 0.2, "s2": 0.9, "s3": 0.5})
        assert order == ["s2", "s3", "s1"]

    def test_marginal_gain_prefers_independent(self):
        # X and Y both carry {b1, b2}, Z only {b1}. X and Y are all-but
        # surely dependent, so after X the small-but-independent Z must
        # outrank Y (whose content is probably a copy of X's).
        catalog = BookCatalog()
        catalog.add(_listing("X", "b1"))
        catalog.add(_listing("X", "b2", title="Other"))
        catalog.add(_listing("Y", "b1"))
        catalog.add(_listing("Y", "b2", title="Other"))
        catalog.add(_listing("Z", "b1"))
        graph = DependenceGraph(
            [
                PairDependence(
                    s1="X", s2="Y",
                    p_independent=0.02,
                    p_s1_copies_s2=0.49, p_s2_copies_s1=0.49,
                )
            ]
        )
        accuracies = {"X": 0.8, "Y": 0.8, "Z": 0.8}
        order = marginal_gain_order(catalog, accuracies, graph)
        assert order[0] == "X"
        assert order[1] == "Z"

    def test_marginal_gain_max_sources(self, catalog):
        order = marginal_gain_order(catalog, {}, max_sources=2)
        assert len(order) == 2

    def test_marginal_gain_validates(self, catalog):
        with pytest.raises(QueryError):
            marginal_gain_order(catalog, {}, max_sources=0)


class TestOnlineEngine:
    def test_quality_reaches_one_at_the_end(self, catalog):
        engine = OnlineQueryEngine(catalog)
        run = engine.run(KeywordQuery("java"), order=catalog.stores)
        assert run.steps[-1].quality == 1.0

    def test_quality_series_length(self, catalog):
        engine = OnlineQueryEngine(catalog)
        run = engine.run(KeywordQuery("java"), order=catalog.stores)
        assert len(run.quality_series()) == len(catalog.stores)

    def test_probes_to_quality(self, catalog):
        engine = OnlineQueryEngine(catalog)
        run = engine.run(KeywordQuery("java"), order=["s1", "s2", "s3"])
        assert run.probes_to_quality(1.0) <= 3

    def test_probes_to_quality_validation(self, catalog):
        engine = OnlineQueryEngine(catalog)
        run = engine.run(KeywordQuery("java"), order=catalog.stores)
        with pytest.raises(QueryError):
            run.probes_to_quality(2.0)

    def test_reference_override(self, catalog):
        engine = OnlineQueryEngine(catalog)
        run = engine.run(
            KeywordQuery("java"),
            order=catalog.stores,
            reference=frozenset({"b1", "b3"}),
        )
        assert run.steps[-1].quality == 1.0

    def test_unknown_store_in_order(self, catalog):
        engine = OnlineQueryEngine(catalog)
        with pytest.raises(QueryError):
            engine.run(KeywordQuery("java"), order=["s1", "ghost"])

    def test_empty_order_rejected(self, catalog):
        engine = OnlineQueryEngine(catalog)
        with pytest.raises(QueryError):
            engine.run(KeywordQuery("java"), order=[])

    def test_max_probes(self, catalog):
        engine = OnlineQueryEngine(catalog)
        run = engine.run(KeywordQuery("java"), order=catalog.stores, max_probes=1)
        assert len(run.steps) == 1

    def test_empty_catalog_rejected(self):
        with pytest.raises(QueryError):
            OnlineQueryEngine(BookCatalog())

    def test_dependence_aware_fusion_changes_records(self):
        """A copier echoing a bad value must not outvote a good store."""
        catalog = BookCatalog()
        catalog.add(_listing("good", "b1", authors=("Joshua Bloch",)))
        catalog.add(_listing("bad", "b1", authors=("Wrong Person",)))
        catalog.add(_listing("copy", "b1", authors=("Wrong Person",)))
        accuracies = {"good": 0.9, "bad": 0.5, "copy": 0.5}
        naive = OnlineQueryEngine(catalog, accuracies).final_records()
        assert naive["b1"]["authors"] == ("Wrong Person",)

        graph = DependenceGraph(
            [
                PairDependence(
                    s1="bad", s2="copy",
                    p_independent=0.02,
                    p_s1_copies_s2=0.49, p_s2_copies_s1=0.49,
                )
            ]
        )
        aware = OnlineQueryEngine(
            catalog, accuracies, dependence=graph, copy_rate=0.9
        ).final_records()
        assert aware["b1"]["authors"] == ("Joshua Bloch",)
