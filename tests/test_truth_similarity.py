"""Tests for the ACCUSIM value-similarity vote adjustment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.linkage.strings import jaro_winkler_similarity
from repro.truth.similarity import SimilarityMatrix, similarity_adjusted_counts


def _binary_similarity(a, b):
    return 1.0 if a[0] == b[0] else 0.0  # same first letter = variants


class TestSimilarityAdjustedCounts:
    def test_variants_support_each_other(self):
        counts = {"alpha": 3.0, "alphb": 2.0, "zeta": 4.0}
        adjusted = similarity_adjusted_counts(counts, _binary_similarity, rho=1.0)
        assert adjusted["alpha"] == pytest.approx(5.0)
        assert adjusted["alphb"] == pytest.approx(5.0)
        assert adjusted["zeta"] == pytest.approx(4.0)

    def test_adjustment_can_flip_the_winner(self):
        counts = {"alpha": 3.0, "alphb": 2.0, "zeta": 4.0}
        plain_winner = max(counts, key=counts.get)
        adjusted = similarity_adjusted_counts(counts, _binary_similarity, rho=0.8)
        adjusted_winner = max(adjusted, key=adjusted.get)
        assert plain_winner == "zeta"
        assert adjusted_winner in ("alpha", "alphb")

    def test_rho_zero_is_identity(self):
        counts = {"a": 1.0, "b": 2.0}
        assert similarity_adjusted_counts(counts, _binary_similarity, rho=0.0) == counts

    def test_rho_validation(self):
        with pytest.raises(ParameterError):
            similarity_adjusted_counts({"a": 1.0}, _binary_similarity, rho=1.5)

    def test_bad_similarity_rejected(self):
        with pytest.raises(ParameterError):
            similarity_adjusted_counts(
                {"a": 1.0, "b": 1.0}, lambda x, y: 3.0, rho=0.5
            )

    @given(
        st.dictionaries(
            st.sampled_from(["aa", "ab", "ba", "bb"]),
            st.floats(min_value=0.0, max_value=10.0),
            min_size=2,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_adjustment_never_decreases_counts(self, counts, rho):
        adjusted = similarity_adjusted_counts(counts, _binary_similarity, rho)
        for value in counts:
            assert adjusted[value] >= counts[value] - 1e-12


class TestSimilarityMatrix:
    def test_memoises_and_is_symmetric(self):
        matrix = SimilarityMatrix(
            ["martha", "marhta", "zeta"], jaro_winkler_similarity
        )
        assert matrix("martha", "marhta") == matrix("marhta", "martha")
        assert matrix("martha", "martha") == 1.0

    def test_unknown_pairs_default_to_zero(self):
        matrix = SimilarityMatrix(["a", "b"], jaro_winkler_similarity)
        assert matrix("a", "zzz") == 0.0

    def test_rejects_bad_similarity(self):
        with pytest.raises(ParameterError):
            SimilarityMatrix(["a", "b"], lambda x, y: -1.0)

    def test_usable_with_adjustment(self):
        values = ["alpha", "alphb", "zeta"]
        matrix = SimilarityMatrix(values, jaro_winkler_similarity)
        counts = {v: 1.0 for v in values}
        adjusted = similarity_adjusted_counts(counts, matrix, rho=0.5)
        assert adjusted["alpha"] > counts["alpha"]
