"""Tests for source recommendation scoring."""

import pytest

from repro.dependence.bayes import PairDependence
from repro.dependence.graph import DependenceGraph
from repro.exceptions import ParameterError
from repro.recommend import (
    ScoreWeights,
    SourceScorecard,
    build_scorecards,
    rank_sources,
    recommend_sources,
)


def _graph(pairs):
    graph = DependenceGraph()
    for s1, s2, p in pairs:
        half = p / 2
        graph.add(
            PairDependence(
                s1=s1, s2=s2,
                p_independent=1 - p,
                p_s1_copies_s2=half, p_s2_copies_s1=half,
            )
        )
    return graph


@pytest.fixture
def cards():
    graph = _graph([("A", "B", 0.9)])
    return build_scorecards(
        accuracies={"A": 0.9, "B": 0.85, "C": 0.6},
        coverages={"A": 100, "B": 90, "C": 50},
        dependence=graph,
    ), graph


class TestScorecards:
    def test_coverage_normalised(self, cards):
        scorecards, _ = cards
        assert scorecards["A"].coverage == 1.0
        assert scorecards["C"].coverage == pytest.approx(0.5)

    def test_independence_from_graph(self, cards):
        scorecards, _ = cards
        assert scorecards["A"].independence == pytest.approx(0.1)
        assert scorecards["C"].independence == 1.0

    def test_scorecard_validation(self):
        with pytest.raises(ParameterError):
            SourceScorecard("A", accuracy=1.5, coverage=0, freshness=0, independence=0)

    def test_weights_validation(self):
        with pytest.raises(ParameterError):
            ScoreWeights(accuracy=-1)
        with pytest.raises(ParameterError):
            ScoreWeights(accuracy=0, coverage=0, freshness=0, independence=0)

    def test_weights_normalised(self):
        weights = ScoreWeights(accuracy=2, coverage=2, freshness=0, independence=0)
        normalised = weights.normalised()
        assert normalised.accuracy == pytest.approx(0.5)

    def test_score_in_unit_interval(self, cards):
        scorecards, _ = cards
        for card in scorecards.values():
            assert 0.0 <= card.score() <= 1.0

    def test_empty_accuracies_rejected(self):
        with pytest.raises(ParameterError):
            build_scorecards({}, {}, DependenceGraph())


class TestRankAndRecommend:
    def test_rank_is_total_and_deterministic(self, cards):
        scorecards, _ = cards
        ranked = rank_sources(scorecards)
        assert sorted(ranked) == ["A", "B", "C"]

    def test_recommend_penalises_dependent_second_pick(self, cards):
        scorecards, graph = cards
        picks = recommend_sources(scorecards, graph, k=2)
        # A and B are the strongest but mutually dependent: the second
        # pick must be C.
        assert picks[0] in ("A", "B")
        assert picks[1] == "C"

    def test_recommend_without_dependence_prefers_b(self, cards):
        scorecards, _ = cards
        picks = recommend_sources(scorecards, DependenceGraph(), k=2)
        assert set(picks) <= {"A", "B"}

    def test_recommend_k_validation(self, cards):
        scorecards, graph = cards
        with pytest.raises(ParameterError):
            recommend_sources(scorecards, graph, k=0)

    def test_recommend_goal_validation(self, cards):
        scorecards, graph = cards
        with pytest.raises(ParameterError):
            recommend_sources(scorecards, graph, k=1, goal="everything")

    def test_diversity_goal_tolerates_dissimilarity(self, table2_matrix):
        """With opinion dependence given, a dissimilarity-dependent rater
        is penalised under 'truth' but tolerated under 'diversity'."""
        from repro.dependence.opinions import discover_rater_dependence

        opinion = discover_rater_dependence(table2_matrix)
        scorecards = {
            rater: SourceScorecard(
                rater, accuracy=0.8, coverage=1.0, freshness=1.0, independence=1.0
            )
            for rater in table2_matrix.raters
        }
        graph = DependenceGraph()
        truth_picks = recommend_sources(
            scorecards, graph, k=2, goal="truth", opinion_dependence=opinion
        )
        diverse_picks = recommend_sources(
            scorecards, graph, k=2, goal="diversity", opinion_dependence=opinion
        )
        # R1 and R4 anti-depend: under "truth" they should not BOTH be in
        # the top-2; under "diversity" the pair is acceptable.
        assert not {"R1", "R4"} <= set(truth_picks)
        assert {"R1", "R4"} <= set(diverse_picks) or len(set(diverse_picks)) == 2
