"""Tests for lifespan inference and value status (Table 3 semantics)."""

import pytest

from repro.datasets.paper_tables import TABLE3_TIMELINES
from repro.exceptions import DataError
from repro.temporal.lifespan import (
    exactness_from_timelines,
    infer_timelines,
    interval_vote_timeline,
    value_status,
)


class TestIntervalVoting:
    def test_table3_timelines_match_ground_truth_values(self, table3):
        timelines, _ = infer_timelines(table3)
        for obj, true_periods in TABLE3_TIMELINES.items():
            inferred = timelines[obj]
            # Final (current) value must match the paper's truth.
            assert inferred[-1].value == true_periods[-1].value

    def test_suciu_round_trip_timeline(self, table3):
        timelines, _ = infer_timelines(table3)
        values = [p.value for p in timelines["Suciu"]]
        assert values == ["UW", "MSR", "UW"]

    def test_periods_are_contiguous(self, table3):
        timelines, _ = infer_timelines(table3)
        for periods in timelines.values():
            for earlier, later in zip(periods, periods[1:]):
                assert earlier.end == later.start
            assert periods[-1].end is None

    def test_unknown_object_raises(self, table3):
        with pytest.raises(DataError):
            interval_vote_timeline(table3, "Nobody")

    def test_recency_halflife_validation(self, table3):
        with pytest.raises(DataError):
            interval_vote_timeline(table3, "Suciu", recency_half_life=0.0)

    def test_no_recency_keeps_stale_majority(self, table3):
        """Without recency decay, Dong's final interval is won by the
        stale-but-majority UW/Google votes — the failure mode the decay
        exists to fix."""
        with_decay = interval_vote_timeline(table3, "Dong", recency_half_life=5.0)
        assert with_decay[-1].value == "AT&T"


class TestExactness:
    def test_all_table3_sources_exact(self, table3):
        """Every Table 3 assertion was true when made (out-of-date, not
        false) — the core of Example 3.2."""
        timelines, exactness = infer_timelines(table3)
        assert all(e == pytest.approx(1.0) for e in exactness.values())

    def test_false_assertion_lowers_exactness(self, table3):
        """A bogus assertion against a well-corroborated fresh value
        fails the overlap test and dents exactness. (With a single
        contradicting voter a fresh bogus value can still carve a
        spurious period — a documented limitation of interval voting at
        three sources.)"""
        from repro.core.claims import TemporalClaim

        table3.add(
            TemporalClaim(source="S3", object="Halevy", value="Bogus", time=2006)
        )
        timelines, exactness = infer_timelines(table3)
        assert exactness["S3"] < 1.0
        assert timelines["Halevy"][-1].value == "Google"

    def test_exactness_against_true_timelines(self, table3):
        exactness = exactness_from_timelines(table3, TABLE3_TIMELINES)
        assert exactness["S1"] == pytest.approx(1.0)


class TestValueStatus:
    def test_current(self):
        assert value_status(TABLE3_TIMELINES, "Suciu", "UW", at=2008) == "current"

    def test_outdated(self):
        assert value_status(TABLE3_TIMELINES, "Suciu", "MSR", at=2008) == "outdated"

    def test_false(self):
        assert value_status(TABLE3_TIMELINES, "Suciu", "Stanford", at=2008) == "false"

    def test_unknown_object(self):
        with pytest.raises(DataError):
            value_status(TABLE3_TIMELINES, "Nobody", "UW", at=2008)

    def test_future_value_is_false_now(self):
        # MSR became true only in 2006; at 2003 it is not yet "outdated".
        assert value_status(TABLE3_TIMELINES, "Suciu", "MSR", at=2003) == "false"
