"""Tests for source quality metrics and temporal truth discovery."""

import pytest

from repro.core.claims import ValuePeriod
from repro.datasets.paper_tables import TABLE3_TIMELINES
from repro.exceptions import DataError
from repro.temporal import (
    TemporalTruthDiscovery,
    assess_quality,
    capture_lag,
)
from repro.temporal.quality import capture_lag_signed


class TestCaptureLag:
    def test_instant_capture(self, table3):
        period = ValuePeriod("MSR", 2006, 2007)
        assert capture_lag(table3, "S2", "Suciu", period) == 0.0

    def test_lagged_capture(self, table3):
        period = ValuePeriod("UW", 2006, None)
        assert capture_lag(table3, "S3", "Balazinska", period) == 1.0

    def test_missed_period(self, table3):
        period = ValuePeriod("MSR", 2006, 2007)
        assert capture_lag(table3, "S3", "Suciu", period) is None

    def test_signed_lag_negative_for_early_adopter(self, table3):
        # S2 adopted UW for Halevy in 2001; the true period starts 2002.
        period = ValuePeriod("UW", 2002, 2006)
        assert capture_lag_signed(table3, "S2", "Halevy", period) == -1.0

    def test_signed_and_clamped_agree_for_positive(self, table3):
        period = ValuePeriod("UW", 2006, None)
        assert capture_lag_signed(table3, "S3", "Balazinska", period) == 1.0


class TestAssessQuality:
    def test_s1_dominates_coverage(self, table3):
        quality = assess_quality(table3, TABLE3_TIMELINES)
        assert quality["S1"].coverage > quality["S2"].coverage
        assert quality["S1"].coverage > quality["S3"].coverage

    def test_s3_laggiest(self, table3):
        quality = assess_quality(table3, TABLE3_TIMELINES)
        assert quality["S3"].mean_lag > quality["S1"].mean_lag

    def test_freshness_score_orders_sources(self, table3):
        quality = assess_quality(table3, TABLE3_TIMELINES)
        assert (
            quality["S1"].freshness_score() > quality["S3"].freshness_score()
        )

    def test_freshness_score_validates_half_life(self, table3):
        quality = assess_quality(table3, TABLE3_TIMELINES)
        with pytest.raises(DataError):
            quality["S1"].freshness_score(half_life=0.0)

    def test_empty_timelines_rejected(self, table3):
        with pytest.raises(DataError):
            assess_quality(table3, {})


class TestTemporalTruthDiscovery:
    def test_current_truth_matches_paper(self, table3):
        result = TemporalTruthDiscovery().discover(table3)
        assert result.current_truth == {
            "Suciu": "UW",
            "Halevy": "Google",
            "Balazinska": "UW",
            "Dalvi": "Yahoo!",
            "Dong": "AT&T",
        }

    def test_outdated_not_false(self, table3):
        """Example 3.2's refinement: S2 and S3 are out of date, not wrong."""
        result = TemporalTruthDiscovery().discover(table3)
        for source in ("S2", "S3"):
            counts = result.status_counts(source)
            assert counts["false"] == 0
            assert counts["outdated"] > 0

    def test_s1_fully_current(self, table3):
        result = TemporalTruthDiscovery().discover(table3)
        counts = result.status_counts("S1")
        assert counts["outdated"] == 0
        assert counts["false"] == 0

    def test_dependence_attached(self, table3):
        result = TemporalTruthDiscovery().discover(table3)
        assert result.dependence.probability("S1", "S3") > 0.5

    def test_unaware_mode_skips_dependence(self, table3):
        result = TemporalTruthDiscovery(aware=False).discover(table3)
        assert len(result.dependence) == 0

    def test_quality_attached(self, table3):
        result = TemporalTruthDiscovery().discover(table3)
        assert set(result.quality) == {"S1", "S2", "S3"}

    def test_rejects_empty_dataset(self):
        from repro.core.temporal_dataset import TemporalDataset

        with pytest.raises(DataError):
            TemporalTruthDiscovery().discover(TemporalDataset())
