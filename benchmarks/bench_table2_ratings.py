"""Experiment T2 — Table 2 / Example 2.2 (movie ratings, dissimilarity).

Reproduces the opinion-side result: the unique detected rater pair is
(R1, R4), classified as dissimilarity-dependence, and the
dependence-aware consensus moves the per-movie distributions toward the
unentangled raters' consensus.
"""

from __future__ import annotations

from repro.core.world import DependenceKind
from repro.datasets.paper_tables import RATING_SCALE, TABLE2
from repro.dependence.opinions import discover_rater_dependence
from repro.eval import distribution_l1, render_table
from repro.opinions import DependenceAwareConsensus, RatingMatrix


def test_table2_rater_dependence(benchmark):
    matrix = RatingMatrix.from_table(RATING_SCALE, TABLE2)
    result = benchmark(lambda: discover_rater_dependence(matrix))

    rows = []
    for pair in sorted(result, key=lambda p: (p.r1, p.r2)):
        rows.append(
            [
                f"{pair.r1}-{pair.r2}",
                pair.p_independent,
                pair.p_similarity,
                pair.p_dissimilarity,
                str(pair.dominant_kind() or "-"),
            ]
        )
    print()
    print("T2: rater-pair posteriors (paper: R4 opposes R1)")
    print(render_table(
        ["pair", "P(indep)", "P(similar)", "P(dissimilar)", "kind"], rows
    ))

    detected = result.detected_pairs(threshold=0.5)
    assert detected == {frozenset(("R1", "R4"))}
    assert result.get("R1", "R4").dominant_kind() is DependenceKind.DISSIMILARITY


def test_table2_consensus_correction(benchmark):
    matrix = RatingMatrix.from_table(RATING_SCALE, TABLE2)
    aware = benchmark(lambda: DependenceAwareConsensus().aggregate(matrix))
    naive = DependenceAwareConsensus(aware=False).aggregate(matrix)

    oracle = {
        item: matrix.consensus(item, exclude=("R1", "R4"))
        for item in matrix.items
    }
    naive_gap = distribution_l1(naive.distributions, oracle)
    aware_gap = distribution_l1(aware.distributions, oracle)

    rows = [
        ["naive (all raters equal)", naive_gap],
        ["dependence-aware", aware_gap],
    ]
    print()
    print("T2: L1 gap to unentangled-rater consensus (lower is better)")
    print(render_table(["aggregation", "L1 gap"], rows))

    assert aware_gap < naive_gap
