#!/usr/bin/env python3
"""CI perf-regression gate over the benchmark trajectory.

``bench_scalability.py`` writes its headline speedups to
``BENCH_scalability.json`` (see ``benchmarks/conftest.py``). This script
turns that artifact from a passive record into a gate: every headline
metric must stay above a conservative floor, or the job fails with a
readable delta table. The floors sit *below* the benches' own CI
assertion thresholds — the gate exists to catch a silently shipped
regression (a bench edited to stop asserting, a speedup decaying across
pushes), not to re-litigate runner noise.

Standalone stdlib script — no repro import, no third-party deps — so it
runs anywhere the JSON exists::

    python benchmarks/check_regression.py BENCH_scalability.json

Exit status 0 when every gate holds, 1 on any failure (regression,
missing metric, unreadable file). ``--allow-missing`` downgrades absent
sections to a warning for partial runs (a skipped bench still yields
valid JSON; see ``tests/test_bench_conftest.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Callable

#: Gate table: section -> list of (metric label, extractor, kind, floor).
#: ``kind`` is ``"min"`` (value must be >= floor) or ``"max"`` (<=).
#: Floors are deliberately conservative: shared CI runners routinely
#: halve a speedup measured on quiet hardware, and the benches' own
#: assertions (strict locally, looser on CI) remain the first line.
GATES: dict[str, list[tuple[str, Callable[[dict], float], str, float]]] = {
    "batch_vs_per_pair": [
        ("batch_vs_per_pair.speedup", lambda s: s["speedup"], "min", 1.8),
    ],
    "round_refresh": [
        ("round_refresh.speedup", lambda s: s["speedup"], "min", 1.3),
    ],
    "ingest_vs_rebuild": [
        (
            f"ingest_vs_rebuild.speedup[{fraction}]",
            lambda s, f=fraction: s["speedups_by_dirty_fraction"][f],
            "min",
            1.8,
        )
        for fraction in ("2%", "5%", "10%")
    ],
    "mutation_sync": [
        # The mutation-algebra acceptance floor: an inverse-delta sync
        # after a <=10% retract/correct batch must beat the cold
        # rebuild by 3x (the bench also asserts bit-for-bit equality).
        ("mutation_sync.speedup", lambda s: s["speedup"], "min", 3.0),
    ],
    "serial_vs_sharded": [
        (
            "serial_vs_sharded.speedups.numpy",
            lambda s: s["speedups"]["numpy"],
            "min",
            1.05,
        ),
    ],
    "streaming_rescore": [
        # Wall-clock is noisy at this scale; the stable invariant is the
        # fraction of pairs the restriction re-scores.
        (
            "streaming_rescore.rescored/pairs",
            lambda s: s["rescored"] / s["pairs"],
            "max",
            0.7,
        ),
    ],
    "sync_delta": [
        # A byte count, not wall-clock: the resident backend must keep
        # shipping row deltas, not re-serializing full shard state.
        # Same floor as the bench's own assertion — bytes don't flake.
        (
            "sync_delta.shipped_bytes_ratio",
            lambda s: s["shipped_bytes_ratio"],
            "min",
            5.0,
        ),
    ],
    "recovery": [
        # Supervised recovery from one SIGKILLed resident worker: the
        # respawn + state re-ship + batch retry must stay within 3x of
        # a clean sync of the same shape (the bench also asserts the
        # repaired cache equals a cold rebuild bit-for-bit).
        (
            "recovery.overhead_ratio",
            lambda s: s["overhead_ratio"],
            "max",
            3.0,
        ),
    ],
    "pair_posterior_batch": [
        # The batched posterior kernel vs the scalar pair_posterior
        # loop over the same refreshed evidence — the acceptance floor
        # of the fused-DEPEN-round optimisation.
        (
            "pair_posterior_batch.speedup",
            lambda s: s["speedup"],
            "min",
            3.0,
        ),
    ],
    "serving": [
        # The online serving layer (bench_serving.py): sustained read
        # throughput with the background ingest/refresh/publish loop
        # live. The bench asserts >= 1000 qps; the gate floor sits at
        # half that for noisy shared runners.
        ("serving.qps", lambda s: s["qps"], "min", 500.0),
        ("serving.p99_ms", lambda s: s["p99_ms"], "max", 100.0),
        # Consistency is not wall-clock: an answer inconsistent with
        # its stamped snapshot version is a correctness bug, floor 0.
        ("serving.torn_reads", lambda s: s["torn_reads"], "max", 0.0),
        (
            "serving.versions_published",
            lambda s: s["versions_published"],
            "min",
            2.0,
        ),
    ],
    "truth_round": [
        ("truth_round.speedup", lambda s: s["speedup"], "min", 2.5),
        # DEPEN's in-round restricted re-scoring must actually fire:
        # a settling run that reuses zero posteriors means the
        # moved-entry tracking silently broke.
        (
            "truth_round.depen_restricted_rescore.reused",
            lambda s: s["depen_restricted_rescore"]["reused"],
            "min",
            1.0,
        ),
    ],
}


def evaluate(
    results: dict, *, allow_missing: bool = False
) -> tuple[list[tuple[str, str, str, str, str]], list[str]]:
    """Check every gate; return (table rows, failure messages)."""
    rows: list[tuple[str, str, str, str, str]] = []
    failures: list[str] = []
    for section, gates in GATES.items():
        payload = results.get(section)
        if payload is None:
            message = f"section {section!r} missing from results"
            if allow_missing:
                rows.append((section, "-", "-", "-", "MISSING (allowed)"))
            else:
                rows.append((section, "-", "-", "-", "MISSING"))
                failures.append(message)
            continue
        for label, extract, kind, floor in gates:
            try:
                value = float(extract(payload))
            except (KeyError, TypeError, ZeroDivisionError) as exc:
                rows.append((label, "-", _bound(kind, floor), "-", "UNREADABLE"))
                failures.append(f"{label}: cannot extract value ({exc!r})")
                continue
            if kind == "min":
                ok = value >= floor
                margin = value - floor
            else:
                ok = value <= floor
                margin = floor - value
            rows.append(
                (
                    label,
                    f"{value:.3f}",
                    _bound(kind, floor),
                    f"{margin:+.3f}",
                    "ok" if ok else "REGRESSION",
                )
            )
            if not ok:
                failures.append(
                    f"{label}: {value:.3f} violates floor "
                    f"{_bound(kind, floor)} (margin {margin:+.3f})"
                )
    return rows, failures


def _bound(kind: str, floor: float) -> str:
    return f">= {floor:g}" if kind == "min" else f"<= {floor:g}"


def render(rows: list[tuple[str, str, str, str, str]]) -> str:
    """The delta table, plain text, aligned."""
    header = ("metric", "value", "floor", "margin", "status")
    table = [header, *rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for i, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trajectory",
        nargs="?",
        default="BENCH_scalability.json",
        help="path to the benchmark trajectory JSON",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="absent sections warn instead of failing (partial bench runs)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trajectory) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf gate: cannot read {args.trajectory}: {exc}")
        return 1

    results = payload.get("results")
    if not isinstance(results, dict):
        print(f"perf gate: {args.trajectory} has no 'results' mapping")
        return 1

    rows, failures = evaluate(results, allow_missing=args.allow_missing)
    env = payload.get("env", {})
    print(
        f"perf gate over {args.trajectory} "
        f"(python {env.get('python', '?')}, ci={env.get('ci', '?')}, "
        f"cpus={env.get('cpu_count', '?')})"
    )
    print(render(rows))
    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("\nall perf gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
