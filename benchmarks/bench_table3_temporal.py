"""Experiment T3 — Table 3 / Example 3.2 (temporal affiliations).

Reproduces the temporal narrative: with update histories, S2 and S3 are
recognised as providing *out-of-date* (not false) values; S3 is flagged
as a lazy copier of S1 while the slow-but-independent S2 is not; and the
inferred current truth matches the paper's up-to-date values.
"""

from __future__ import annotations

from repro.datasets.paper_tables import table3_dataset
from repro.eval import render_table
from repro.temporal import TemporalTruthDiscovery


def test_table3_temporal_pipeline(benchmark):
    dataset = table3_dataset()
    result = benchmark(lambda: TemporalTruthDiscovery().discover(dataset))

    assert result.current_truth == {
        "Suciu": "UW",
        "Halevy": "Google",
        "Balazinska": "UW",
        "Dalvi": "Yahoo!",
        "Dong": "AT&T",
    }

    rows = []
    for source in ("S1", "S2", "S3"):
        counts = result.status_counts(source)
        quality = result.quality[source]
        rows.append(
            [
                source,
                counts["current"],
                counts["outdated"],
                counts["false"],
                quality.coverage,
                quality.exactness,
                -1.0 if quality.mean_lag is None else quality.mean_lag,
            ]
        )
    print()
    print("T3: value status & quality (paper: S2/S3 out-of-date, not false)")
    print(render_table(
        ["source", "current", "outdated", "false", "coverage", "exactness", "mean lag"],
        rows,
    ))

    # Example 3.2's conclusions.
    assert result.status_counts("S2")["false"] == 0
    assert result.status_counts("S3")["false"] == 0
    assert result.status_counts("S2")["outdated"] > 0
    assert result.status_counts("S3")["outdated"] > 0

    dep_rows = []
    for a, b in (("S1", "S2"), ("S1", "S3"), ("S2", "S3")):
        pair = result.dependence.get(a, b)
        dep_rows.append(
            [f"{a}-{b}", pair.p_dependent, str(pair.likely_copier() or "-")]
        )
    print()
    print("T3: temporal dependence (paper: S3 lazy copier of S1, S2 independent)")
    print(render_table(["pair", "P(dependent)", "copier"], dep_rows))

    graph = result.dependence
    assert graph.probability("S1", "S3") > 0.5
    assert graph.get("S1", "S3").likely_copier() == "S3"
    assert graph.probability("S1", "S2") < 0.2
