"""Experiment A1 — the "accurate sources" challenge (section 3.1).

"Accurate sources that independently provide true values would be
determined as having a high similarity, which might lead to the
erroneous conclusion that they are dependent."

We sweep source accuracy and measure, across seeds, the rate at which
honest source pairs are wrongly flagged versus the rate at which a
genuine copier pair is found. Expected shape: honest agreement rises
with accuracy, yet the honest flag rate stays near the model's residual
(two accurate sources colliding on the same false value is rare but
damning by design — the multiple-choice-quiz logic), while the copier
pair is flagged essentially always.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.params import DependenceParams
from repro.eval import render_table
from repro.generators import CopierSpec, SnapshotConfig, generate_snapshot_world
from repro.truth import Depen

SEEDS = (31, 32, 33, 34, 35)
N_HONEST = 4


def _world(accuracy: float, seed: int):
    honest = {f"honest{i}": accuracy for i in range(N_HONEST)}
    honest["original"] = 0.7
    config = SnapshotConfig(
        n_objects=150,
        n_false_values=20,
        independent_accuracies=honest,
        copiers=[CopierSpec(copier="copier", original="original", copy_rate=0.8)],
    )
    return generate_snapshot_world(config, seed=seed)


def test_accurate_sources_not_confused_with_copiers(benchmark):
    benchmark.pedantic(
        lambda: Depen().discover(_world(0.9, 31)[0]), rounds=1, iterations=1
    )

    honest_pairs = list(combinations(range(N_HONEST), 2))
    rows = []
    # The sweep stays inside the realistic web-source accuracy band (the
    # paper's bookstore accuracies average ~0.6 and top out at 0.92):
    # beyond ~0.85, several *exactly equally* accurate sources make the
    # pairwise model unreliable — a documented limitation (EXPERIMENTS.md).
    for accuracy in (0.6, 0.7, 0.75, 0.8):
        flagged = 0
        copier_found = 0
        agreements = []
        for seed in SEEDS:
            dataset, _ = _world(accuracy, seed)
            result = Depen(
                params=DependenceParams(n_false_values=20)
            ).discover(dataset)
            graph = result.dependence
            for i, j in honest_pairs:
                if graph.probability(f"honest{i}", f"honest{j}") >= 0.5:
                    flagged += 1
            if graph.probability("original", "copier") >= 0.5:
                copier_found += 1
            same, different = dataset.agreement_counts("honest0", "honest1")
            agreements.append(same / (same + different))
        total_honest = len(honest_pairs) * len(SEEDS)
        rows.append(
            [
                accuracy,
                sum(agreements) / len(agreements),
                flagged / total_honest,
                copier_found / len(SEEDS),
            ]
        )
    print()
    print(f"A1: honest pairs vs copier pair, {len(SEEDS)} seeds")
    print(render_table(
        ["accuracy", "honest agreement", "honest flag rate", "copier found rate"],
        rows,
    ))

    for row in rows:
        assert row[2] <= 0.15, f"too many honest pairs flagged at accuracy {row[0]}"
        assert row[3] >= 0.8, f"copier missed too often at accuracy {row[0]}"
    # Agreement rises with accuracy; the flag rate must not follow it.
    assert rows[-1][1] > rows[0][1]
