"""Experiment S1 — scalability of dependence discovery.

Section 1 motivates the work with "given the huge number of data sources
and the vast volume of conflicting data … doing so in a scalable manner
is extremely challenging". We measure DEPEN runtime as the number of
sources and objects grows; expected shape: roughly quadratic in the
number of overlapping sources (pairwise analysis dominates), roughly
linear in objects.
"""

from __future__ import annotations

import time

from repro.eval import render_table
from repro.generators import simple_copier_world
from repro.truth import Depen
from repro.core.params import IterationParams


def _run(n_sources: int, n_objects: int) -> float:
    dataset, _ = simple_copier_world(
        n_objects=n_objects,
        n_independent=n_sources - 2,
        n_copiers=2,
        accuracy=0.8,
        seed=5,
    )
    algo = Depen(iteration=IterationParams(max_rounds=3))
    started = time.perf_counter()
    algo.discover(dataset)
    return time.perf_counter() - started


def test_scaling_in_sources(benchmark):
    benchmark.pedantic(lambda: _run(12, 150), rounds=1, iterations=1)
    rows = []
    timings = {}
    for n_sources in (6, 12, 24):
        seconds = _run(n_sources, 150)
        timings[n_sources] = seconds
        rows.append([n_sources, 150, seconds])
    print()
    print("S1: DEPEN runtime vs #sources (pairwise analysis dominates)")
    print(render_table(["sources", "objects", "seconds"], rows))

    # Quadratic-ish growth in sources: 4x sources should cost clearly
    # more than 2x, but stay sane.
    assert timings[24] > timings[6]
    assert timings[24] < 600


def test_scaling_in_objects(benchmark):
    benchmark.pedantic(lambda: _run(10, 200), rounds=1, iterations=1)
    rows = []
    timings = {}
    for n_objects in (100, 200, 400):
        seconds = _run(10, n_objects)
        timings[n_objects] = seconds
        rows.append([10, n_objects, seconds])
    print()
    print("S1: DEPEN runtime vs #objects (roughly linear)")
    print(render_table(["sources", "objects", "seconds"], rows))

    assert timings[400] > timings[100] * 1.2
    assert timings[400] < timings[100] * 30
