"""Experiment S1 — scalability of dependence discovery.

Section 1 motivates the work with "given the huge number of data sources
and the vast volume of conflicting data … doing so in a scalable manner
is extremely challenging". We measure DEPEN runtime as the number of
sources and objects grows; expected shape: roughly quadratic in the
number of overlapping sources (pairwise analysis dominates), roughly
linear in objects.

This module also carries the before/after benchmark for the batch
evidence engine: the per-pair reference path (``batch=False``) versus
:class:`~repro.dependence.evidence.EvidenceCache` reused across rounds,
plus a round-scaling case showing the structural pass amortising, and
the ingest-vs-rebuild curve for incremental (dirty-object) maintenance.
"""

from __future__ import annotations

import os
import time

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import discover_dependence
from repro.eval import render_table
from repro.generators import simple_copier_world
from repro.truth import Depen

# Shared CI runners have noisy neighbours and shifting CPU frequency;
# wall-clock ratios measured there gate with looser thresholds so the
# numerical-equivalence assertions (which never flake) stay the real
# gate. Local runs keep the strict acceptance thresholds.
_ON_CI = bool(os.environ.get("CI"))


def _run(n_sources: int, n_objects: int) -> float:
    dataset, _ = simple_copier_world(
        n_objects=n_objects,
        n_independent=n_sources - 2,
        n_copiers=2,
        accuracy=0.8,
        seed=5,
    )
    algo = Depen(iteration=IterationParams(max_rounds=3))
    started = time.perf_counter()
    algo.discover(dataset)
    return time.perf_counter() - started


def test_scaling_in_sources(benchmark):
    benchmark.pedantic(lambda: _run(12, 150), rounds=1, iterations=1)
    rows = []
    timings = {}
    for n_sources in (6, 12, 24):
        seconds = _run(n_sources, 150)
        timings[n_sources] = seconds
        rows.append([n_sources, 150, seconds])
    print()
    print("S1: DEPEN runtime vs #sources (pairwise analysis dominates)")
    print(render_table(["sources", "objects", "seconds"], rows))

    # Quadratic-ish growth in sources: 4x sources should cost clearly
    # more than 2x, but stay sane.
    assert timings[24] > timings[6]
    assert timings[24] < 600


def test_scaling_in_objects(benchmark):
    benchmark.pedantic(lambda: _run(10, 200), rounds=1, iterations=1)
    rows = []
    timings = {}
    for n_objects in (100, 200, 400):
        seconds = _run(10, n_objects)
        timings[n_objects] = seconds
        rows.append([10, n_objects, seconds])
    print()
    print("S1: DEPEN runtime vs #objects (roughly linear)")
    print(render_table(["sources", "objects", "seconds"], rows))

    assert timings[400] > timings[100] * 1.2
    assert timings[400] < timings[100] * 30


def _pair_sweep_inputs(n_sources: int, n_objects: int, seed: int = 11):
    dataset, _ = simple_copier_world(
        n_objects=n_objects,
        n_independent=n_sources - 4,
        n_copiers=4,
        accuracy=0.8,
        seed=seed,
    )
    value_probs = uniform_value_probabilities(dataset)
    accuracies = {s: 0.8 for s in dataset.sources}
    return dataset, value_probs, accuracies


def test_pair_sweep_batch_vs_per_pair(benchmark):
    """Before/after: per-pair evidence collection vs the batch engine.

    The 50-source workload of the acceptance criterion: ~1225 candidate
    pairs over 300 objects, three dependence rounds (evidence refreshed
    per round, structural cache built once). The batch engine must be at
    least 5x faster than the per-pair reference path.
    """
    dataset, value_probs, accuracies = _pair_sweep_inputs(50, 300)
    params = DependenceParams()
    rounds = 3
    candidate_pairs = sorted(dataset.co_coverage_counts(1))
    benchmark.pedantic(
        lambda: discover_dependence(
            dataset, value_probs, accuracies, params,
            candidate_pairs=candidate_pairs,
        ),
        rounds=1,
        iterations=1,
    )

    def time_per_pair() -> float:
        nonlocal legacy
        started = time.perf_counter()
        for _ in range(rounds):
            legacy = discover_dependence(
                dataset,
                value_probs,
                accuracies,
                params,
                candidate_pairs=candidate_pairs,
                batch=False,
            )
        return time.perf_counter() - started

    def time_batch() -> float:
        nonlocal batched
        started = time.perf_counter()
        cache = EvidenceCache(dataset, candidate_pairs, params=params)
        for _ in range(rounds):
            batched = discover_dependence(
                dataset, value_probs, accuracies, params, evidence_cache=cache
            )
        return time.perf_counter() - started

    # Best-of-2, interleaved, so a CPU-frequency shift or a noisy
    # neighbour during one window doesn't decide the comparison.
    legacy = batched = None
    p1, b1 = time_per_pair(), time_batch()
    p2, b2 = time_per_pair(), time_batch()
    per_pair_seconds = min(p1, p2)
    batch_seconds = min(b1, b2)

    # Same posteriors from both paths (the engine is a pure optimisation).
    assert len(batched) == len(legacy)
    worst = max(
        abs(batched.get(p.s1, p.s2).p_dependent - p.p_dependent)
        for p in legacy
    )
    assert worst < 1e-9

    speedup = per_pair_seconds / batch_seconds
    print()
    print("S1: dependence pair sweep, per-pair path vs batch engine")
    print(
        render_table(
            ["path", "pairs", "rounds", "seconds"],
            [
                ["per-pair", len(candidate_pairs), rounds, per_pair_seconds],
                ["batch", len(candidate_pairs), rounds, batch_seconds],
                ["speedup", "", "", speedup],
            ],
        )
    )
    assert speedup >= (2.0 if _ON_CI else 5.0)


def test_pair_sweep_round_scaling(benchmark):
    """Round-to-round caching: extra rounds only pay the soft refresh.

    With the structural pass amortised, 8 rounds must cost well under
    8x one round (the first round carries the cache build).
    """
    dataset, value_probs, accuracies = _pair_sweep_inputs(30, 300)
    params = DependenceParams()
    benchmark.pedantic(
        lambda: EvidenceCache(dataset, params=params), rounds=1, iterations=1
    )

    def run(rounds: int) -> float:
        started = time.perf_counter()
        cache = EvidenceCache(dataset, params=params)
        for _ in range(rounds):
            discover_dependence(
                dataset, value_probs, accuracies, params, evidence_cache=cache
            )
        return time.perf_counter() - started

    rows = []
    timings = {}
    for rounds in (1, 2, 4, 8):
        timings[rounds] = run(rounds)
        rows.append([rounds, timings[rounds]])
    print()
    print("S1: dependence-step time vs rounds (structural pass amortises)")
    print(render_table(["rounds", "seconds"], rows))

    # Amortisation: the marginal cost of an extra round (soft refresh +
    # posteriors) stays below a full from-scratch dependence step.
    marginal = (timings[8] - timings[1]) / 7
    assert timings[8] < timings[1] * 8
    assert marginal < timings[1] * (2.0 if _ON_CI else 1.0)


def test_ingest_vs_rebuild_scaling(benchmark):
    """Incremental maintenance scales with the dirty set, not the dataset.

    The 50-source workload again: a slice of objects receives late
    claims. The incremental path (batch ingest + dirty-object sync +
    evidence refresh) is compared with a cold rebuild of the evidence
    cache on the final dataset followed by the same refresh. Acceptance:
    >=5x faster when <10% of the objects are dirty — and the two paths'
    evidence must be bit-for-bit identical.
    """
    dataset_full, _ = simple_copier_world(
        n_objects=300, n_independent=46, n_copiers=4, accuracy=0.8, seed=11
    )
    claims = list(dataset_full)
    objects = sorted({c.object for c in claims})
    late_sources = set(sorted({c.source for c in claims})[:5])
    params = DependenceParams()

    def split(fraction):
        dirty = set(objects[: int(len(objects) * fraction)])
        holdout = [
            c for c in claims if c.object in dirty and c.source in late_sources
        ]
        base = [
            c
            for c in claims
            if not (c.object in dirty and c.source in late_sources)
        ]
        return base, holdout

    def measure(fraction):
        base, holdout = split(fraction)
        dataset = ClaimDataset(base)
        cache = EvidenceCache(dataset, params=params)
        cache.collect_all(uniform_value_probabilities(dataset))  # warm state

        started = time.perf_counter()
        dataset.add_claims(holdout)
        cache.sync()
        probs = uniform_value_probabilities(dataset)
        incremental = cache.collect_all(probs)
        incremental_seconds = time.perf_counter() - started

        started = time.perf_counter()
        cold_cache = EvidenceCache(dataset, params=params)
        cold = cold_cache.collect_all(probs)
        rebuild_seconds = time.perf_counter() - started

        assert incremental == cold  # bit-for-bit, PairEvidence equality
        return len(holdout), incremental_seconds, rebuild_seconds

    benchmark.pedantic(lambda: measure(0.05), rounds=1, iterations=1)
    rows = []
    speedups = {}
    for fraction in (0.02, 0.05, 0.10):
        # Best-of-2 per path so one noisy window doesn't decide it.
        n1, i1, r1 = measure(fraction)
        _, i2, r2 = measure(fraction)
        incremental_seconds = min(i1, i2)
        rebuild_seconds = min(r1, r2)
        speedups[fraction] = rebuild_seconds / incremental_seconds
        rows.append(
            [
                f"{fraction:.0%}",
                n1,
                incremental_seconds,
                rebuild_seconds,
                speedups[fraction],
            ]
        )
    print()
    print("S1: incremental ingest vs cold rebuild (50 sources, 300 objects)")
    print(
        render_table(
            ["dirty", "claims", "incremental s", "rebuild s", "speedup"],
            rows,
        )
    )
    floor = 2.0 if _ON_CI else 5.0
    for fraction, speedup in speedups.items():
        assert speedup >= floor, (fraction, speedup)
