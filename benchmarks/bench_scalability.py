"""Experiment S1 — scalability of dependence discovery.

Section 1 motivates the work with "given the huge number of data sources
and the vast volume of conflicting data … doing so in a scalable manner
is extremely challenging". We measure DEPEN runtime as the number of
sources and objects grows; expected shape: roughly quadratic in the
number of overlapping sources (pairwise analysis dominates), roughly
linear in objects.

This module also carries the before/after benchmark for the batch
evidence engine: the per-pair reference path (``batch=False``) versus
:class:`~repro.dependence.evidence.EvidenceCache` reused across rounds,
plus a round-scaling case showing the structural pass amortising, the
ingest-vs-rebuild curve for incremental (dirty-object) maintenance, the
serial-vs-sharded structural sweep
(:mod:`repro.dependence.sharding`), the restricted posterior
re-scoring of the streaming engine, and the columnar-vs-dict truth
rounds (:mod:`repro.truth.columnar`) with DEPEN's in-round restricted
re-scoring.

Headline speedups are recorded through the ``bench_record`` fixture and
land in ``BENCH_scalability.json`` (see ``conftest.py``), which CI
uploads as a workflow artifact — the persistent perf trajectory.
"""

from __future__ import annotations

import os
import time

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset, MutationBatch
from repro.core.params import DependenceParams, IterationParams
from repro.dependence.bayes import pair_posterior, uniform_value_probabilities
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import discover_dependence
from repro.dependence.streaming import StreamingDependenceEngine
from repro.eval import render_table
from repro.generators import simple_copier_world
from repro.truth import Depen

# Shared CI runners have noisy neighbours and shifting CPU frequency;
# wall-clock ratios measured there gate with looser thresholds so the
# numerical-equivalence assertions (which never flake) stay the real
# gate. Local runs keep the strict acceptance thresholds.
_ON_CI = bool(os.environ.get("CI"))


def _run(n_sources: int, n_objects: int) -> float:
    dataset, _ = simple_copier_world(
        n_objects=n_objects,
        n_independent=n_sources - 2,
        n_copiers=2,
        accuracy=0.8,
        seed=5,
    )
    algo = Depen(iteration=IterationParams(max_rounds=3))
    started = time.perf_counter()
    algo.discover(dataset)
    return time.perf_counter() - started


def test_scaling_in_sources(benchmark):
    benchmark.pedantic(lambda: _run(12, 150), rounds=1, iterations=1)
    rows = []
    timings = {}
    for n_sources in (6, 12, 24):
        seconds = _run(n_sources, 150)
        timings[n_sources] = seconds
        rows.append([n_sources, 150, seconds])
    print()
    print("S1: DEPEN runtime vs #sources (pairwise analysis dominates)")
    print(render_table(["sources", "objects", "seconds"], rows))

    # Quadratic-ish growth in sources: 4x sources should cost clearly
    # more than 2x, but stay sane.
    assert timings[24] > timings[6]
    assert timings[24] < 600


def test_scaling_in_objects(benchmark):
    benchmark.pedantic(lambda: _run(10, 200), rounds=1, iterations=1)
    rows = []
    timings = {}
    for n_objects in (100, 200, 400):
        seconds = _run(10, n_objects)
        timings[n_objects] = seconds
        rows.append([10, n_objects, seconds])
    print()
    print("S1: DEPEN runtime vs #objects (roughly linear)")
    print(render_table(["sources", "objects", "seconds"], rows))

    assert timings[400] > timings[100] * 1.2
    assert timings[400] < timings[100] * 30


def _pair_sweep_inputs(n_sources: int, n_objects: int, seed: int = 11):
    dataset, _ = simple_copier_world(
        n_objects=n_objects,
        n_independent=n_sources - 4,
        n_copiers=4,
        accuracy=0.8,
        seed=seed,
    )
    value_probs = uniform_value_probabilities(dataset)
    accuracies = {s: 0.8 for s in dataset.sources}
    return dataset, value_probs, accuracies


def test_pair_sweep_batch_vs_per_pair(benchmark, bench_record):
    """Before/after: per-pair evidence collection vs the batch engine.

    The 50-source workload of the acceptance criterion: ~1225 candidate
    pairs over 300 objects, three dependence rounds (evidence refreshed
    per round, structural cache built once). The batch engine must be at
    least 5x faster than the per-pair reference path.
    """
    dataset, value_probs, accuracies = _pair_sweep_inputs(50, 300)
    params = DependenceParams()
    rounds = 3
    candidate_pairs = sorted(dataset.co_coverage_counts(1))
    benchmark.pedantic(
        lambda: discover_dependence(
            dataset, value_probs, accuracies, params,
            candidate_pairs=candidate_pairs,
        ),
        rounds=1,
        iterations=1,
    )

    def time_per_pair() -> float:
        nonlocal legacy
        started = time.perf_counter()
        for _ in range(rounds):
            legacy = discover_dependence(
                dataset,
                value_probs,
                accuracies,
                params,
                candidate_pairs=candidate_pairs,
                batch=False,
            )
        return time.perf_counter() - started

    def time_batch() -> float:
        nonlocal batched
        started = time.perf_counter()
        cache = EvidenceCache(dataset, candidate_pairs, params=params)
        for _ in range(rounds):
            batched = discover_dependence(
                dataset, value_probs, accuracies, params, evidence_cache=cache
            )
        return time.perf_counter() - started

    # Best-of-2, interleaved, so a CPU-frequency shift or a noisy
    # neighbour during one window doesn't decide the comparison.
    legacy = batched = None
    p1, b1 = time_per_pair(), time_batch()
    p2, b2 = time_per_pair(), time_batch()
    per_pair_seconds = min(p1, p2)
    batch_seconds = min(b1, b2)

    # Same posteriors from both paths (the engine is a pure optimisation).
    assert len(batched) == len(legacy)
    worst = max(
        abs(batched.get(p.s1, p.s2).p_dependent - p.p_dependent)
        for p in legacy
    )
    assert worst < 1e-9

    speedup = per_pair_seconds / batch_seconds
    print()
    print("S1: dependence pair sweep, per-pair path vs batch engine")
    print(
        render_table(
            ["path", "pairs", "rounds", "seconds"],
            [
                ["per-pair", len(candidate_pairs), rounds, per_pair_seconds],
                ["batch", len(candidate_pairs), rounds, batch_seconds],
                ["speedup", "", "", speedup],
            ],
        )
    )
    bench_record(
        "batch_vs_per_pair",
        {
            "workload": "50 sources x 300 objects, 3 rounds",
            "pairs": len(candidate_pairs),
            "per_pair_seconds": per_pair_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= (2.0 if _ON_CI else 5.0)


def test_pair_posterior_batch_vs_scalar(benchmark, bench_record):
    """The posterior step alone: batched kernel vs the scalar loop.

    The 50-source workload (~1225 pairs) with the evidence already
    refreshed — this isolates exactly the cost the batched engine
    removes from a DEPEN round. The scalar path calls
    ``pair_posterior`` once per pair over the collected evidence; the
    batched engine computes every posterior in one array pass over the
    columnar layout. The posteriors must be bit-for-bit identical; the
    acceptance floor is 3x.
    """
    dataset, value_probs, accuracies = _pair_sweep_inputs(50, 300)
    params = DependenceParams()
    cache = EvidenceCache(dataset, params=params)
    evidence = cache.collect_all(value_probs)
    engine = cache.posterior_engine(params)
    rounds = 5
    benchmark.pedantic(
        lambda: engine.posterior_pairs(accuracies), rounds=1, iterations=1
    )

    def time_scalar() -> float:
        nonlocal scalar_pairs
        started = time.perf_counter()
        for _ in range(rounds):
            scalar_pairs = [
                pair_posterior(ev, accuracies[s1], accuracies[s2], params)
                for (s1, s2), ev in evidence.items()
            ]
        return time.perf_counter() - started

    def time_batch() -> float:
        # posterior_arrays is what the fused DEPEN loop consumes (the
        # posteriors go straight into the dependence matrix); the
        # PairDependence wrapper below is only for the equality check.
        started = time.perf_counter()
        for _ in range(rounds):
            engine.posterior_arrays(accuracies)
        return time.perf_counter() - started

    # Best-of-2, interleaved, so a CPU-frequency shift or a noisy
    # neighbour during one window doesn't decide the comparison.
    scalar_pairs = None
    s1, b1 = time_scalar(), time_batch()
    s2, b2 = time_scalar(), time_batch()
    scalar_seconds = min(s1, s2) / rounds
    batch_seconds = min(b1, b2) / rounds

    # The kernel is a pure optimisation: identical posteriors, bitwise.
    batch_pairs = engine.posterior_pairs(accuracies)
    assert len(batch_pairs) == len(scalar_pairs)
    for got, want in zip(batch_pairs, scalar_pairs):
        assert (got.s1, got.s2) == (want.s1, want.s2)
        assert got.p_independent == want.p_independent
        assert got.p_s1_copies_s2 == want.p_s1_copies_s2
        assert got.p_s2_copies_s1 == want.p_s2_copies_s1

    speedup = scalar_seconds / batch_seconds
    print()
    print("S1: posterior step, scalar pair_posterior loop vs batched kernel")
    print(
        render_table(
            ["path", "pairs", "seconds/round"],
            [
                ["scalar", len(batch_pairs), scalar_seconds],
                ["batch", len(batch_pairs), batch_seconds],
                ["speedup", "", speedup],
            ],
        )
    )
    bench_record(
        "pair_posterior_batch",
        {
            "workload": "50 sources x 300 objects, posterior step only",
            "pairs": len(batch_pairs),
            "scalar_seconds_per_round": scalar_seconds,
            "batch_seconds_per_round": batch_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= (3.0 if _ON_CI else 4.0)


def test_pair_sweep_round_scaling(benchmark):
    """Round-to-round caching: extra rounds only pay the soft refresh.

    With the structural pass amortised, 8 rounds must cost well under
    8x one round (the first round carries the cache build).
    """
    dataset, value_probs, accuracies = _pair_sweep_inputs(30, 300)
    params = DependenceParams()
    benchmark.pedantic(
        lambda: EvidenceCache(dataset, params=params), rounds=1, iterations=1
    )

    def run(rounds: int) -> float:
        started = time.perf_counter()
        cache = EvidenceCache(dataset, params=params)
        for _ in range(rounds):
            discover_dependence(
                dataset, value_probs, accuracies, params, evidence_cache=cache
            )
        return time.perf_counter() - started

    rows = []
    timings = {}
    for rounds in (1, 2, 4, 8):
        timings[rounds] = run(rounds)
        rows.append([rounds, timings[rounds]])
    print()
    print("S1: dependence-step time vs rounds (structural pass amortises)")
    print(render_table(["rounds", "seconds"], rows))

    # Amortisation: the marginal cost of an extra round (soft refresh +
    # posteriors) stays below a full from-scratch dependence step.
    marginal = (timings[8] - timings[1]) / 7
    assert timings[8] < timings[1] * 8
    assert marginal < timings[1] * (2.0 if _ON_CI else 1.0)


def test_round_refresh_columnar_vs_list(benchmark, bench_record):
    """The per-round evidence path: columnar entry store vs list reference.

    The 50-source workload (~1225 pairs, ~235k agreement references):
    after the structural pass is amortised, every DEPEN round still pays
    ``refresh(value_probs)`` plus evidence assembly for all pairs. Under
    ``entry_store="list"`` that is a Python sweep over per-pair entry
    lists; under ``"columnar"`` it is a gather plus two sequential
    ``bincount`` segment sums reading straight off the arrays. The
    acceptance floor is 2x, and the two stores must produce bit-for-bit
    identical evidence.
    """
    dataset, value_probs, _ = _pair_sweep_inputs(50, 300)
    rounds = 6

    def params_for(store):
        # The bound targets exactly this model combination at this
        # overlap; silenced so the bench log stays about performance.
        return DependenceParams(entry_store=store, overlap_warning_bound=None)

    benchmark.pedantic(
        lambda: EvidenceCache(dataset, params=params_for("columnar")),
        rounds=1,
        iterations=1,
    )

    def time_rounds(store):
        cache = EvidenceCache(dataset, params=params_for(store))
        collected = cache.collect_all(value_probs)  # warm structural state
        best = float("inf")
        for _ in range(2):  # best-of-2: noisy-neighbour insurance
            started = time.perf_counter()
            for _ in range(rounds):
                collected = cache.collect_all(value_probs)
            best = min(best, time.perf_counter() - started)
        return best / rounds, collected

    list_seconds, list_evidence = time_rounds("list")
    columnar_seconds, columnar_evidence = time_rounds("columnar")

    # The store layout is execution policy: identical evidence, bitwise.
    assert columnar_evidence == list_evidence

    speedup = list_seconds / columnar_seconds
    print()
    print("S1: per-round refresh + evidence assembly, list vs columnar store")
    print(
        render_table(
            ["store", "pairs", "seconds/round"],
            [
                ["list", len(list_evidence), list_seconds],
                ["columnar", len(columnar_evidence), columnar_seconds],
                ["speedup", "", speedup],
            ],
        )
    )
    bench_record(
        "round_refresh",
        {
            "workload": "50 sources x 300 objects, per-round evidence path",
            "pairs": len(columnar_evidence),
            "list_seconds_per_round": list_seconds,
            "columnar_seconds_per_round": columnar_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= (1.5 if _ON_CI else 2.0)


def test_truth_round_columnar_vs_dict(benchmark, bench_record):
    """The iterative truth rounds: columnar array kernels vs dict path.

    The 50-source workload under a full DEPEN run (6 rounds): the dict
    path re-walks Python dicts for vote discounting, softmax decisions
    and accuracy re-estimation every round; the columnar backend runs
    the same four steps as array kernels over a ``ValueProbTable`` that
    the evidence cache consumes positionally, with the pair posteriors
    coming from the batched kernel (:mod:`repro.dependence.bayes_batch`)
    fused into the round. Results must be bit-for-bit identical; the
    acceptance floor is 2.5x.

    A second, longer run with a drift tolerance demonstrates the
    restricted in-round pair re-scoring: once the iteration settles,
    rounds reuse the posteriors of pairs none of whose inputs moved —
    the ``depen_restricted_rescore`` counters must show the reuse
    actually firing.
    """
    dataset, _, _ = _pair_sweep_inputs(50, 300)
    rounds = 6

    def params_for(backend):
        # The dict arm is the full pre-optimisation reference: dict
        # truth rounds *and* the scalar per-pair posterior loop. The
        # columnar arm gets the batched posterior kernel (the auto
        # default on a columnar entry store).
        return DependenceParams(
            truth_backend=backend,
            posterior_backend="scalar" if backend == "dict" else "auto",
            overlap_warning_bound=None,
        )

    it = IterationParams(max_rounds=rounds)
    benchmark.pedantic(
        lambda: Depen(
            params_for("columnar"), IterationParams(max_rounds=1)
        ).discover(dataset),
        rounds=1,
        iterations=1,
    )

    def run(backend):
        best, result = float("inf"), None
        for _ in range(2):  # best-of-2: noisy-neighbour insurance
            started = time.perf_counter()
            result = Depen(params_for(backend), it).discover(dataset)
            best = min(best, time.perf_counter() - started)
        return best, result

    dict_seconds, dict_result = run("dict")
    columnar_seconds, columnar_result = run("columnar")

    # The backend is execution policy: identical results, bitwise.
    assert columnar_result.decisions == dict_result.decisions
    assert columnar_result.distributions == dict_result.distributions
    assert columnar_result.accuracies == dict_result.accuracies

    speedup = dict_seconds / columnar_seconds
    print()
    print("S1: full DEPEN truth rounds, dict path vs columnar kernels")
    print(
        render_table(
            ["backend", "rounds", "seconds"],
            [
                ["dict", rounds, dict_seconds],
                ["columnar", rounds, columnar_seconds],
                ["speedup", "", speedup],
            ],
        )
    )

    # Restricted re-scoring: settle the iteration with a drift
    # tolerance; tail rounds must reuse posteriors instead of
    # recomputing all ~1225 of them.
    it_tol = IterationParams(
        max_rounds=12, accuracy_tolerance=1e-6, rescore_tolerance=1e-4
    )
    tol_result = Depen(params_for("columnar"), it_tol).discover(dataset)
    rescored = sum(t.pairs_rescored for t in tol_result.trace)
    reused = sum(t.pairs_reused for t in tol_result.trace)
    restricted_rounds = sum(1 for t in tol_result.trace if t.pairs_reused)
    assert tol_result.decisions == dict_result.decisions
    assert reused > 0  # the in-round restriction actually fires
    print(
        "restricted re-scoring (tolerance 1e-4): "
        f"{rescored} rescored / {reused} reused over "
        f"{len(tol_result.trace)} rounds"
    )

    bench_record(
        "truth_round",
        {
            "workload": "50 sources x 300 objects, 6-round DEPEN run",
            "pairs": len(columnar_result.dependence),
            "dict_seconds": dict_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": speedup,
            "depen_restricted_rescore": {
                "rounds": len(tol_result.trace),
                "rescored": rescored,
                "reused": reused,
                "restricted_rounds": restricted_rounds,
            },
        },
    )
    assert speedup >= (2.5 if _ON_CI else 2.6)


def test_ingest_vs_rebuild_scaling(benchmark, bench_record):
    """Incremental maintenance scales with the dirty set, not the dataset.

    The 50-source workload again: a slice of objects receives late
    claims. The incremental path (batch ingest + dirty-object sync +
    evidence refresh) is compared with a cold rebuild of the evidence
    cache on the final dataset followed by the same refresh. Acceptance:
    >=5x faster when <10% of the objects are dirty — and the two paths'
    evidence must be bit-for-bit identical.
    """
    dataset_full, _ = simple_copier_world(
        n_objects=300, n_independent=46, n_copiers=4, accuracy=0.8, seed=11
    )
    claims = list(dataset_full)
    objects = sorted({c.object for c in claims})
    late_sources = set(sorted({c.source for c in claims})[:5])
    params = DependenceParams()

    def split(fraction):
        dirty = set(objects[: int(len(objects) * fraction)])
        holdout = [
            c for c in claims if c.object in dirty and c.source in late_sources
        ]
        base = [
            c
            for c in claims
            if not (c.object in dirty and c.source in late_sources)
        ]
        return base, holdout

    def measure(fraction):
        base, holdout = split(fraction)
        dataset = ClaimDataset(base)
        cache = EvidenceCache(dataset, params=params)
        cache.collect_all(uniform_value_probabilities(dataset))  # warm state

        started = time.perf_counter()
        dataset.add_claims(holdout)
        cache.sync()
        probs = uniform_value_probabilities(dataset)
        incremental = cache.collect_all(probs)
        incremental_seconds = time.perf_counter() - started

        started = time.perf_counter()
        cold_cache = EvidenceCache(dataset, params=params)
        cold = cold_cache.collect_all(probs)
        rebuild_seconds = time.perf_counter() - started

        assert incremental == cold  # bit-for-bit, PairEvidence equality
        return len(holdout), incremental_seconds, rebuild_seconds

    benchmark.pedantic(lambda: measure(0.05), rounds=1, iterations=1)
    rows = []
    speedups = {}
    for fraction in (0.02, 0.05, 0.10):
        # Best-of-2 per path so one noisy window doesn't decide it.
        n1, i1, r1 = measure(fraction)
        _, i2, r2 = measure(fraction)
        incremental_seconds = min(i1, i2)
        rebuild_seconds = min(r1, r2)
        speedups[fraction] = rebuild_seconds / incremental_seconds
        rows.append(
            [
                f"{fraction:.0%}",
                n1,
                incremental_seconds,
                rebuild_seconds,
                speedups[fraction],
            ]
        )
    print()
    print("S1: incremental ingest vs cold rebuild (50 sources, 300 objects)")
    print(
        render_table(
            ["dirty", "claims", "incremental s", "rebuild s", "speedup"],
            rows,
        )
    )
    bench_record(
        "ingest_vs_rebuild",
        {
            "workload": "50 sources x 300 objects",
            "speedups_by_dirty_fraction": {
                f"{fraction:.0%}": speedup
                for fraction, speedup in speedups.items()
            },
        },
    )
    floor = 2.0 if _ON_CI else 5.0
    for fraction, speedup in speedups.items():
        assert speedup >= floor, (fraction, speedup)


def test_mutation_sync_vs_rebuild(benchmark, bench_record):
    """Retraction/correction repair scales with the dirty set too.

    The 50-source workload with a mixed mutation batch: five sources
    retract their claims on 10% of the objects and five more correct
    theirs — well under 10% of all claims mutated. The incremental path
    (one ``apply`` + inverse-delta ``sync`` + evidence refresh) is
    compared with a cold rebuild of the evidence cache on the mutated
    dataset followed by the same refresh. Acceptance: >=3x faster, and
    the two paths' evidence must be bit-for-bit identical.
    """
    dataset_full, _ = simple_copier_world(
        n_objects=300, n_independent=46, n_copiers=4, accuracy=0.8, seed=11
    )
    claims = list(dataset_full)
    objects = sorted({c.object for c in claims})
    sources = sorted({c.source for c in claims})
    dirty = set(objects[: int(len(objects) * 0.10)])
    retracting = set(sources[:5])
    correcting = set(sources[5:10])
    batch = MutationBatch(
        retractions=tuple(
            (c.source, c.object)
            for c in claims
            if c.object in dirty and c.source in retracting
        ),
        corrections=tuple(
            Claim(source=c.source, object=c.object, value=f"{c.value}'")
            for c in claims
            if c.object in dirty and c.source in correcting
        ),
    )
    mutated_fraction = len(batch) / len(claims)
    assert mutated_fraction <= 0.10
    params = DependenceParams()

    def measure():
        dataset = ClaimDataset(claims)
        cache = EvidenceCache(dataset, params=params)
        cache.collect_all(uniform_value_probabilities(dataset))  # warm state

        started = time.perf_counter()
        dataset.apply(batch)
        cache.sync()
        probs = uniform_value_probabilities(dataset)
        incremental = cache.collect_all(probs)
        incremental_seconds = time.perf_counter() - started

        started = time.perf_counter()
        cold_cache = EvidenceCache(dataset, params=params)
        cold = cold_cache.collect_all(probs)
        rebuild_seconds = time.perf_counter() - started

        assert incremental == cold  # bit-for-bit, PairEvidence equality
        return incremental_seconds, rebuild_seconds

    benchmark.pedantic(measure, rounds=1, iterations=1)
    # Best-of-2 per path so one noisy window doesn't decide it.
    i1, r1 = measure()
    i2, r2 = measure()
    incremental_seconds = min(i1, i2)
    rebuild_seconds = min(r1, r2)
    speedup = rebuild_seconds / incremental_seconds
    print()
    print(
        "S1: mixed mutation batch, inverse-delta sync vs cold rebuild "
        "(50 sources, 300 objects)"
    )
    print(
        render_table(
            ["path", "mutations", "seconds"],
            [
                ["sync", len(batch), incremental_seconds],
                ["rebuild", len(batch), rebuild_seconds],
                ["speedup", "", speedup],
            ],
        )
    )
    bench_record(
        "mutation_sync",
        {
            "workload": "50 sources x 300 objects, retract+correct batch",
            "mutations": len(batch),
            "claims": len(claims),
            "mutated_fraction": mutated_fraction,
            "incremental_seconds": incremental_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
        },
    )
    assert speedup >= (3.0 if _ON_CI else 3.5)


def test_sweep_serial_vs_sharded(benchmark, bench_record):
    """The sharded parallel structural sweep vs the serial pass.

    The 50-source workload scaled to 600 objects (~1225 candidate pairs,
    ~735k pair records): the full structural pass — candidate-pair
    generation plus the evidence sweep — under the serial backend, the
    in-process vectorised ``numpy`` backend, and the ``process`` backend
    at 1, 2 and 4 workers. Results must be bit-for-bit identical in
    every configuration; the speedup assertions adapt to the host: the
    vectorised sweep must always win clearly, and with >= 4 CPUs the
    4-worker pool must clear the 2x acceptance floor.
    """
    dataset, _ = simple_copier_world(
        n_objects=600, n_independent=46, n_copiers=4, accuracy=0.8, seed=11
    )
    probs = uniform_value_probabilities(dataset)
    benchmark.pedantic(
        lambda: EvidenceCache(dataset, params=DependenceParams()),
        rounds=1,
        iterations=1,
    )

    def build_seconds(params) -> tuple[float, EvidenceCache]:
        best, cache = float("inf"), None
        for _ in range(2):  # best-of-2: noisy-neighbour insurance
            started = time.perf_counter()
            cache = EvidenceCache(dataset, params=params)
            best = min(best, time.perf_counter() - started)
        return best, cache

    serial_seconds, serial_cache = build_seconds(DependenceParams())
    reference = serial_cache.collect_all(probs)

    timings: dict[str, float] = {}
    configs = [("numpy", DependenceParams(parallel_backend="numpy"))]
    configs += [
        (
            f"process_{workers}",
            DependenceParams(parallel_backend="process", num_workers=workers),
        )
        for workers in (1, 2, 4)
    ]
    for label, params in configs:
        seconds, cache = build_seconds(params)
        timings[label] = seconds
        # The sharded sweep is a pure execution change: identical output.
        assert cache.collect_all(probs) == reference, label

    rows = [["serial", 1, serial_seconds, 1.0]]
    speedups = {}
    for label, seconds in timings.items():
        workers = int(label.rsplit("_", 1)[1]) if "_" in label else 1
        speedups[label] = serial_seconds / seconds
        rows.append([label, workers, seconds, speedups[label]])
    print()
    print(
        "S1: structural evidence sweep, serial vs sharded "
        "(50 sources, 600 objects)"
    )
    print(render_table(["backend", "workers", "seconds", "speedup"], rows))

    cpus = os.cpu_count() or 1
    bench_record(
        "serial_vs_sharded",
        {
            "workload": "50 sources x 600 objects, structural sweep",
            "serial_seconds": serial_seconds,
            "seconds": timings,
            "speedups": speedups,
            "cpu_count": cpus,
        },
    )
    # The vectorised sweep path must beat serial decisively; as with
    # the other wall-clock gates, shared CI runners get a looser floor
    # so the bit-for-bit equality asserts stay the real gate.
    assert speedups["numpy"] >= (1.1 if _ON_CI else 1.25)
    # The acceptance floor — 2x at 4 workers — needs 4 CPUs to mean
    # anything; on smaller hosts the numbers are recorded, not gated.
    if cpus >= 4:
        assert max(speedups["process_4"], speedups["numpy"]) >= 2.0


def test_streaming_rescore_restriction(benchmark, bench_record):
    """Restricted re-scoring: discover() after a small ingest re-scores
    only the affected pairs, and matches a full re-score bit for bit.

    Sparse coverage matters here: a dirty object re-scores every pair
    agreeing on it (its value probabilities move), so on a world where
    every source covers every object a handful of dirty objects touches
    every pair — correctly. The workload below covers 30% of objects
    per source, the realistic shape for the restriction to pay off.
    """
    import random

    rng = random.Random(11)
    objects = [f"o{i:03d}" for i in range(300)]
    claims = [
        Claim(
            source=f"S{i:02d}",
            object=obj,
            value=f"v{rng.randrange(4)}",
        )
        for i in range(50)
        for obj in rng.sample(objects, 90)
    ]
    dirty = set(objects[:3])  # 1% of the object universe arrives late
    late_sources = {f"S{i:02d}" for i in range(5)}
    holdout = [
        c for c in claims if c.object in dirty and c.source in late_sources
    ]
    held = set(holdout)
    base = [c for c in claims if c not in held]
    benchmark.pedantic(
        lambda: StreamingDependenceEngine(), rounds=1, iterations=1
    )

    engine = StreamingDependenceEngine()
    engine.ingest(base)
    engine.discover()  # full first pass establishes the reuse baseline
    engine.ingest(holdout)
    started = time.perf_counter()
    restricted_graph = engine.discover()
    restricted_seconds = time.perf_counter() - started
    stats = engine.last_discover_stats

    cold = StreamingDependenceEngine(
        dataset=ClaimDataset(list(engine.dataset))
    )
    started = time.perf_counter()
    full_graph = cold.discover()
    full_seconds = time.perf_counter() - started

    assert stats["restricted"] is True
    assert stats["rescored"] < stats["pairs"]
    assert len(restricted_graph) == len(full_graph)
    for pair in full_graph:
        assert restricted_graph.get(pair.s1, pair.s2) == pair

    speedup = full_seconds / restricted_seconds
    print()
    print("S1: streaming discover, restricted re-scoring vs full re-score")
    print(
        render_table(
            ["path", "pairs", "rescored", "seconds"],
            [
                ["full", stats["pairs"], stats["pairs"], full_seconds],
                [
                    "restricted",
                    stats["pairs"],
                    stats["rescored"],
                    restricted_seconds,
                ],
                ["speedup", "", "", speedup],
            ],
        )
    )
    bench_record(
        "streaming_rescore",
        {
            "workload": "50 sources x 300 objects, 30% coverage, 1% dirty",
            "pairs": stats["pairs"],
            "rescored": stats["rescored"],
            "reused": stats["reused"],
            "restricted_seconds": restricted_seconds,
            "full_seconds": full_seconds,
            "speedup": speedup,
        },
    )
    # The restriction must drop most of the posterior work on a small
    # dirty fraction; wall-clock is recorded but the pair counter is the
    # stable gate (posterior math is cheap enough to be noisy).
    assert stats["rescored"] <= stats["pairs"] * 0.7


def test_sync_delta_bytes(benchmark, bench_record):
    """Resident-pool delta shipping: bytes serialized per ``sync()``.

    The ``resident`` backend ships each shard's packed records to its
    pinned worker once; afterwards a sync sends only the dirty objects'
    row deltas through :meth:`ShardPlan.route`. This measures exactly
    the bytes crossing the pipes (counted at ``send_bytes`` time, not
    estimated): a ≤10% dirty ingest must serialize at least 5x fewer
    bytes than the cold full-state ship — a byte count, so it cannot
    flake with CPU noise and gates at the same floor everywhere.
    """
    dataset_full, _ = simple_copier_world(
        n_objects=300, n_independent=46, n_copiers=4, accuracy=0.8, seed=11
    )
    claims = list(dataset_full)
    objects = sorted({c.object for c in claims})
    late_sources = set(sorted({c.source for c in claims})[:5])
    dirty = set(objects[: int(len(objects) * 0.10)])
    holdout = [
        c for c in claims if c.object in dirty and c.source in late_sources
    ]
    base = [
        c
        for c in claims
        if not (c.object in dirty and c.source in late_sources)
    ]
    params = DependenceParams(parallel_backend="resident", num_workers=2)
    benchmark.pedantic(
        lambda: EvidenceCache(ClaimDataset(base), params=params).close(),
        rounds=1,
        iterations=1,
    )

    dataset = ClaimDataset(base)
    cache = EvidenceCache(dataset, params=params)
    try:
        full_bytes = cache.last_build_shipped_bytes
        dataset.add_claims(holdout)
        cache.sync()
        delta_bytes = cache.last_sync_shipped_bytes
        probs = uniform_value_probabilities(dataset)
        incremental = cache.collect_all(probs)
        cold = EvidenceCache(dataset, params=DependenceParams())
        assert incremental == cold.collect_all(probs)  # bit-for-bit
    finally:
        cache.close()

    ratio = full_bytes / max(1, delta_bytes)
    dirty_fraction = len(dirty) / len(objects)
    print()
    print("S1: resident sync payloads, full state ship vs dirty-row deltas")
    print(
        render_table(
            ["payload", "dirty", "bytes"],
            [
                ["cold build (full state)", "100%", full_bytes],
                ["sync (row deltas)", f"{dirty_fraction:.0%}", delta_bytes],
                ["ratio", "", ratio],
            ],
        )
    )
    bench_record(
        "sync_delta",
        {
            "workload": "50 sources x 300 objects, resident backend",
            "objects": len(objects),
            "dirty_fraction": dirty_fraction,
            "full_payload_bytes": full_bytes,
            "delta_bytes": delta_bytes,
            "shipped_bytes_ratio": ratio,
        },
    )
    assert delta_bytes > 0
    assert ratio >= 5.0, (full_bytes, delta_bytes)


def test_recovery_overhead(benchmark, bench_record):
    """Supervised recovery: a sync through one injected worker loss.

    SIGKILL one pinned resident worker, then sync: the supervisor
    detects the loss, respawns the worker, re-ships its shards' state
    from the parent's source of truth and retries the batch — the
    caller sees nothing but latency. The bench compares that recovery
    sync against clean syncs of the same shape (median of three) and
    asserts the repaired cache is bit-for-bit a cold rebuild. Gated in
    ``check_regression.py``: recovery overhead ≤ 3x a clean sync.
    """
    import signal
    import statistics

    dataset_full, _ = simple_copier_world(
        n_objects=600, n_independent=46, n_copiers=4, accuracy=0.8, seed=11
    )
    claims = list(dataset_full)
    objects = sorted({c.object for c in claims})
    late_sources = set(sorted({c.source for c in claims})[:5])
    dirty = set(objects[: int(len(objects) * 0.40)])
    holdout = [
        c for c in claims if c.object in dirty and c.source in late_sources
    ]
    base = [
        c
        for c in claims
        if not (c.object in dirty and c.source in late_sources)
    ]
    quarters = [
        holdout[i * len(holdout) // 4 : (i + 1) * len(holdout) // 4]
        for i in range(4)
    ]
    params = DependenceParams(parallel_backend="resident", num_workers=2)
    benchmark.pedantic(
        lambda: EvidenceCache(ClaimDataset(base), params=params).close(),
        rounds=1,
        iterations=1,
    )

    dataset = ClaimDataset(base)
    cache = EvidenceCache(dataset, params=params)
    try:
        clean_times = []
        for quarter in quarters[:3]:
            dataset.add_claims(quarter)
            start = time.perf_counter()
            cache.sync()
            clean_times.append(time.perf_counter() - start)
        clean = statistics.median(clean_times)

        pids = cache.executor.worker_pids()
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.05)
        dataset.add_claims(quarters[3])
        start = time.perf_counter()
        cache.sync()
        recovery = time.perf_counter() - start

        health = cache.execution_health()
        probs = uniform_value_probabilities(dataset)
        incremental = cache.collect_all(probs)
        cold = EvidenceCache(dataset, params=DependenceParams())
        assert incremental == cold.collect_all(probs)  # bit-for-bit
    finally:
        cache.close()

    assert health["supervised"]
    assert health["worker_losses"] >= 1  # the kill was actually absorbed
    assert health["degrades"] == 0  # recovered on the resident rung
    overhead_ratio = recovery / clean
    print()
    print("S1: resident sync, clean vs through one injected worker loss")
    print(
        render_table(
            ["sync", "seconds"],
            [
                ["clean (median of 3)", f"{clean:.4f}"],
                ["one worker SIGKILLed", f"{recovery:.4f}"],
                ["overhead ratio", f"{overhead_ratio:.2f}"],
            ],
        )
    )
    bench_record(
        "recovery",
        {
            "workload": "50 sources x 600 objects, resident backend",
            "clean_sync_s": clean,
            "recovery_sync_s": recovery,
            "worker_losses": health["worker_losses"],
            "overhead_ratio": overhead_ratio,
        },
    )
    assert overhead_ratio <= 3.0, (clean, recovery)
