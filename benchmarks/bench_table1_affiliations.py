"""Experiment T1 — Table 1 / Examples 2.1 & 3.1 (researcher affiliations).

Reproduces the paper's headline qualitative result: naive voting is
fooled by the copier clique (wrong on 3 of 5 researchers), accuracy-only
methods do no better, and the copy-aware DEPEN recovers all five truths
while flagging exactly {S3, S4, S5} as dependent.
"""

from __future__ import annotations

from repro.datasets.paper_tables import TABLE1_TRUTH, table1_dataset
from repro.eval import render_table
from repro.truth import Accu, Depen, NaiveVote, TruthFinder


def test_table1_truth_discovery(benchmark):
    dataset = table1_dataset()
    no_copiers = table1_dataset(("S1", "S2", "S3"))

    result = benchmark(lambda: Depen().discover(dataset))

    algorithms = [NaiveVote(), Accu(), TruthFinder(), Depen()]
    rows = []
    for algo in algorithms:
        with_copiers = algo.discover(dataset).accuracy_against(TABLE1_TRUTH)
        without = algo.discover(no_copiers).accuracy_against(TABLE1_TRUTH)
        rows.append([algo.name, without, with_copiers])
    print()
    print("T1: truth accuracy on Table 1 (paper: voting wrong on 3/5 with copiers)")
    print(render_table(["algorithm", "S1-S3 only", "S1-S5 (copiers)"], rows))

    by_name = {row[0]: row for row in rows}
    # Shape assertions: who wins, and by how much.
    assert by_name["vote"][2] <= 0.4
    assert by_name["accu"][2] <= 0.4
    assert by_name["truthfinder"][2] <= 0.4
    assert by_name["depen"][2] == 1.0
    assert result.decisions == TABLE1_TRUTH


def test_table1_dependence_posteriors(benchmark):
    dataset = table1_dataset()
    result = benchmark(lambda: Depen().discover(dataset))
    graph = result.dependence

    pairs = [
        ("S3", "S4"), ("S3", "S5"), ("S4", "S5"),
        ("S1", "S2"), ("S1", "S3"), ("S2", "S3"),
    ]
    rows = [
        [f"{a}-{b}", graph.probability(a, b)]
        for a, b in pairs
    ]
    print()
    print("T1: pairwise dependence posteriors (paper: S3/S4/S5 dependent)")
    print(render_table(["pair", "P(dependent)"], rows))

    for a, b in pairs[:3]:
        assert graph.probability(a, b) > 0.9
    for a, b in pairs[3:]:
        assert graph.probability(a, b) < 0.2
