"""Shared fixtures for the reproduction benchmarks.

Expensive worlds (the paper-scale catalog) are built once per session.
Every bench prints the rows/series it reproduces, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment
report generator behind ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pytest

from repro.generators import generate_bookstore_catalog
from repro.linkage import author_list_similarity, canonicalisation_map


@pytest.fixture(scope="session")
def paper_catalog():
    """The AbeBooks-scale synthetic catalog (876 stores, 1263 books)."""
    return generate_bookstore_catalog(seed=42)


@pytest.fixture(scope="session")
def canonical_author_claims(paper_catalog):
    """Author-list claims after linkage canonicalisation."""
    catalog, _ = paper_catalog
    claims = catalog.field_claims("authors")
    mapping = {}
    for obj in claims.objects:
        values = claims.values_for(obj)
        support = {v: len(p) for v, p in values.items()}
        local = canonicalisation_map(
            list(values), author_list_similarity, 0.9, support
        )
        for raw, canon in local.items():
            mapping[(obj, raw)] = canon
    return claims.map_values(mapping)
