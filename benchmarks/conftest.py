"""Shared fixtures for the reproduction benchmarks.

Expensive worlds (the paper-scale catalog) are built once per session.
Every bench prints the rows/series it reproduces, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment
report generator behind ``EXPERIMENTS.md``.

This conftest also collects the machine-readable benchmark trajectory:
benches record their headline numbers through the ``bench_record``
fixture, and the session-finish hook writes them to
``BENCH_scalability.json`` (override the path with the
``BENCH_SCALABILITY_JSON`` environment variable). CI uploads that file
as a workflow artifact, so speedups are tracked across pushes instead
of scrolling away in job logs.
"""

from __future__ import annotations

import json
import os
import platform
import sys

import pytest

from repro.generators import generate_bookstore_catalog
from repro.linkage import author_list_similarity, canonicalisation_map

_RECORDS: dict[str, dict] = {}


@pytest.fixture(scope="session")
def bench_record():
    """Record one benchmark section's headline numbers for the JSON file."""

    def record(section: str, payload: dict) -> None:
        _RECORDS.setdefault(section, {}).update(payload)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return  # session ran no recording benches (e.g. the tier-1 suite)
    path = os.environ.get("BENCH_SCALABILITY_JSON") or os.path.join(
        str(session.config.rootpath), "BENCH_scalability.json"
    )
    payload = {
        "schema": 1,
        "suite": "bench_scalability",
        "env": {
            "ci": bool(os.environ.get("CI")),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "results": _RECORDS,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nbenchmark trajectory written to {path}")


@pytest.fixture(scope="session")
def paper_catalog():
    """The AbeBooks-scale synthetic catalog (876 stores, 1263 books)."""
    return generate_bookstore_catalog(seed=42)


@pytest.fixture(scope="session")
def canonical_author_claims(paper_catalog):
    """Author-list claims after linkage canonicalisation."""
    catalog, _ = paper_catalog
    claims = catalog.field_claims("authors")
    mapping = {}
    for obj in claims.objects:
        values = claims.values_for(obj)
        support = {v: len(p) for v, p in values.items()}
        local = canonicalisation_map(
            list(values), author_list_similarity, 0.9, support
        )
        for raw, canon in local.items():
            mapping[(obj, raw)] = canon
    return claims.map_values(mapping)
