"""Experiment E41c — Example 4.1's queries 1-4 over the dirty catalog.

The paper's requirement 1: "we would like to answer queries, such as
Queries 2-4, accurately and completely" despite dirty author lists.
We run all four query shapes against fused records and score them
against the generator's ground truth, comparing plain voting fusion
with accuracy + dependence-aware fusion.
"""

from __future__ import annotations

from repro.core.params import DependenceParams, IterationParams
from repro.eval import render_table
from repro.query import (
    BooksByAuthorQuery,
    KeywordQuery,
    LookupQuery,
    OnlineQueryEngine,
    Query,
    TopPublisherQuery,
)
from repro.truth import Depen


def _fused_records(catalog, accuracies=None, dependence=None):
    engine = OnlineQueryEngine(
        catalog, accuracies=accuracies or {}, dependence=dependence
    )
    return engine.final_records()


def test_example41_queries(benchmark, paper_catalog, canonical_author_claims):
    catalog, world = paper_catalog
    truth_records = world.true_records()

    offline = Depen(
        params=DependenceParams(false_value_model="empirical"),
        min_overlap=10,
        iteration=IterationParams(max_rounds=3),
    ).discover(canonical_author_claims)

    aware_records = benchmark.pedantic(
        lambda: _fused_records(
            catalog, offline.accuracies, offline.dependence
        ),
        rounds=1,
        iterations=1,
    )
    naive_records = _fused_records(catalog)

    sample_book = sorted(world.records)[0]
    sample_author = world.records[sample_book].authors[0]
    queries: list[tuple[str, Query]] = [
        ("Q1 keyword 'java'", KeywordQuery("java")),
        (f"Q2 authors({sample_book})", LookupQuery(sample_book)),
        (f"Q3 books by {sample_author}", BooksByAuthorQuery(sample_author)),
        ("Q4 top publisher (Database)", TopPublisherQuery("Database")),
    ]

    def quality(query, records, reference):
        answer = query.evaluate(records)
        if isinstance(query, LookupQuery):
            # Author lists are compared by similarity: a correctly fused
            # list in another formatting style is a right answer.
            if answer is None:
                return 0.0
            from repro.linkage import author_list_similarity

            return author_list_similarity(tuple(answer), tuple(reference))
        return Query.answer_f1(answer, reference)

    rows = []
    aware_scores = []
    naive_scores = []
    for label, query in queries:
        reference = query.evaluate(truth_records)
        naive_q = quality(query, naive_records, reference)
        aware_q = quality(query, aware_records, reference)
        naive_scores.append(naive_q)
        aware_scores.append(aware_q)
        rows.append([label, naive_q, aware_q])
    print()
    print("E41c: query answer quality vs ground truth (F1 / exact)")
    print(render_table(["query", "vote fusion", "dependence-aware"], rows))

    # Titles/publishers/categories are clean in this world, so Q1 and Q4
    # are easy for both; the author-centric queries (Q2, Q3) are where
    # accuracy+dependence knowledge must not lose to naive voting.
    assert sum(aware_scores) >= sum(naive_scores) - 1e-9
    assert aware_scores[0] == 1.0
    assert aware_scores[3] == 1.0
