"""Experiment SV1 — online serving under concurrent ingest.

ROADMAP item 2 asks for the production shape of Example 4.1: truth
rounds keep running in the background while readers query the served
answers concurrently. This bench drives the full serving stack — a
:class:`repro.Session` over a 50-source copier world, its asyncio
:class:`~repro.serve.engine.ServingEngine` with the background
ingest/refresh/publish loop live, and a fleet of reader coroutines —
and measures:

* sustained read throughput (queries/sec) and latency (p50/p99 ms)
  while the writer keeps republishing;
* *consistency*: every answer a reader ever observed is re-checked,
  after the run, against the immutable snapshot of the version it was
  stamped with — any deviation (value, probability, or version drift
  inside one snapshot read) counts as a torn read. The acceptance bar
  is exactly zero.

Headline numbers land in the ``serving`` section of
``BENCH_scalability.json`` (see ``conftest.py``) and are floored by
``check_regression.py``.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import time

import repro
from repro.core.claims import Claim
from repro.eval import render_table
from repro.generators import simple_copier_world

_ON_CI = bool(os.environ.get("CI"))

#: Reader fleet size and per-run wall budget. Readers are coroutines on
#: one loop — the fleet exists to interleave with the executor-run
#: truth rounds, not to add CPU parallelism.
N_READERS = 4
RUN_SECONDS = 1.5 if _ON_CI else 2.0


def _fifty_source_world():
    dataset, world = simple_copier_world(
        n_objects=150,
        n_independent=40,
        n_copiers=10,
        accuracy=0.85,
        seed=23,
    )
    assert len(dataset.sources) == 50
    return dataset, world


async def _drive(session, engine, probe):
    """Readers + feeder racing the background refresh loop."""
    latencies: list[float] = []
    answers: list = []
    stop = time.perf_counter() + RUN_SECONDS

    async def reader(offset: int) -> int:
        count = 0
        while time.perf_counter() < stop:
            obj = probe[(offset + count) % len(probe)]
            started = time.perf_counter()
            answer = await engine.query(obj)
            latencies.append(time.perf_counter() - started)
            answers.append((obj, answer))
            count += 1
            if count % 64 == 0:
                await asyncio.sleep(0)  # let the feeder/loop breathe
        return count

    async def feeder() -> int:
        batches = 0
        while time.perf_counter() < stop:
            session.feed(
                [
                    Claim(
                        source=f"live{batches % 3}",
                        object=probe[batches % len(probe)],
                        value=f"live-{batches}",
                    )
                ]
            )
            batches += 1
            await asyncio.sleep(0.02)
        return batches

    engine.start()
    started = time.perf_counter()
    counts = await asyncio.gather(*(reader(i * 7) for i in range(N_READERS)),
                                  feeder())
    elapsed = time.perf_counter() - started
    await engine.stop()
    return latencies, answers, sum(counts[:-1]), counts[-1], elapsed


def test_serving_throughput_and_consistency(bench_record):
    dataset, _ = _fifty_source_world()
    # Retention sized so every version published during the run stays
    # resolvable for the post-run consistency audit.
    session = repro.Session(dataset=dataset, min_overlap=5, retention=512)
    first = session.publish()
    probe = list(first.objects)
    engine = session.serving(refresh_interval=0.01)

    latencies, answers, queries, batches, elapsed = asyncio.run(
        _drive(session, engine, probe)
    )
    qps = queries / elapsed
    p50_ms = statistics.median(latencies) * 1e3
    p99_ms = statistics.quantiles(latencies, n=100)[98] * 1e3
    versions = session.store.versions()

    # --- consistency audit: every observed answer must be bitwise what
    # the snapshot of its stamped version serves today (immutable, so
    # "today" == publish time). fingerprint() re-hashes the arrays, so
    # silent in-place mutation of a served snapshot would also surface.
    torn = 0
    by_version = {v: session.store.get(v) for v in versions}
    for obj, answer in answers:
        snapshot = by_version.get(answer.version)
        if snapshot is None or snapshot.answer(obj) != answer:
            torn += 1

    session.close()

    rows = [
        ("queries served", f"{queries}"),
        ("elapsed (s)", f"{elapsed:.2f}"),
        ("queries/sec", f"{qps:,.0f}"),
        ("p50 latency (ms)", f"{p50_ms:.3f}"),
        ("p99 latency (ms)", f"{p99_ms:.3f}"),
        ("versions published", f"{len(versions)}"),
        ("ingest batches fed", f"{batches}"),
        ("torn reads", f"{torn}"),
    ]
    print()
    print(render_table(("metric", "value"), rows))

    bench_record(
        "serving",
        {
            "queries": queries,
            "elapsed_s": elapsed,
            "qps": qps,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "versions_published": len(versions),
            "torn_reads": torn,
            "readers": N_READERS,
            "sources": len(dataset.sources),
        },
    )

    # Acceptance: >= 1000 queries/sec sustained against the 50-source
    # workload with background republishing, zero torn reads. CI gets
    # the usual looser wall-clock floor; consistency never flakes.
    assert torn == 0
    assert len(versions) >= 2, "background loop never republished"
    assert qps >= (1000.0 if _ON_CI else 2000.0)
    assert p99_ms < (50.0 if _ON_CI else 20.0)


def test_serving_pinned_reader_stability(bench_record):
    """A reader pinned to version N is untouched by live republishing."""
    dataset, _ = _fifty_source_world()
    session = repro.Session(dataset=dataset, min_overlap=5, retention=512)
    first = session.publish()
    probe = list(first.objects)[:20]
    pinned_before = {obj: first.answer(obj) for obj in probe}
    fingerprint = first.fingerprint()

    async def scenario():
        engine = session.serving(refresh_interval=0.01)
        engine.start()
        deadline = time.perf_counter() + 1.0
        checks = 0
        while time.perf_counter() < deadline:
            session.feed(
                [Claim(source=f"churn{checks}",
                       object=probe[checks % len(probe)],
                       value=f"churn-{checks}")]
            )
            for obj in probe:
                answer = await engine.query(obj, version=first.version)
                assert answer == pinned_before[obj]
                checks += 1
            await asyncio.sleep(0.01)
        await engine.stop()
        return checks

    checks = asyncio.run(scenario())
    republished = session.store.stats()["latest_version"] - first.version
    assert first.fingerprint() == fingerprint
    assert republished >= 1, "nothing republished while pinned reader ran"
    session.close()

    print(
        f"\npinned reader: {checks} stable reads across "
        f"{republished} republishes"
    )
    bench_record(
        "serving",
        {"pinned_reads": checks, "pinned_republishes": republished},
    )
