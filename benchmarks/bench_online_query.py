"""Experiment E41d — online query answering (Example 4.1, requirement 2).

"We want to query the sources in an order such that we can return
quality answers from the beginning." We measure the anytime quality
curve of a keyword query under four source orderings; the expected
shape is random < coverage <= accuracy <= dependence-aware marginal
gain, in area-under-curve terms (faster convergence to the full-catalog
answer).
"""

from __future__ import annotations

from repro.core.params import DependenceParams, IterationParams
from repro.eval import area_under_quality_curve, render_table
from repro.query import (
    KeywordQuery,
    OnlineQueryEngine,
    accuracy_order,
    coverage_order,
    marginal_gain_order,
    random_order,
)
from repro.truth import Depen

PROBE_BUDGET = 120


def test_online_ordering_policies(benchmark, paper_catalog, canonical_author_claims):
    catalog, world = paper_catalog

    offline = Depen(
        params=DependenceParams(false_value_model="empirical"),
        min_overlap=10,
        iteration=IterationParams(max_rounds=3),
    ).discover(canonical_author_claims)

    engine = OnlineQueryEngine(
        catalog,
        accuracies=offline.accuracies,
        dependence=offline.dependence,
    )
    query = KeywordQuery("java")
    reference = query.evaluate(world.true_records())

    orders = {
        "random": random_order(catalog.stores, seed=3),
        "coverage": coverage_order(catalog),
        "accuracy": accuracy_order(catalog.stores, offline.accuracies),
        "marginal gain": marginal_gain_order(
            catalog,
            offline.accuracies,
            offline.dependence,
            max_sources=PROBE_BUDGET,
        ),
    }

    def run_all():
        return {
            name: engine.run(
                query, order, reference=reference, max_probes=PROBE_BUDGET
            )
            for name, order in orders.items()
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    aucs = {}
    for name, run in runs.items():
        series = run.quality_series()
        auc = area_under_quality_curve(series)
        aucs[name] = auc
        checkpoints = [series[i] for i in (0, 9, 29, 59, PROBE_BUDGET - 1)]
        rows.append([name, auc, *checkpoints])
    print()
    print(f"E41d: anytime quality of Q1 over first {PROBE_BUDGET} probed stores")
    print(render_table(
        ["ordering", "AUC", "@1", "@10", "@30", "@60", f"@{PROBE_BUDGET}"],
        rows,
    ))

    # Shape: informed orderings converge faster than random; the
    # dependence-aware greedy is the best (or tied best).
    assert aucs["coverage"] > aucs["random"]
    assert aucs["marginal gain"] > aucs["random"]
    best = max(aucs.values())
    assert aucs["marginal gain"] >= best - 0.02
