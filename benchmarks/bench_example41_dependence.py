"""Experiment E41b — Example 4.1's dependent bookstore pairs.

The paper: "A preliminary analysis of data from different bookstores
reveals 471 pairs of bookstores that provide information on at least the
same 10 books and are very likely to be dependent."

We reproduce the analysis over the calibrated synthetic catalog (480
planted dependent pairs), comparing the naive uniform false-value model
against linkage + the popularity-aware (empirical) model. Expected
shape: the naive analysis over-flags by an order of magnitude; the
empirical model lands in the paper's ballpark and ranks planted pairs
far above chance.
"""

from __future__ import annotations

from repro.core.params import DependenceParams, IterationParams
from repro.eval import detection_score, render_table
from repro.truth import Depen


def _run(claims, model):
    algo = Depen(
        params=DependenceParams(false_value_model=model),
        min_overlap=10,
        iteration=IterationParams(max_rounds=4),
    )
    return algo.discover(claims).dependence


def test_dependent_pair_discovery(benchmark, paper_catalog, canonical_author_claims):
    catalog, world = paper_catalog
    planted = world.dependent_pairs()
    raw_claims = catalog.field_claims("authors")

    graph_empirical = benchmark.pedantic(
        lambda: _run(canonical_author_claims, "empirical"),
        rounds=1,
        iterations=1,
    )
    graph_uniform = _run(raw_claims, "uniform")

    rows = []
    results = {}
    for label, graph in (
        ("raw + uniform n", graph_uniform),
        ("linkage + empirical", graph_empirical),
    ):
        detected = graph.detected_pairs(0.5)
        score = detection_score(detected, planted)
        ranked = sorted(graph, key=lambda p: (-p.p_dependent, p.s1, p.s2))
        k = len(planted)
        topk = {frozenset((p.s1, p.s2)) for p in ranked[:k]}
        p_at_k = len(topk & planted) / k
        rows.append(
            [label, len(graph), score.detected, score.precision, score.recall, p_at_k]
        )
        results[label] = (score, p_at_k)
    print()
    print(f"E41b: dependent store pairs (paper: 471 'very likely dependent'; planted: {len(planted)})")
    print(render_table(
        ["analysis", "pairs>=10 books", "detected", "precision", "recall", "p@planted"],
        rows,
    ))

    naive_score, naive_p = results["raw + uniform n"]
    smart_score, smart_p = results["linkage + empirical"]
    # Shape: the refined analysis detects the right order of magnitude
    # (paper: 471) where the naive one over-flags by thousands, and its
    # ranking is much better than chance.
    assert naive_score.detected > 2000
    assert 300 <= smart_score.detected <= 1400
    assert smart_score.recall >= 0.6
    assert smart_p >= 0.5
    assert smart_p > naive_p
    chance = len(planted) / max(1, len(graph_empirical))
    assert smart_p > 5 * chance
