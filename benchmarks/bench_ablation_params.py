"""Experiment A5 — sensitivity of the Bayes model to (alpha, c, n).

DESIGN.md calls out the three structural parameters of the snapshot
model. We sweep each around its default on a synthetic copier world and
record detection F1 and truth accuracy. Expected shape: performance is
flat across a broad band (the model is not knife-edge tuned), with n=1
as the known degenerate corner (a shared false value carries no
surprise when there is only one way to be wrong).
"""

from __future__ import annotations

from repro.core.params import DependenceParams
from repro.eval import detection_score, render_table, truth_accuracy
from repro.generators import simple_copier_world
from repro.truth import Depen


def _run(params: DependenceParams):
    dataset, world = simple_copier_world(
        n_objects=120,
        n_independent=5,
        n_copiers=3,
        accuracy=0.75,
        copy_rate=0.8,
        n_false_values=20,
        seed=19,
    )
    result = Depen(params=params).discover(dataset)
    siblings = {
        frozenset((a, b))
        for a in world.copiers()
        for b in world.copiers()
        if a < b
    }
    acceptable = world.dependent_pairs() | siblings
    detected = result.dependence.detected_pairs(0.5)
    must_find = detection_score(detected, world.dependent_pairs())
    noise = detected - acceptable
    return (
        truth_accuracy(result.decisions, world.truth),
        must_find.recall,
        len(noise),
    )


def test_parameter_sensitivity(benchmark):
    benchmark.pedantic(
        lambda: _run(DependenceParams()), rounds=1, iterations=1
    )

    rows = []
    sweeps = {
        "alpha": [
            DependenceParams(alpha=a) for a in (0.05, 0.2, 0.5)
        ],
        "copy_rate": [
            DependenceParams(copy_rate=c) for c in (0.4, 0.6, 0.8, 0.95)
        ],
        "n_false": [
            DependenceParams(n_false_values=n) for n in (5, 20, 100, 1000)
        ],
    }
    measured = {}
    for name, grid in sweeps.items():
        for params in grid:
            value = {
                "alpha": params.alpha,
                "copy_rate": params.copy_rate,
                "n_false": params.n_false_values,
            }[name]
            accuracy, recall, noise = _run(params)
            measured[(name, value)] = (accuracy, recall, noise)
            rows.append([name, value, accuracy, recall, noise])
    print()
    print("A5: (alpha, c, n) sensitivity — truth accuracy / copier recall / noise pairs")
    print(render_table(
        ["parameter", "value", "truth acc", "copier recall", "false pairs"],
        rows,
    ))

    # Shape: alpha and n are broadly flat; the copy rate matters — a
    # badly *underestimated* c (0.4-0.6 against the world's 0.8) weakens
    # the disagreement penalty and lets honest pairs get flagged, which
    # then costs truth accuracy. Every setting still finds the clique.
    for (name, value), (accuracy, recall, noise) in measured.items():
        assert recall == 1.0, f"{name}={value} missed the clique"
        assert accuracy >= 0.75, f"{name}={value} broke truth discovery"
        if name in ("alpha", "n_false"):
            assert accuracy >= 0.9, f"{name}={value} should be flat"
            assert noise <= 2, f"{name}={value} flagged unrelated pairs"
    assert measured[("copy_rate", 0.8)][0] >= measured[("copy_rate", 0.4)][0]
    assert measured[("copy_rate", 0.8)][2] <= 2
