"""Experiment E41a — Example 4.1 corpus statistics.

The paper reports: 876 bookstores, 1263 books, 24 364 listings; books per
store from 1 to 1095; author-list variants per book from 1 to 23, 4 on
average; per-store author accuracy from 0 to .92. The synthetic catalog
must land on (or near) every one of those numbers.
"""

from __future__ import annotations

from repro.eval import render_table
from repro.generators import generate_bookstore_catalog


def test_catalog_statistics(benchmark, paper_catalog):
    catalog, world = paper_catalog
    benchmark.pedantic(
        lambda: generate_bookstore_catalog(seed=7), rounds=1, iterations=1
    )

    stats = catalog.statistics()
    accuracies = sorted(world.store_accuracy.values())
    rows = [
        ["bookstores", 876, stats["stores"]],
        ["books", 1263, stats["books"]],
        ["listings", 24364, stats["listings"]],
        ["min books/store", 1, stats["min_books_per_store"]],
        ["max books/store", 1095, stats["max_books_per_store"]],
        ["min author variants", 1, stats["min_author_variants"]],
        ["max author variants", 23, stats["max_author_variants"]],
        ["mean author variants", 4, stats["mean_author_variants"]],
        ["min store accuracy", 0.0, accuracies[0]],
        ["max store accuracy", 0.92, accuracies[-1]],
    ]
    print()
    print("E41a: corpus statistics (paper vs synthetic)")
    print(render_table(["statistic", "paper", "synthetic"], rows))

    assert stats["stores"] == 876
    assert stats["books"] == 1263
    assert abs(stats["listings"] - 24364) / 24364 < 0.10
    assert stats["min_books_per_store"] <= 2
    assert stats["max_books_per_store"] >= 1000
    assert stats["min_author_variants"] == 1
    assert 15 <= stats["max_author_variants"] <= 30
    assert 3.0 <= stats["mean_author_variants"] <= 8.0
    assert accuracies[0] < 0.05
    assert accuracies[-1] <= 0.92
