"""Experiment A2 — the "partial dependence" challenge (section 3.1).

"Even if a data source copies from another source, it may copy only a
subset of the information … the similarity between the sources might not
always be high, leading to the erroneous conclusion that the sources are
likely to be independent."

We sweep the copied fraction (the copier's coverage of the original) and
record the dependence posterior and the accuracy-split direction
evidence. Expected shape: detection stays strong well below full
copying, and the copier's accuracy split exceeds the original's.
"""

from __future__ import annotations

from repro.core.params import DependenceParams
from repro.dependence.partial import direction_evidence
from repro.eval import render_table
from repro.generators import CopierSpec, SnapshotConfig, generate_snapshot_world
from repro.truth import Depen


def _world(coverage: float):
    config = SnapshotConfig(
        n_objects=200,
        n_false_values=20,
        independent_accuracies={"a": 0.75, "b": 0.75, "original": 0.6},
        copiers=[
            CopierSpec(
                copier="copier",
                original="original",
                copy_rate=0.9,
                coverage=coverage,
                own_accuracy=0.9,
            )
        ],
    )
    return generate_snapshot_world(config, seed=13)


def test_partial_copier_detection(benchmark):
    benchmark.pedantic(
        lambda: Depen().discover(_world(0.5)[0]), rounds=1, iterations=1
    )

    rows = []
    for coverage in (0.25, 0.5, 0.75, 1.0):
        dataset, _ = _world(coverage)
        result = Depen(params=DependenceParams(n_false_values=20)).discover(dataset)
        posterior = result.dependence.probability("original", "copier")
        evidence = direction_evidence(
            dataset, "copier", "original", result.distributions
        )
        copier_split = evidence.split1.split_strength
        original_split = evidence.split2.split_strength
        rows.append([coverage, posterior, copier_split, original_split])
    print()
    print("A2: partial copying — detection vs copied fraction")
    print(render_table(
        ["copied fraction", "P(dependent)", "copier split", "original split"],
        rows,
    ))

    for row in rows:
        assert row[1] > 0.5, f"partial copier missed at coverage {row[0]}"
    # The splits are informational here: this generator's copiers have
    # no private remainder (their inventory is a subset of the
    # original's), so the copier side of the split is structurally
    # empty; the dedicated unit tests cover the intuition-2 signature
    # on worlds where the copier has private coverage.
