"""Experiment A3 — the "correlated information" challenge (section 3.1).

"A high similarity between the ratings of two raters for the various
Star Wars movies may simply reflect a popular opinion amongst science
fiction fans … rather than any copying."

We grow taste clusters (groups of genuine raters who share preferences)
and measure the false-positive rate among same-cluster genuine pairs,
with and without the per-item consensus conditioning the detector uses.
Expected shape: conditioning keeps genuine fans unflagged while the
planted copier stays detected.
"""

from __future__ import annotations

from repro.core.params import OpinionParams
from repro.dependence.opinions import discover_rater_dependence
from repro.eval import render_table
from repro.generators import RatingWorldConfig, generate_rating_world


def _false_positive_rate(result, world) -> float:
    genuine = world.genuine_raters()
    pairs = [
        (a, b)
        for i, a in enumerate(genuine)
        for b in genuine[i + 1 :]
        if world.clusters[a] == world.clusters[b]
    ]
    if not pairs:
        return 0.0
    flagged = sum(1 for a, b in pairs if result.probability(a, b) >= 0.5)
    return flagged / len(pairs)


def test_taste_clusters_not_flagged(benchmark):
    config = RatingWorldConfig(
        n_items=60,
        n_clusters=2,
        raters_per_cluster=5,
        taste_concentration=3.0,  # strong shared tastes
        n_copiers=1,
        n_anti=0,
    )
    world = generate_rating_world(config, seed=23)
    result = benchmark(
        lambda: discover_rater_dependence(world.matrix, OpinionParams())
    )

    rows = []
    for concentration in (1.5, 3.0, 5.0):
        cfg = RatingWorldConfig(
            n_items=60,
            n_clusters=2,
            raters_per_cluster=5,
            taste_concentration=concentration,
            n_copiers=1,
            n_anti=0,
        )
        w = generate_rating_world(cfg, seed=23)
        r = discover_rater_dependence(w.matrix)
        fp_rate = _false_positive_rate(r, w)
        edge = w.edges[0]
        copier_p = r.probability(edge.copier, edge.original)
        # Mean same-cluster agreement, for context.
        genuine = w.genuine_raters()
        same_cluster = [
            (a, b)
            for i, a in enumerate(genuine)
            for b in genuine[i + 1 :]
            if w.clusters[a] == w.clusters[b]
        ]
        agreements = []
        for a, b in same_cluster:
            items = w.matrix.co_rated(a, b)
            agree = sum(
                1
                for item in items
                if w.matrix.score_of(a, item) == w.matrix.score_of(b, item)
            )
            agreements.append(agree / len(items))
        rows.append(
            [
                concentration,
                sum(agreements) / len(agreements),
                fp_rate,
                copier_p,
            ]
        )
    print()
    print("A3: taste clusters vs copier (consensus conditioning active)")
    print(render_table(
        ["taste concentration", "fan agreement", "fan FP rate", "P(dep copier)"],
        rows,
    ))

    for row in rows:
        assert row[2] <= 0.2, "genuine fans wrongly flagged as dependent"
        assert row[3] >= 0.5, "planted copier missed"
    assert _false_positive_rate(result, world) <= 0.2
