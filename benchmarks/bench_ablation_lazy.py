"""Experiment A4 — "lazy copiers and slow providers" (section 3.1).

"An independent source may be slow and often behind other sources in
updating values, and so appears to be a copier."

We compare the paper-faithful raw order model against the
freshness-adjusted model on a temporal world containing both a uniformly
slow independent source and genuine lazy copiers. Expected shape: the
raw model has perfect recall but drowns in false positives (every slow
source looks like a copier); the adjusted model keeps high recall at
high precision and exonerates the slow source.
"""

from __future__ import annotations

from repro.core.params import TemporalParams
from repro.dependence.temporal import discover_temporal_dependence
from repro.eval import detection_score, render_table
from repro.generators import (
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_temporal_world,
)

SEEDS = (5, 11, 23, 42, 77)


def _config() -> TemporalConfig:
    return TemporalConfig(
        n_objects=60,
        time_span=40.0,
        transitions_per_object=2.5,
        n_false_values=10,
        sources=[
            TemporalSourceSpec("fresh", lag=0.3, error_rate=0.1),
            TemporalSourceSpec("slow", lag=3.0, error_rate=0.1),
            TemporalSourceSpec("mid1", lag=1.0, error_rate=0.1),
            TemporalSourceSpec("mid2", lag=1.5, error_rate=0.1),
            TemporalSourceSpec("mid3", lag=0.7, error_rate=0.1),
        ],
        copiers=[
            TemporalCopierSpec("lazy1", "fresh", poll_interval=3.0, copy_rate=0.8),
            TemporalCopierSpec("lazy2", "mid1", poll_interval=4.0, copy_rate=0.8),
        ],
    )


def _sweep(params: TemporalParams) -> tuple[int, int, int, float]:
    tp = fp = fn = 0
    slow_flags = 0
    for seed in SEEDS:
        dataset, world = generate_temporal_world(_config(), seed=seed)
        graph = discover_temporal_dependence(
            dataset, params, leave_pair_out=True
        )
        score = detection_score(
            graph.detected_pairs(0.5), world.dependent_pairs()
        )
        tp += score.true_positives
        fp += score.detected - score.true_positives
        fn += score.planted - score.true_positives
        if graph.probability("fresh", "slow") >= 0.5:
            slow_flags += 1
    return tp, fp, fn, slow_flags / len(SEEDS)


def test_lazy_copier_vs_slow_provider(benchmark):
    benchmark.pedantic(
        lambda: _sweep(TemporalParams(freshness_adjustment=1.0)),
        rounds=1,
        iterations=1,
    )

    raw = _sweep(TemporalParams())
    adjusted = _sweep(TemporalParams(freshness_adjustment=1.0))

    def fmt(name, stats):
        tp, fp, fn, slow_rate = stats
        precision = tp / max(1, tp + fp)
        recall = tp / max(1, tp + fn)
        return [name, tp, fp, precision, recall, slow_rate]

    rows = [fmt("raw order model", raw), fmt("freshness-adjusted", adjusted)]
    print()
    print(f"A4: lazy copiers vs slow providers over {len(SEEDS)} seeds")
    print(render_table(
        ["model", "TP", "FP", "precision", "recall", "slow flagged"],
        rows,
    ))

    raw_precision = raw[0] / max(1, raw[0] + raw[1])
    adj_precision = adjusted[0] / max(1, adjusted[0] + adjusted[1])
    adj_recall = adjusted[0] / max(1, adjusted[0] + adjusted[2])
    assert raw[1] >= 10, "raw model should drown in false positives"
    assert adj_precision >= 0.7
    assert adj_recall >= 0.6
    assert adj_precision > raw_precision
    assert adjusted[3] <= 0.2, "slow source should be exonerated"
