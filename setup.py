"""Setup shim.

The metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` can fall back to the legacy ``setup.py develop``
path on environments without the ``wheel`` package (PEP 660 editable
installs require building a wheel).
"""

from setuptools import setup

setup()
