"""The full ``repro.Session`` lifecycle: ingest to online serving.

One object drives the whole pipeline the paper's application section
implies — ingest claims, discover source dependence, run a copy-aware
truth round, publish the round as an immutable versioned snapshot, and
answer queries / recommendations from it:

1. Seed a session from a 50-source copier world, publish round v1.
2. Query served truth, explain a copier's dependence neighbourhood,
   recommend dependence-penalised sources.
3. Pin version 1, ingest contradicting claims, publish v2 — the pinned
   reader is bit-for-bit unchanged while the latest answer moves.
4. Persist the snapshot to disk and reload it memory-mapped.
5. Serve concurrent asyncio readers while a background loop keeps
   ingesting fed claims and republishing.

Run:  python examples/serving_quickstart.py   (takes ~5s)
"""

import asyncio
import tempfile

import repro
from repro.core.claims import Claim
from repro.generators import simple_copier_world
from repro.serve import load_snapshot, save_snapshot


def main() -> None:
    dataset, _ = simple_copier_world(
        n_objects=150, n_independent=40, n_copiers=10, accuracy=0.85, seed=23
    )

    with repro.Session(dataset=dataset, min_overlap=5) as session:
        # -- write lifecycle: discover -> truth -> publish ---------------
        session.discover()
        session.run_truth()
        snapshot = session.publish()
        print(f"published snapshot v{snapshot.version} "
              f"({len(snapshot.objects)} objects, "
              f"{len(snapshot.sources)} sources)")

        # -- reads are answered from the published round -----------------
        answer = session.query("obj0000")
        print(f"query obj0000 -> {answer.value!r} "
              f"(p={answer.probability:.3f}, snapshot v{answer.version})")
        strong = session.explain_dependence("cop00", threshold=0.9)
        print(f"cop00 depends on {len(strong)} sources at p >= 0.9")
        top = session.recommend(3)
        print(f"recommended sources: {top}")

        # -- pinned readers survive republishing -------------------------
        pinned_version = snapshot.version
        before = session.query("obj0000", version=pinned_version)
        session.ingest(
            [Claim(source=f"flood{i}", object="obj0000", value="flooded")
             for i in range(12)]
        )
        session.publish()
        latest = session.query("obj0000")
        pinned = session.query("obj0000", version=pinned_version)
        print(f"after republish: latest v{latest.version} says "
              f"{latest.value!r}; pinned v{pinned_version} still says "
              f"{pinned.value!r} (unchanged: {pinned == before})")

        # -- snapshots persist and reload memory-mapped ------------------
        with tempfile.TemporaryDirectory() as directory:
            save_snapshot(session.store.latest, directory)
            loaded = load_snapshot(directory)  # mmap + fingerprint check
            print(f"persisted round-trip ok: v{loaded.version}, "
                  f"fingerprint match "
                  f"{loaded.fingerprint() == session.store.latest.fingerprint()}")

        # -- the asyncio front-end: readers vs background republish ------
        async def serve() -> None:
            engine = session.serving(refresh_interval=0.01)
            engine.start()
            session.feed(
                [Claim(source="live", object="obj0001", value="live-value")]
            )
            while session.store.stats()["latest_version"] == latest.version:
                await asyncio.sleep(0.01)
            served = await engine.query("obj0001")
            print(f"background loop republished v{served.version}; "
                  f"obj0001 -> {served.value!r}")
            await engine.stop()
            print(f"serving stats: {engine.stats()['queries']} queries, "
                  f"{engine.stats()['refreshes']} refreshes")

        asyncio.run(serve())


if __name__ == "__main__":
    main()
