"""The full Example 4.1 pipeline on the AbeBooks-scale synthetic catalog.

1. Generate the calibrated catalog (876 stores, 1263 books, ~24k dirty
   listings with planted copier cliques).
2. Record linkage: canonicalise author-list representations.
3. Dependence discovery over store pairs sharing >= 10 books.
4. Answer the paper's four queries from fused records.
5. Online query answering: quality-vs-probes under source orderings.

Run:  python examples/bookstores_pipeline.py   (takes ~30s)
"""

from repro.core.params import DependenceParams, IterationParams
from repro.eval import area_under_quality_curve, detection_score
from repro.generators import generate_bookstore_catalog
from repro.linkage import author_list_similarity, canonicalisation_map
from repro.query import (
    BooksByAuthorQuery,
    KeywordQuery,
    LookupQuery,
    OnlineQueryEngine,
    TopPublisherQuery,
    coverage_order,
    marginal_gain_order,
    random_order,
)
from repro.truth import Depen


def canonicalise(claims):
    mapping = {}
    for obj in claims.objects:
        values = claims.values_for(obj)
        support = {v: len(p) for v, p in values.items()}
        local = canonicalisation_map(
            list(values), author_list_similarity, 0.9, support
        )
        for raw, canon in local.items():
            mapping[(obj, raw)] = canon
    return claims.map_values(mapping)


def main() -> None:
    print("generating catalog ...")
    catalog, world = generate_bookstore_catalog(seed=42)
    stats = catalog.statistics()
    print(
        f"  {stats['stores']:.0f} stores, {stats['books']:.0f} books, "
        f"{stats['listings']:.0f} listings; author variants/book up to "
        f"{stats['max_author_variants']:.0f} (mean {stats['mean_author_variants']:.1f})"
    )

    print("linkage: canonicalising author lists ...")
    canonical = canonicalise(catalog.field_claims("authors"))

    print("dependence discovery over store pairs sharing >= 10 books ...")
    offline = Depen(
        params=DependenceParams(false_value_model="empirical"),
        min_overlap=10,
        iteration=IterationParams(max_rounds=4),
    ).discover(canonical)
    detected = offline.dependence.detected_pairs(0.5)
    score = detection_score(detected, world.dependent_pairs())
    print(
        f"  {len(detected)} pairs flagged (paper reported 471); "
        f"precision {score.precision:.2f}, recall {score.recall:.2f} "
        f"against {score.planted} planted pairs"
    )

    print("\nExample 4.1's queries, answered from fused records:")
    engine = OnlineQueryEngine(
        catalog, accuracies=offline.accuracies, dependence=offline.dependence
    )
    records = engine.final_records()
    sample_book = sorted(world.records)[0]
    author = world.records[sample_book].authors[0]
    q1 = KeywordQuery("java").evaluate(records)
    print(f"  Q1 books on Java: {len(q1)} found")
    q2 = LookupQuery(sample_book).evaluate(records)
    print(f"  Q2 authors of {sample_book}: {q2}")
    q3 = BooksByAuthorQuery(author).evaluate(records)
    print(f"  Q3 books by {author}: {len(q3)} found")
    q4 = TopPublisherQuery("Database").evaluate(records)
    print(f"  Q4 most productive Database publisher: {q4}")

    print("\nonline answering (first 120 probes, Q1):")
    query = KeywordQuery("java")
    reference = query.evaluate(world.true_records())
    for name, order in (
        ("random", random_order(catalog.stores, seed=3)),
        ("coverage", coverage_order(catalog)),
        (
            "marginal gain",
            marginal_gain_order(
                catalog, offline.accuracies, offline.dependence, max_sources=120
            ),
        ),
    ):
        run = engine.run(query, order, reference=reference, max_probes=120)
        auc = area_under_quality_curve(run.quality_series())
        print(f"  {name:<14} anytime-quality AUC = {auc:.3f}")


if __name__ == "__main__":
    main()
