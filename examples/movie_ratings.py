"""Opinion data: detecting raters who copy or systematically oppose.

Starts from the paper's Table 2 (reviewer R4 always contradicts R1),
then scales the same analysis to a synthetic rating world with taste
clusters (genuine fans who agree a lot), a planted copier and a planted
contrarian — showing that consensus conditioning separates shared taste
from actual dependence.

Run:  python examples/movie_ratings.py
"""

from repro.core.world import DependenceKind
from repro.datasets.paper_tables import RATING_SCALE, TABLE2
from repro.dependence.opinions import discover_rater_dependence
from repro.generators import RatingWorldConfig, generate_rating_world
from repro.opinions import DependenceAwareConsensus, RatingMatrix


def table2_demo() -> None:
    print("=== Table 2: movie reviewers ===")
    matrix = RatingMatrix.from_table(RATING_SCALE, TABLE2)
    result = discover_rater_dependence(matrix)
    for pair in sorted(result, key=lambda p: -p.p_dependent):
        kind = pair.dominant_kind()
        label = kind.value if kind else "independent"
        print(
            f"  {pair.r1} vs {pair.r2}: P(dep) = {pair.p_dependent:.3f}  -> {label}"
        )

    naive = DependenceAwareConsensus(aware=False).aggregate(matrix)
    aware = DependenceAwareConsensus().aggregate(matrix)
    print("\n  mean scores (0=Bad .. 2=Good):")
    for item in matrix.items:
        print(
            f"  {item:<14} naive {naive.mean_scores[item]:.2f}"
            f"   aware {aware.mean_scores[item]:.2f}"
        )
    print("\n  rater weights after detection:")
    for rater, weight in sorted(aware.weights.items()):
        print(f"  {rater}: {weight:.3f}")


def synthetic_demo() -> None:
    print("\n=== Synthetic: fans vs copiers vs contrarians ===")
    config = RatingWorldConfig(
        n_items=60,
        n_clusters=2,
        raters_per_cluster=4,
        taste_concentration=3.0,
        n_copiers=1,
        n_anti=1,
    )
    world = generate_rating_world(config, seed=7)
    result = discover_rater_dependence(world.matrix)

    print("  planted:")
    for edge in world.edges:
        print(f"    {edge.copier} {edge.kind.value}-depends on {edge.original}")

    print("  detected (posterior >= 0.5):")
    for pair in sorted(result, key=lambda p: -p.p_dependent):
        if pair.p_dependent < 0.5:
            continue
        kind = pair.dominant_kind()
        print(
            f"    {pair.r1} ~ {pair.r2}: P = {pair.p_dependent:.3f}"
            f" ({kind.value if kind else '?'})"
        )

    genuine = world.genuine_raters()
    flagged_fans = [
        (a, b)
        for i, a in enumerate(genuine)
        for b in genuine[i + 1 :]
        if result.probability(a, b) >= 0.5
    ]
    print(f"  genuine fan pairs wrongly flagged: {len(flagged_fans)}")
    sim = result.detected_pairs(DependenceKind.SIMILARITY)
    dis = result.detected_pairs(DependenceKind.DISSIMILARITY)
    print(f"  similarity detections: {len(sim)}, dissimilarity: {len(dis)}")


if __name__ == "__main__":
    table2_demo()
    synthetic_demo()
