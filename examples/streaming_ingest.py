"""Streaming ingest: dependence posteriors that stay fresh under traffic.

Simulates a service absorbing claim batches continuously. A copier
clique's tell-tale shared errors only accumulate as claims arrive, so
the dependence posteriors sharpen batch by batch — and the engine pays
only for the *dirty* objects of each batch (plus a cheap soft refresh),
never a full re-sweep. The final state is provably identical to a cold
rebuild; the win is the cost of staying fresh.

Run:  PYTHONPATH=src python examples/streaming_ingest.py
"""

import random
import time

from repro import DependenceParams, StreamingDependenceEngine
from repro.generators import simple_copier_world


def main() -> None:
    # A 20-source world, 200 objects, with a 3-copier clique.
    dataset, world = simple_copier_world(
        n_objects=200, n_independent=17, n_copiers=3, accuracy=0.8, seed=42
    )
    claims = sorted(dataset, key=lambda c: (str(c.object), c.source))
    rng = random.Random(0)
    rng.shuffle(claims)

    planted = sorted(
        tuple(sorted((e.copier, e.original))) for e in world.edges
    )
    print(f"planted copier edges: {planted}\n")
    print(
        f"{'batch':>5} {'claims':>7} {'dirty':>6} {'pairs':>6} "
        f"{'ingest ms':>10} {'detected pairs (P >= 0.9)'}"
    )

    # n_false_values matches the generated world (20 false alternatives
    # per object) — overstating n makes every shared false value look
    # more damning than it is. The empirical false-value model weighs
    # each shared value by its observed popularity, which keeps large
    # overlaps between genuinely independent sources from accumulating
    # spurious evidence (the default expected_log+uniform combination is
    # deliberately aggressive for tiny inputs like Table 1, and
    # over-detects at this scale). min_overlap=10 is the paper's
    # Example 4.1 prefilter ("at least the same 10 books").
    engine = StreamingDependenceEngine(
        params=DependenceParams(
            n_false_values=20, false_value_model="empirical"
        ),
        min_overlap=10,
    )
    batch_size = 400
    for index, start in enumerate(range(0, len(claims), batch_size)):
        batch = claims[start : start + batch_size]
        started = time.perf_counter()
        delta = engine.ingest(batch)  # structural repair: dirty objects only
        ingest_ms = (time.perf_counter() - started) * 1e3
        # Re-running DEPEN on the live state reuses the engine's evidence
        # cache, so the iterative loop pays no structural pass; it also
        # re-anchors the accuracy estimates the posteriors condition on.
        engine.run_truth()
        detected = sorted(
            tuple(sorted(pair))
            for pair in engine.graph.detected_pairs(threshold=0.9)
        )
        print(
            f"{index:>5} {len(engine.dataset):>7} "
            f"{len(delta.dirty_objects):>6} {len(engine.graph):>6} "
            f"{ingest_ms:>10.1f} {detected}"
        )

    result = engine.run_truth()
    accuracy = result.accuracy_against(world.truth)
    print(f"\nDEPEN on the final stream: accuracy {accuracy:.3f} against truth")
    copiers = sorted(
        source
        for source in engine.dataset.sources
        if engine.graph.dependence_score(source) >= 0.9
    )
    print(f"sources entangled in a detected pair: {copiers}")


if __name__ == "__main__":
    main()
