"""Temporal reasoning: out-of-date is not false; lazy copiers trail.

Starts from the paper's Table 3 (update histories of researcher
affiliations) and shows the three temporal conclusions of Example 3.2:

* the current truth is recovered from the freshest credible updates;
* S2 and S3 hold *out-of-date*, not false, values;
* S3 is a lazy copier of S1 (it always trails), while the slow S2 is
  exonerated by its early updates.

Then repeats the analysis on a synthetic evolving world where a
uniformly slow source would fool the raw order model, and the
freshness adjustment sorts it out.

Run:  python examples/temporal_copiers.py
"""

from repro.core.params import TemporalParams
from repro.datasets.paper_tables import table3_dataset
from repro.dependence.temporal import discover_temporal_dependence
from repro.generators import (
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_temporal_world,
)
from repro.temporal import TemporalTruthDiscovery


def table3_demo() -> None:
    print("=== Table 3: affiliation histories ===")
    dataset = table3_dataset()
    result = TemporalTruthDiscovery().discover(dataset)

    print("  inferred current truth:")
    for obj, value in sorted(result.current_truth.items()):
        print(f"    {obj:<12} {value}")

    print("\n  per-source value status (current / outdated / false):")
    for source in dataset.sources:
        counts = result.status_counts(source)
        quality = result.quality[source]
        print(
            f"    {source}: {counts['current']}/{counts['outdated']}/"
            f"{counts['false']}   coverage {quality.coverage:.2f}"
            f"   mean lag {quality.mean_lag:.2f}"
        )

    print("\n  temporal dependence:")
    for pair in sorted(result.dependence, key=lambda p: -p.p_dependent):
        copier = pair.likely_copier()
        print(
            f"    {pair.s1} ~ {pair.s2}: P = {pair.p_dependent:.3f}"
            f"   copier: {copier or '-'}"
        )


def synthetic_demo() -> None:
    print("\n=== Synthetic: slow provider vs lazy copier ===")
    config = TemporalConfig(
        n_objects=60,
        time_span=40.0,
        transitions_per_object=2.5,
        n_false_values=10,
        sources=[
            TemporalSourceSpec("fresh", lag=0.3, error_rate=0.1),
            TemporalSourceSpec("slow", lag=3.0, error_rate=0.1),
            TemporalSourceSpec("mid1", lag=1.0, error_rate=0.1),
            TemporalSourceSpec("mid2", lag=1.5, error_rate=0.1),
            TemporalSourceSpec("mid3", lag=0.7, error_rate=0.1),
        ],
        copiers=[
            TemporalCopierSpec("lazy", "fresh", poll_interval=3.0, copy_rate=0.8)
        ],
    )
    dataset, world = generate_temporal_world(config, seed=11)

    raw = discover_temporal_dependence(dataset, TemporalParams())
    adjusted = discover_temporal_dependence(
        dataset,
        TemporalParams(freshness_adjustment=1.0),
        leave_pair_out=True,
    )
    print("  pair                raw model   freshness-adjusted")
    for a, b in (("fresh", "lazy"), ("fresh", "slow"), ("fresh", "mid3")):
        print(
            f"  {a:<7} ~ {b:<8}  {raw.probability(a, b):.3f}       "
            f"{adjusted.probability(a, b):.3f}"
        )
    print("  (planted copier: lazy -> fresh; slow is independent but slow)")


if __name__ == "__main__":
    table3_demo()
    synthetic_demo()
