"""Quickstart: copy-aware truth discovery in a dozen lines.

Builds the paper's Table 1 (five sources reporting researcher
affiliations, two of them copying a third), runs naive voting and the
copy-aware DEPEN algorithm, and prints what each believes.

Run:  python examples/quickstart.py
"""

from repro import ClaimDataset, Depen, NaiveVote

# {object: {source: value}} — S4 and S5 copy S3, only S1 is fully right.
AFFILIATIONS = {
    "Suciu": {"S1": "UW", "S2": "MSR", "S3": "UW", "S4": "UW", "S5": "UWisc"},
    "Halevy": {"S1": "Google", "S2": "Google", "S3": "UW", "S4": "UW", "S5": "UW"},
    "Balazinska": {"S1": "UW", "S2": "UW", "S3": "UW", "S4": "UW", "S5": "UW"},
    "Dalvi": {"S1": "Yahoo!", "S2": "Yahoo!", "S3": "UW", "S4": "UW", "S5": "UW"},
    "Dong": {"S1": "AT&T", "S2": "Google", "S3": "UW", "S4": "UW", "S5": "UW"},
}


def main() -> None:
    dataset = ClaimDataset.from_table(AFFILIATIONS)

    vote = NaiveVote().discover(dataset)
    depen = Depen().discover(dataset)

    print(f"{'object':<12} {'naive vote':<10} {'depen':<10} confidence")
    for obj in dataset.objects:
        print(
            f"{obj:<12} {str(vote.decisions[obj]):<10} "
            f"{str(depen.decisions[obj]):<10} {depen.confidence(obj):.3f}"
        )

    print("\ndetected dependent pairs (posterior >= 0.5):")
    for pair in sorted(tuple(sorted(p)) for p in depen.dependence.detected_pairs()):
        a, b = pair
        print(f"  {a} ~ {b}   P = {depen.dependence.probability(a, b):.3f}")

    print("\nestimated source accuracies:")
    for source, accuracy in sorted(depen.accuracies.items()):
        print(f"  {source}: {accuracy:.3f}")


if __name__ == "__main__":
    main()
