"""Shared structural-pass machinery for the three dependence modalities.

All three dependence detectors — snapshot copy detection over a
:class:`~repro.core.dataset.ClaimDataset`, temporal co-adoption analysis
over a :class:`~repro.core.temporal_dataset.TemporalDataset`, and rater
similarity/dissimilarity over a
:class:`~repro.opinions.ratings.RatingMatrix` — share one computational
shape:

1. **one structural pass** over a *by-item* provider index (by object,
   by object again, by rated item), enumerating the provider pairs of
   each item into per-pair *slots* of item-level evidence records, which
   depend only on *which claims exist* and are therefore cached across
   rounds;
2. **a cheap soft refresh per round** of the parts that depend on the
   current model state (value probabilities, reference timelines, rater
   weights), applied over the cached slots.

Done naively — one dataset walk per candidate pair — each round costs
O(pairs) full walks; the structural pass costs one walk total. This
module holds the pieces of that pattern that are genuinely common:

* :func:`pair_key` — pair normalisation (``s1 < s2``) with self-pair
  rejection, used by every slot registry and result container;
* :class:`ProviderCap` — the deterministic hot-item guard: pair
  enumeration is O(providers²) per item, so pathologically hot items
  (thousands of providers) are truncated to a configured cap, with every
  truncation logged and recorded — never silent;
* :class:`PairSlotCollector` — the skeleton of the structural pass:
  slot registry, candidate admission (a fixed pair set, or every pair
  observed), and the per-item pair sweep.

:class:`~repro.dependence.evidence.EvidenceCache` (snapshot) builds on
:func:`pair_key` and :class:`ProviderCap` directly — its pass also
maintains incremental dirty-object state, which stays in that module.
:class:`~repro.dependence.temporal.CoAdoptionCollector` and
:class:`~repro.dependence.opinions.RaterPairCollector` subclass
:class:`PairSlotCollector`.
"""

from __future__ import annotations

import logging
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.core.types import ObjectId, SourceId
from repro.dependence.entrystore import PackedRecords
from repro.exceptions import DataError

logger = logging.getLogger("repro.dependence")

PairKey = tuple[SourceId, SourceId]


def pair_key(s1: SourceId, s2: SourceId) -> PairKey:
    """Normalise a source pair to ``s1 < s2``; self-pairs are rejected."""
    if s1 == s2:
        raise DataError(f"a source cannot pair with itself: {s1!r}")
    return (s1, s2) if s1 < s2 else (s2, s1)


class ProviderCap:
    """Deterministic per-item provider cap for pair enumeration.

    With ``cap=None`` every provider participates. Otherwise only the
    first ``cap`` providers *in sorted source order* of a hot item are
    enumerated — a deterministic function of the item's current provider
    set, so an incrementally maintained structure and a cold rebuild of
    the final state agree exactly. Each truncation is logged at WARNING
    and recorded in :attr:`truncated` (``item -> providers dropped``), so
    nothing is capped silently.
    """

    __slots__ = ("cap", "_truncated", "_quiet")

    def __init__(self, cap: int | None, *, quiet: bool = False) -> None:
        if cap is not None and cap < 2:
            raise DataError(f"provider cap must be >= 2 or None, got {cap}")
        self.cap = cap
        self._quiet = quiet  # shard workers record only; the parent's
        # absorb() does the one authoritative WARNING per truncation.
        self._truncated: dict[ObjectId, int] = {}

    @property
    def truncated(self) -> Mapping[ObjectId, int]:
        """Items whose pair enumeration was truncated: ``{item: dropped}``."""
        return dict(self._truncated)

    def kept(self, item: ObjectId, providers: Sequence) -> Sequence:
        """The prefix of ``providers`` (sorted by source) that participates."""
        cap = self.cap
        if cap is None or len(providers) <= cap:
            return providers
        dropped = len(providers) - cap
        if self._truncated.get(item) != dropped:
            self._truncated[item] = dropped
            if not self._quiet:
                logger.warning(
                    "hot-item guard: item %r has %d providers (cap %d); "
                    "%d provider(s) excluded from pair enumeration",
                    item,
                    len(providers),
                    cap,
                    dropped,
                )
        return providers[:cap]

    def clear(self, item: ObjectId) -> None:
        """Forget a truncation record (the item shrank back under the cap).

        Keeps :attr:`truncated` a pure function of the *current* provider
        sets when items lose providers (retraction/correction), matching
        what a cold enumeration of the final state would record.
        """
        self._truncated.pop(item, None)

    def absorb(self, truncated: Mapping[ObjectId, int]) -> None:
        """Fold a worker cap's truncation record into this one.

        Sharded sweeps apply the cap inside each worker with a *quiet*
        cap (worker logs either die with the process or, under fork,
        would duplicate the parent's), so this absorb emits the single
        authoritative WARNING per truncation — keeping the "never
        silent" guarantee without double-reporting.
        """
        for item, dropped in truncated.items():
            if self._truncated.get(item) != dropped:
                self._truncated[item] = dropped
                logger.warning(
                    "hot-item guard: item %r had %d provider(s) excluded "
                    "from pair enumeration (sharded sweep)",
                    item,
                    dropped,
                )


class PairSlotCollector:
    """Skeleton of the cached structural pass over a by-item index.

    Subclasses define the slot type (:meth:`_new_slot`) and what one
    item contributes to a pair's slot (:meth:`_collect`), then call
    :meth:`build` with the by-item groups: ``(item, providers)`` tuples
    where ``providers`` is a sequence of ``(source, payload)`` pairs in
    sorted source order. The payload carries whatever per-(item, source)
    state the modality needs — the claimed value, the first-adoption
    map, the rating.

    ``candidate_pairs`` fixes the pair set (pairs outside it are skipped
    during the sweep); ``None`` admits every pair that co-occurs on some
    item. Per-pair minimum-evidence thresholds (overlap, co-adoptions,
    co-rated items) are modality policy and belong in the subclass or at
    scoring time.
    """

    def __init__(
        self,
        candidate_pairs: Iterable[tuple[SourceId, SourceId]] | None = None,
        *,
        max_providers_per_item: int | None = None,
    ) -> None:
        self._slots: dict[PairKey, Any] = {}
        self._fixed = candidate_pairs is not None
        self._cap = ProviderCap(max_providers_per_item)
        self._packed: PackedRecords | None = None
        if candidate_pairs is not None:
            for s1, s2 in candidate_pairs:
                key = pair_key(s1, s2)
                self._slots[key] = self._new_slot(*key)

    # -- subclass hooks -------------------------------------------------

    def _new_slot(self, s1: SourceId, s2: SourceId) -> Any:
        """Create the empty slot for a (normalised) pair."""
        raise NotImplementedError

    def _collect(
        self,
        slot: Any,
        item: ObjectId,
        s1: SourceId,
        payload1: Any,
        s2: SourceId,
        payload2: Any,
    ) -> None:
        """Record one item's structural contribution to a pair's slot."""
        raise NotImplementedError

    # -- the structural pass --------------------------------------------

    def build(
        self,
        groups: Iterable[tuple[ObjectId, Sequence[tuple[SourceId, Any]]]],
        *,
        sweep: Any | None = None,
    ) -> None:
        """Run the structural pass over the by-item groups.

        Items must be supplied in sorted order and each group's providers
        in sorted source order, so every slot accumulates its records in
        a deterministic order (per-pair reference walks visit items
        sorted too — this is what makes batch and per-pair evidence
        comparable bit for bit).

        ``sweep`` (a :class:`~repro.dependence.sharding.SweepConfig`)
        selects the execution backend. Under ``"process"`` or
        ``"resident"`` the groups are cut into deterministic item-range
        shards, each shard runs this same pass in a worker (reusing the
        subclass hooks), and the shard registries are merged in shard
        order — so slot contents, derived pair admission order, and cap
        truncations are identical to the serial pass for every worker
        count. (Collector sweeps are one-shot, so ``"resident"`` buys no
        residency here — it simply runs the stateless task on the
        resident transport.) Requires list-like slots (every modality's
        are). ``"numpy"`` has no meaning for a generic payload sweep
        and runs serially.
        """
        self._packed = None  # a (re)build invalidates any prior packing
        if sweep is not None and sweep.backend in ("process", "resident"):
            from repro.dependence.sharding import (
                merge_collector_shards,
                run_collector_shards,
            )

            # close() in all cases: collectors have no lifecycle of
            # their own, so a persistent-pool executor created here
            # would otherwise leak its worker processes (close is a
            # no-op for the ephemeral default).
            with sweep.executor() as executor:
                shard_results, _ = run_collector_shards(
                    type(self),
                    list(groups),
                    list(self._slots) if self._fixed else None,
                    self._cap.cap,
                    executor,
                    sweep.planner(),
                )
            merge_collector_shards(
                shard_results,
                self._slots,
                self._new_slot,
                self._fixed,
                self._cap.absorb,
            )
            return
        slots = self._slots
        fixed = self._fixed
        for item, providers in groups:
            kept = self._cap.kept(item, providers)
            for i, (s1, payload1) in enumerate(kept):
                for s2, payload2 in kept[i + 1 :]:
                    slot = slots.get((s1, s2))
                    if slot is None:
                        if fixed:
                            continue
                        slot = self._new_slot(s1, s2)
                        slots[(s1, s2)] = slot
                    self._collect(slot, item, s1, payload1, s2, payload2)

    # -- registry accessors ---------------------------------------------

    @property
    def packed(self) -> PackedRecords:
        """The slot registry as one contiguous record store (lazy).

        The same flat-records-plus-segment-bounds layout the snapshot
        engine's columnar store uses
        (:mod:`repro.dependence.entrystore`): every pair's records sit
        in one contiguous run of a single list, in collection order, so
        per-round scoring loops read sequential segments instead of
        chasing one Python list per pair. Built on first access and
        invalidated by :meth:`build`; contents are identical to the
        slot registry by construction (the registry stays authoritative
        for equivalence tests and sharded merges).
        """
        if self._packed is None:
            self._packed = PackedRecords(self._slots)
        return self._packed

    def ensure_packed(self) -> PackedRecords:
        """Build the packed read path now (idempotent), and return it.

        Bulk per-pair scoring loops call this once up front: the
        scoring methods read through the packing only *when it exists*
        (point queries stay lazy and never pay the full pack), so a
        bulk caller must warm it explicitly. A named method rather
        than a bare ``collector.packed`` statement — the side effect
        is the point.
        """
        return self.packed

    @property
    def pairs(self) -> list[PairKey]:
        """The collected pairs, normalised ``s1 < s2``."""
        return list(self._slots)

    @property
    def truncated_items(self) -> Mapping[ObjectId, int]:
        """Hot items whose enumeration was capped: ``{item: dropped}``."""
        return self._cap.truncated

    def slot(self, s1: SourceId, s2: SourceId) -> Any:
        """The slot for one pair; raises if the pair was never collected."""
        key = pair_key(s1, s2)
        slot = self._slots.get(key)
        if slot is None:
            raise DataError(f"pair ({s1!r}, {s2!r}) was not collected")
        return slot

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[PairKey]:
        return iter(self._slots)

    def __contains__(self, pair: tuple[SourceId, SourceId]) -> bool:
        s1, s2 = pair
        if s1 == s2:
            return False  # a self-pair is never collected, not an error
        return ((s1, s2) if s1 < s2 else (s2, s1)) in self._slots
