"""Batch pair-evidence engine with round-to-round and ingest-to-ingest caching.

The iterative algorithms (DEPEN and friends) re-estimate pairwise
dependence every round. Done naively — :func:`~repro.dependence.bayes.collect_evidence`
once per candidate pair — each round re-walks the dataset O(pairs)
times, re-copying both sources' claim dicts per pair and, under the
empirical false-value model, recomputing each object's expected wrong
count once per pair per shared value. :class:`EvidenceCache` replaces
all of that with one structural pass at construction plus one cheap
soft refresh per round.

Cached vs refreshed split
-------------------------

The pair evidence ``(kt_soft, kf_soft, kd, shared_values)`` factors into
a part that depends only on *which claims exist* (static across rounds)
and a part that depends on the current ``value_probs``:

**Cached structurally** (one sweep over the by-object index at
construction, then maintained incrementally under ingest):

* the candidate pair set and, per pair, its *agreement list* — the
  shared ``(object, value)`` entries where both sources assert the same
  value, in sorted-object order — and its integer ``kd`` (overlap
  objects where they differ);
* agreement entries are deduplicated across pairs: every pair agreeing
  on ``(obj, v)`` references the same entry slot, so a value shared by
  a whole copier clique is refreshed once, not once per pair;
* per entry, the provider count ``m`` (for the empirical popularity);
* per object, the ordered ``(value, provider_count)`` list feeding the
  expected-wrong-provider count ``k_false``.

**Refreshed each round** (:meth:`EvidenceCache.refresh`, one sweep over
the deduplicated entries): the truth probability ``p_true`` of every
entry, and — empirical model only — each object's ``k_false`` and the
resulting per-entry popularity.

Columnar entry store
--------------------

``params.entry_store`` selects the physical layout of the agreement
structure. Under ``"columnar"`` (the ``"auto"`` default whenever numpy
is importable) every pair's agreement list is a *segment* of one flat
``int64`` array managed by
:class:`~repro.dependence.entrystore.ColumnarAgreeStore`, and the
per-round path runs as array ops: :meth:`refresh` gathers the entries'
probabilities and computes every pair's ``kt``/``kf`` with two
sequential ``bincount`` segment sums, and :meth:`collect_all` reads the
evidence straight off the arrays. ``np.bincount`` accumulates weights
in input order, so the sums are **bit-for-bit identical** to the
``"list"`` reference layout's Python loops — layout is execution
policy, never observable in results. Incremental repair
(:meth:`sync`) patches the arrays in place: within-segment shifts while
a segment has slack, relocation-plus-tombstone when it must grow, and a
compaction pass once dead cells outnumber live ones. The sharded build
backends emit the columnar store directly — shard record blocks
concatenate into the arrays without ever materialising per-pair Python
lists.

Incremental maintenance under mutation
--------------------------------------

The cache subscribes to its dataset's mutation log
(:meth:`~repro.core.dataset.ClaimDataset.mutations_since`), which
covers the full mutation algebra — adds, retractions and corrections —
and :meth:`EvidenceCache.sync` repairs exactly the structure the dirty
objects touch:

* for add-only deltas the pair slots gain the dirty objects' new
  agreement/``kd`` contributions (agreement lists keep sorted-object
  order via bisection, so the soft sums still accumulate in
  cold-rebuild order);
* for retractions and corrections the delta carries each touched
  source's *old* value, so the sync applies the **inverse delta**: the
  object's previously collected contributions are retired — agreement
  entries removed (tombstoned in the columnar store), ``kd`` counts
  decremented, entry refs released — and the current state is
  re-collected from scratch for that object;
* per-pair overlap counts are maintained both ways: a pair crossing the
  ``min_overlap`` threshold is *backfilled* (its full structure is
  collected from the two sources' coverage), one dropping below it is
  retired — so the candidate set stays exactly what a cold rebuild
  would derive;
* dirty objects' provider counts (``m``, ``k_false`` inputs) are
  recomputed; clean objects are untouched;
* with a hot-object cap (``params.max_providers_per_object``), a dirty
  object's capped provider prefix may change — its old contributions
  are removed and the new prefix's re-collected;
* under the ``resident`` backend the dirty rows are re-shipped to the
  pinned workers, with objects that fell below two providers shipped as
  tombstone rows so worker state never drifts.

The invariant, asserted by the equivalence tests: after *any* sequence
of mutation batches, the evidence served for every pair is bit-for-bit
identical to a cold ``EvidenceCache`` built on the final dataset.
:meth:`refresh`/:meth:`collect_all` sync automatically, so iterating
callers never observe a stale structural state.

Fast aggregate path
-------------------

Under the uniform false-value model with ``evidence_form="expected_log"``
the per-shared-value log-likelihood loop collapses: every shared value
uses the same ``Pf`` (``q_v`` is the uniform ``1/n`` floor for all of
them), so ``Σ [pᵢ·ln Pt + (1-pᵢ)·ln Pf] = kt·ln Pt + kf·ln Pf`` — exactly
the aggregate :func:`~repro.dependence.bayes._log_likelihood`. In that
mode the engine skips materialising ``shared_values`` entirely and emits
aggregate-count evidence, which
:func:`~repro.dependence.bayes.pair_posterior` scores with the closed
form. Pass ``exact=True`` to force per-value evidence anyway; the exact
mode reproduces :func:`~repro.dependence.bayes.collect_evidence` bit for
bit (same accumulation order — both walk objects sorted).
"""

from __future__ import annotations

import warnings
from bisect import bisect_left, insort
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None  # the "list" entry store and serial backend need none of it

from repro.core.dataset import ABSENT, ClaimDataset
from repro.core.params import DependenceParams
from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.bayes import PairEvidence, ValueProbabilities
from repro.dependence.collector import PairKey, ProviderCap, pair_key
from repro.dependence.entrystore import ColumnarAgreeStore, require_numpy
from repro.exceptions import (
    DataError,
    OverlapCalibrationWarning,
    ParameterError,
)

_EMPTY_PROBS: dict[Value, float] = {}


class _PairSlot:
    """Static structure of one candidate pair: agreement entries + kd.

    Under the ``"list"`` entry store ``agree`` holds the entry ids
    directly; under ``"columnar"`` the ids live in the shared
    :class:`~repro.dependence.entrystore.ColumnarAgreeStore` and the
    slot carries its segment geometry (``sid``/``start``/``length``/
    ``cap``, managed by the store) with ``agree`` set to ``None`` once
    packed.
    """

    __slots__ = ("s1", "s2", "agree", "kd", "sid", "start", "length", "cap")

    def __init__(self, s1: SourceId, s2: SourceId) -> None:
        self.s1 = s1
        self.s2 = s2
        self.agree: list[int] | None = []  # entry ids, sorted-object order
        self.kd = 0
        self.sid = -1
        self.start = 0
        self.length = 0
        self.cap = 0


class EvidenceCache:
    """Per-round batch evidence for all candidate pairs of a dataset.

    Parameters
    ----------
    dataset:
        The claim store. It may keep growing (ingest); the cache tracks
        its mutation log and repairs itself on :meth:`sync` (called
        automatically by :meth:`refresh`/:meth:`collect_all`).
    candidate_pairs:
        The pairs to analyse; ``None`` derives them from the per-object
        overlap counts with ``min_overlap`` — and keeps deriving them as
        the dataset grows. An explicit pair set is fixed: ingest updates
        the listed pairs' evidence but never adds pairs. Pairs are
        normalised to ``s1 < s2``; pairs with no overlap are legal and
        yield zero evidence (prior posterior).
    min_overlap:
        Overlap prefilter used only when ``candidate_pairs`` is ``None``.
    params:
        Selects the false-value model (whether popularity is needed),
        the evidence form (whether the fast aggregate path applies) and
        the hot-object provider cap.
    exact:
        Force per-value ``shared_values`` evidence even when the fast
        aggregate path would be valid — bit-for-bit identical to the
        per-pair :func:`~repro.dependence.bayes.collect_evidence`.
    executor:
        An externally owned :class:`repro.exec.ShardExecutor` to run
        sharded builds on. The cache *borrows* it: :meth:`close` leaves
        it alive for its owner (whereas an internally created executor
        is owned and closed). It must match ``params.parallel_backend``
        — a resident cache needs a resident-capable executor.

    Typical use::

        cache = EvidenceCache(dataset, params=params)
        for each round:
            for (s1, s2), ev in cache.collect_all(value_probs).items():
                graph.add(pair_posterior(ev, acc[s1], acc[s2], params))
    """

    def __init__(
        self,
        dataset: ClaimDataset,
        candidate_pairs: Iterable[tuple[SourceId, SourceId]] | None = None,
        *,
        min_overlap: int = 1,
        params: DependenceParams | None = None,
        exact: bool = False,
        executor=None,
    ) -> None:
        if params is None:
            params = DependenceParams()
        if min_overlap < 1:
            raise DataError(f"min_overlap must be >= 1, got {min_overlap}")
        self._dataset = dataset
        self._min_overlap = min_overlap
        self._false_value_model = params.false_value_model
        self._evidence_form = params.evidence_form
        self._cap_limit = params.max_providers_per_object
        self._overlap_bound = params.overlap_warning_bound
        self._overlap_policy = params.overlap_policy
        # overlap_policy="auto": under the hazardous expected_log+uniform
        # combination, pairs whose overlap reaches the bound are scored
        # with the empirical per-shared-value evidence form instead, so
        # popularity inputs must be collected even though small pairs
        # stay on the fast aggregate path. Inert in exact mode — exact
        # is the bit-for-bit reference against collect_evidence.
        self._auto_empirical = (
            params.overlap_policy == "auto"
            and self._overlap_bound is not None
            and not exact
            and params.false_value_model == "uniform"
            and params.evidence_form == "expected_log"
        )
        self._with_popularity = (
            params.false_value_model == "empirical" or self._auto_empirical
        )
        self._fast = (
            not exact
            and params.false_value_model == "uniform"
            and params.evidence_form == "expected_log"
        )
        self._fixed = candidate_pairs is not None
        self._candidate_pairs = (
            None
            if candidate_pairs is None
            else [pair_key(s1, s2) for s1, s2 in candidate_pairs]
        )
        self._backend = params.parallel_backend
        self._num_workers = params.num_workers
        self._shard_size = params.shard_size
        # Supervision policy for internally created executors: retries,
        # per-batch deadline and the degradation ladder (see
        # repro.exec.supervisor). Captured as plain fields so the exec
        # package stays a lazy import.
        self._supervision = (
            params.max_retries,
            params.task_deadline,
            params.degrade_on_failure,
        )
        if params.entry_store == "columnar":
            require_numpy()  # fail at construction, not mid-build
        self._columnar = params.entry_store == "columnar" or (
            params.entry_store == "auto" and np is not None
        )
        self._persistent_pool = params.pool == "persistent"
        # Executor ownership is explicit: a caller-supplied executor is
        # borrowed (close() leaves it alive); an internally created one
        # (lazily, on the first sharded build) is owned and closed.
        self._executor = executor
        self._owns_executor = executor is None
        self._resident = self._backend == "resident"
        # Resident bookkeeping survives build() calls: the parent keeps
        # the code maps that describe what the workers hold, so a warm
        # rebuild ships nothing and an incremental sync ships only
        # dirty-object row deltas.
        self._resident_fresh = False
        self._resident_sources: list[SourceId] | None = None
        self._resident_src_code: dict[SourceId, int] | None = None
        self._resident_entry_code: (
            dict[tuple[ObjectId, Value], int] | None
        ) = None
        self._last_build_shipped_bytes = 0
        self._last_sync_shipped_bytes = 0
        # The calibration hazard is specific to expected_log+uniform and
        # the warning to overlap_policy="warn" ("auto" acts instead of
        # warning, "ignore" silences); when armed, overlap growth
        # maintains a high-water mark so the warning check is O(1)
        # instead of an O(pairs) scan per sync.
        self._overlap_armed = (
            self._overlap_bound is not None
            and self._overlap_policy == "warn"
            and params.false_value_model == "uniform"
            and self._evidence_form == "expected_log"
        )
        self.build()

    def build(self) -> None:
        """(Re)run the structural pass from the dataset's current state.

        The constructor calls this once; calling it again forces a cold
        rebuild in place, discarding all cached structure (useful after
        a mutation-log compaction strands the incremental path). The
        pass dispatches on ``params.parallel_backend``: ``"serial"``
        sweeps in-process, ``"numpy"``, ``"process"`` and ``"resident"``
        run the sharded sweep of :mod:`repro.dependence.sharding` —
        in-process vectorised, or fanned out through a
        :class:`repro.exec.ShardExecutor` — whose order-canonicalised
        merge is bit-for-bit identical to the serial path for every
        worker count.

        Under the ``"resident"`` backend a rebuild while the workers'
        shard state still matches the dataset (no ingest since the last
        sync) is *warm*: the workers re-sweep their resident rows and
        only the record blocks travel — no payload bytes are shipped.
        """
        warm = (
            self._resident
            and self._resident_fresh
            and self._executor is not None
            and getattr(self, "_plan", None) is not None
            and getattr(self, "_synced_version", -1) == self._dataset.version
        )
        # A warm rebuild re-derives everything from the resident rows —
        # except the cap's truncation record, which only the packing
        # pass produces; replay the previous one (it is a pure function
        # of the dataset, which has not changed).
        prev_plan = self._plan if warm else None
        prev_truncated = dict(self._cap.truncated) if warm else None
        self._refreshed = False
        self._cap = ProviderCap(self._cap_limit)
        # Entry store: parallel arrays indexed by entry id, with freed
        # ids recycled. An entry is one deduplicated (object, value)
        # agreement, referenced by every pair slot that shares it.
        self._entry_obj: list[ObjectId | None] = []
        self._entry_value: list[Value | None] = []
        self._entry_refs: list[int] = []
        self._entry_m: list[int] = []  # provider counts (empirical only)
        self._p: list[float] = []
        self._pop: list[float] | None = [] if self._with_popularity else None
        self._free: list[int] = []
        # Per-object entry registry: obj -> {value: entry id}.
        self._groups: dict[ObjectId, dict[Value, int]] = {}
        # Per-object (value, provider_count) lists for k_false (empirical).
        self._value_counts: dict[ObjectId, list[tuple[Value, int]]] = {}
        self._slots: dict[PairKey, _PairSlot] = {}
        self._co_counts: dict[PairKey, int] | None = (
            None if self._fixed else {}
        )
        self._plan = None
        self._last_sync_routing: dict[int, int] = {}
        self._store: ColumnarAgreeStore | None = (
            ColumnarAgreeStore() if self._columnar else None
        )
        self._kt: list[float] = []
        self._kf: list[float] = []
        self._kt_arr = None
        self._kf_arr = None
        self._p_arr = None
        self._pop_arr = None
        # Batched posterior engines, memoized per params (they read the
        # columnar layout directly and re-derive their static state when
        # the structural epoch moves, so they survive build()/sync()).
        self._posterior_engines = getattr(self, "_posterior_engines", {})
        # Entry-epoch versioning for the table gather: any change to the
        # entry registry (rebuild, new entry, freed entry) invalidates
        # the cached entry-id -> table-slot index.
        self._entry_epoch = getattr(self, "_entry_epoch", 0) + 1
        self._gather = None
        self._gather_key: tuple | None = None
        self._gather_rows = None
        self._table_row_of_slot = None
        self._table_n_rows = 0
        self._sid_to_key: dict[int, PairKey] = {}
        self._sid_to_key_key: tuple | None = None
        self._warned_overlap = False
        self._overlap_mark: tuple[int, PairKey | None] = (0, None)
        if self._backend == "serial":
            self._build_serial()
            if self._store is not None:
                # The object-major sweep necessarily scatters across
                # slots; pack its per-slot lists into the flat store
                # once, then drop them.
                self._store.pack(
                    (slot, slot.agree) for slot in self._slots.values()
                )
                for slot in self._slots.values():
                    slot.agree = None
        elif warm:
            self._plan = prev_plan
            self._build_resident_warm(prev_truncated)
        else:
            self._build_sharded()
        self._synced_version = self._dataset.version
        # A fresh structure invalidates every previously served pair.
        self._dirty_pairs: set[PairKey] = set(self._slots)
        self._dirty_probs_objects: set[ObjectId] = set()
        if self._overlap_armed:
            for slot in self._slots.values():
                self._note_overlap(slot)
        self._warn_overlap_calibration()

    def _build_serial(self) -> None:
        # --- structural pass: one sweep over the by-object index ------
        # Per object: pair up the (cap-filtered) providers once,
        # splitting each candidate pair's overlap into agreement entries
        # and kd. Objects are visited in sorted order so every pair's
        # agreement list — and therefore every soft sum built from it —
        # follows the same order as the per-pair reference walk.
        dataset = self._dataset
        scan: list[tuple[ObjectId, list[SourceId], Mapping]] = []
        counts = self._co_counts
        for obj in dataset.objects:
            providers = dataset.claims_about_view(obj)
            if len(providers) < 2:
                continue
            kept = list(self._cap.kept(obj, sorted(providers)))
            scan.append((obj, kept, providers))
            if counts is not None:
                for i, s1 in enumerate(kept):
                    for s2 in kept[i + 1 :]:
                        key = (s1, s2)
                        counts[key] = counts.get(key, 0) + 1

        if self._candidate_pairs is not None:
            for key in self._candidate_pairs:
                self._slots[key] = _PairSlot(*key)
        else:
            assert counts is not None
            for key in sorted(
                pair
                for pair, count in counts.items()
                if count >= self._min_overlap
            ):
                self._slots[key] = _PairSlot(*key)

        slots = self._slots
        for obj, kept, providers in scan:
            for i, s1 in enumerate(kept):
                v1 = providers[s1].value
                for s2 in kept[i + 1 :]:
                    slot = slots.get((s1, s2))
                    if slot is None:
                        continue
                    v2 = providers[s2].value
                    if v2 != v1:
                        slot.kd += 1
                        continue
                    eid = self._entry_for(obj, v1)
                    slot.agree.append(eid)  # objects swept sorted: in order
                    self._entry_refs[eid] += 1

    def _build_sharded(self) -> None:
        """Sharded structural pass (``"numpy"`` / ``"process"`` backends).

        The by-object index is packed into per-shard numpy code arrays
        (cap filtering and ``(object, value)`` entry interning happen
        here, parent-side, so workers are pure functions of their
        payload), the shards are swept under the configured executor,
        and the record blocks are merged canonically: candidate pairs
        are selected from global counts sorted on
        :func:`~repro.dependence.collector.pair_key` order, records are
        re-sorted on ``(pair, object)``, and entries are deduplicated on
        their interning codes — every step independent of shard
        boundaries, worker count and completion order, which is what
        makes the result bit-for-bit identical to :meth:`_build_serial`.
        """
        try:
            import numpy as np
        except ImportError as exc:
            raise ParameterError(
                "parallel_backend "
                f"{self._backend!r} needs numpy for its packed shard "
                "payloads; install numpy or use parallel_backend='serial'"
            ) from exc

        from repro.dependence.sharding import (
            RecordBlock,
            ShardPayload,
            ShardPlanner,
        )

        dataset = self._dataset
        sources = dataset.sources
        src_code = {source: i for i, source in enumerate(sources)}
        n_sources = len(sources)

        # Pack: one O(claims) pass interning entry codes per (obj, value).
        objs: list[ObjectId] = []
        lengths: list[int] = []
        flat_src: list[int] = []
        flat_entry: list[int] = []
        entry_decode: list[tuple[ObjectId, Value]] = []
        for obj in dataset.objects:
            providers = dataset.claims_about_view(obj)
            if len(providers) < 2:
                continue
            kept = self._cap.kept(obj, sorted(providers))
            local: dict[Value, int] = {}
            for source in kept:
                value = providers[source].value
                code = local.get(value)
                if code is None:
                    code = len(entry_decode)
                    entry_decode.append((obj, value))
                    local[value] = code
                flat_src.append(src_code[source])
                flat_entry.append(code)
            objs.append(obj)
            lengths.append(len(kept))

        planner = ShardPlanner(self._num_workers, self._shard_size)
        plan = planner.plan(objs)
        self._plan = plan
        src_arr = np.asarray(flat_src, dtype=np.int64)
        entry_arr = np.asarray(flat_entry, dtype=np.int64)
        len_arr = np.asarray(lengths, dtype=np.int64)
        claim_bounds = np.zeros(len(objs) + 1, dtype=np.int64)
        np.cumsum(len_arr, out=claim_bounds[1:])
        payloads = []
        for shard_id, (start, end) in enumerate(plan.ranges()):
            lo, hi = int(claim_bounds[start]), int(claim_bounds[end])
            payloads.append(
                ShardPayload(
                    shard_id=shard_id,
                    obj_base=start,
                    src=src_arr[lo:hi],
                    entry=entry_arr[lo:hi],
                    lengths=len_arr[start:end],
                    n_sources=n_sources,
                )
            )
        if self._executor is None:
            from repro.exec import SupervisorPolicy, make_executor

            max_retries, task_deadline, degrade = self._supervision
            self._executor = make_executor(
                self._backend,
                self._num_workers,
                persistent=self._persistent_pool,
                supervise=SupervisorPolicy(
                    max_retries=max_retries,
                    task_deadline=task_deadline,
                    degrade_on_failure=degrade,
                ),
                # The cache owns the source of truth, so the supervisor
                # can re-pack any shard a dead worker took down and
                # retry without the cache ever seeing the loss.
                state_provider=(
                    self._resident_pack_shards if self._resident else None
                ),
            )
            self._owns_executor = True
        if self._resident:
            # Cold resident build: ship each shard's packed rows once
            # (the workers retain them), then sweep worker-side. The
            # parent records the code maps describing what was shipped,
            # so later syncs ship only dirty-row deltas and later warm
            # builds ship nothing.
            self._resident_sources = list(sources)
            self._resident_src_code = dict(src_code)
            self._resident_entry_code = {
                key: code for code, key in enumerate(entry_decode)
            }
            self._resident_fresh = False
            shard_states = {}
            for shard_id, (start, end) in enumerate(plan.ranges()):
                shard_states[shard_id] = {
                    "objs": objs[start:end],
                    "src": [
                        flat_src[claim_bounds[i] : claim_bounds[i + 1]]
                        for i in range(start, end)
                    ],
                    "entry": [
                        flat_entry[claim_bounds[i] : claim_bounds[i + 1]]
                        for i in range(start, end)
                    ],
                    "n_sources": n_sources,
                }
            before = self._executor.bytes_shipped
            self._resident_call("resident.adopt", shard_states)
            blocks = self._resident_call(
                "resident.sweep", {sid: None for sid in shard_states}
            )
            self._last_build_shipped_bytes = (
                self._executor.bytes_shipped - before
            )
            records = RecordBlock.concatenate(
                [blocks[sid] for sid in sorted(blocks)]
            )
            self._resident_fresh = True
        else:
            records = RecordBlock.concatenate(
                self._executor.run("evidence.sweep_shard", payloads)
            )
        self._merge_records(
            records, sources, src_code, n_sources, entry_decode
        )

    def _merge_records(
        self, records, sources, src_code, n_sources, entry_decode
    ) -> None:
        """Order-canonicalised merge of swept record blocks.

        Candidate selection, record canonicalisation, entry dedup and
        slot fill — everything downstream of the executor — shared by
        the cold sharded build and the warm resident rebuild. Record
        ``obj`` values are never consumed here (the stable pair sort
        relies only on within-shard order), which is what lets resident
        workers sweep with shard-local ``obj_base=0``.
        """
        import numpy as np

        dataset = self._dataset
        pair = records.pair

        # Candidate selection — sorted composite pair ids enumerate the
        # pairs in exactly sorted pair_key order (codes are the sources'
        # sorted ranks), matching the serial slot-creation order.
        if self._candidate_pairs is not None:
            for key in self._candidate_pairs:
                self._slots[key] = _PairSlot(*key)
            wanted = set()
            for s1, s2 in self._slots:
                c1 = src_code.get(s1)
                c2 = src_code.get(s2)
                if c1 is not None and c2 is not None:
                    wanted.add(c1 * n_sources + c2)
            selected_ids = np.asarray(sorted(wanted), dtype=np.int64)
        else:
            # Dense bincount beats sort-based np.unique while the pair-id
            # space is within a small factor of the record count; huge
            # source universes fall back to the sparse path.
            id_space = n_sources * n_sources
            if pair.size and id_space <= 4 * pair.size + 65536:
                full = np.bincount(pair, minlength=id_space)
                uniq = np.nonzero(full)[0]
                counts = full[uniq]
            else:
                uniq, counts = np.unique(pair, return_counts=True)
            self._co_counts = {
                (sources[u // n_sources], sources[u % n_sources]): c
                for u, c in zip(uniq.tolist(), counts.tolist())
            }
            selected_ids = uniq[counts >= self._min_overlap]
            for u in selected_ids.tolist():
                key = (sources[u // n_sources], sources[u % n_sources])
                self._slots[key] = _PairSlot(*key)

        # Canonicalise the records: keep selected pairs, sort (pair, obj).
        if selected_ids.size and pair.size:
            pos = np.minimum(
                np.searchsorted(selected_ids, pair), selected_ids.size - 1
            )
            valid = selected_ids[pos] == pair
            pair_c = pos[valid]
            entry_f = records.entry[valid]
            agree_f = records.agree[valid]
            # Blocks arrive (pair, obj)-sorted per shard and concatenate
            # in ascending-object shard order, so a *stable* sort on the
            # pair alone restores the global (pair, obj) order — and on
            # k pre-sorted runs it is nearly linear. Compact ids fit a
            # small dtype, which lets numpy pick its fastest stable sort.
            if selected_ids.size <= np.iinfo(np.int16).max:
                order = np.argsort(pair_c.astype(np.int16), kind="stable")
            else:
                order = np.argsort(pair_c, kind="stable")
            pair_c = pair_c[order]
            entry_f = entry_f[order]
            agree_f = agree_f[order]
        else:
            pair_c = np.empty(0, dtype=np.int64)
            entry_f = np.empty(0, dtype=np.int64)
            agree_f = np.empty(0, dtype=bool)
        n_selected = int(selected_ids.size)
        kd_counts = np.bincount(pair_c[~agree_f], minlength=n_selected)
        agree_pair = pair_c[agree_f]
        agree_entry = entry_f[agree_f]

        # Entry store, in bulk: unique interning codes become entry ids.
        # Codes were assigned object-major during packing, so code order
        # is first-encounter order — the same registry the serial pass
        # builds one `_entry_for` call at a time. Codes are dense
        # (bounded by the pack), so a bincount + lookup table does the
        # dedup without a sort.
        refs_full = np.bincount(agree_entry, minlength=len(entry_decode))
        uniq_codes = np.nonzero(refs_full)[0]
        eid_of = np.full(max(len(entry_decode), 1), -1, dtype=np.int64)
        eid_of[uniq_codes] = np.arange(uniq_codes.size)
        inverse = eid_of[agree_entry]
        self._entry_refs = refs_full[uniq_codes].tolist()
        for code in uniq_codes.tolist():
            obj, value = entry_decode[code]
            self._entry_obj.append(obj)
            self._entry_value.append(value)
            self._groups.setdefault(obj, {})[value] = len(self._entry_obj) - 1
        self._p = [0.0] * len(self._entry_obj)
        if self._with_popularity:
            self._entry_m = [
                dataset.providers_count(obj, value)
                for obj, value in zip(self._entry_obj, self._entry_value)
            ]
            self._pop = [1.0] * len(self._entry_obj)
            for obj in self._groups:
                self._value_counts[obj] = [
                    (v, len(sources_of))
                    for v, sources_of in dataset.values_for_view(obj).items()
                ]

        # Fill the slots: agreement records are (pair, object)-sorted,
        # so each pair's slice is its agreement list in the sorted-object
        # order every soft sum relies on.
        agree_counts = np.bincount(agree_pair, minlength=n_selected)
        bounds = np.zeros(n_selected + 1, dtype=np.int64)
        np.cumsum(agree_counts, out=bounds[1:])
        if self._store is not None:
            # Columnar adoption: the canonicalised record arrays already
            # *are* the store layout — segment-contiguous, object-sorted
            # — so the merge hands them over wholesale instead of
            # rebuilding per-slot Python lists. Slot ids follow registry
            # order (fixed candidate pairs may include pairs the sweep
            # never saw; they get empty segments).
            for sid, slot in enumerate(self._slots.values()):
                slot.agree = None
                slot.sid = sid
            selected_slots = [
                self._slots[(sources[u // n_sources], sources[u % n_sources])]
                for u in selected_ids.tolist()
            ]
            starts = bounds.tolist()
            lengths = agree_counts.tolist()
            for i, slot in enumerate(selected_slots):
                slot.kd = int(kd_counts[i])
                slot.start = starts[i]
                slot.length = lengths[i]
                slot.cap = lengths[i]
            if selected_slots:
                sid_of_selected = np.asarray(
                    [slot.sid for slot in selected_slots], dtype=np.int64
                )
                record_sids = sid_of_selected[agree_pair]
            else:
                record_sids = np.empty(0, dtype=np.int64)
            self._store.adopt(inverse, record_sids, len(self._slots))
        else:
            eids = inverse.tolist()
            for i, u in enumerate(selected_ids.tolist()):
                slot = self._slots[
                    (sources[u // n_sources], sources[u % n_sources])
                ]
                slot.kd = int(kd_counts[i])
                slot.agree = eids[bounds[i] : bounds[i + 1]]

    # ------------------------------------------------------------------
    # resident execution (worker-held shard state)
    # ------------------------------------------------------------------

    def _build_resident_warm(self, prev_truncated) -> None:
        """Rebuild from worker-resident rows: zero payload bytes shipped.

        Valid only while the workers' rows still describe the dataset
        (checked by :meth:`build`): the workers re-sweep what they hold
        and only the result blocks travel back. The merge is the cold
        one; the historical entry-code interning order differs from a
        cold pack's object-major order, but entry numbering is never
        observable in served evidence (segments keep object order and
        every soft sum follows segment order).
        """
        from repro.dependence.sharding import RecordBlock

        sources = self._resident_sources
        executor = self._executor
        before = executor.bytes_shipped
        blocks = self._resident_call(
            "resident.sweep",
            {sid: None for sid in range(self._plan.n_shards)},
        )
        self._last_build_shipped_bytes = executor.bytes_shipped - before
        records = RecordBlock.concatenate(
            [blocks[sid] for sid in sorted(blocks)]
        )
        self._merge_records(
            records,
            sources,
            self._resident_src_code,
            len(sources),
            list(self._resident_entry_code),
        )
        if prev_truncated:
            self._cap.absorb(prev_truncated)

    def _resident_call(self, task: str, deltas: dict) -> dict:
        """Run a resident task, surviving worker crashes.

        A crash surfaces as :exc:`~repro.exec.ResidentWorkerLost`
        naming the shards whose worker-held state died. The parent owns
        the source of truth, so recovery is re-ship-and-retry: re-pack
        those shards from the dataset, adopt them onto the respawned
        worker, and re-run the whole batch — safe because every
        resident task is idempotent (``adopt`` and ``delta`` replace,
        ``sweep`` is pure).

        A supervised executor (every internally created one) does all
        of this itself — re-adoption through its state provider,
        bounded retries, backoff, the degradation ladder — so the call
        goes straight through; the legacy re-ship loop below only
        serves caller-supplied raw executors.
        """
        if getattr(self._executor, "handles_worker_loss", False):
            return self._executor.run_shards(task, deltas)

        from repro.exec import ResidentWorkerLost

        pending_reship: set[int] = set()
        for _ in range(5):
            try:
                if pending_reship:
                    self._executor.run_shards(
                        "resident.adopt",
                        self._resident_pack_shards(sorted(pending_reship)),
                    )
                    pending_reship.clear()
                return self._executor.run_shards(task, deltas)
            except ResidentWorkerLost as lost:
                pending_reship.update(lost.shard_ids)
        raise RuntimeError(
            f"resident workers kept dying during {task!r}; giving up "
            f"after repeated state re-ships (shards {sorted(pending_reship)})"
        )

    def _resident_row(
        self, obj: ObjectId, providers: Mapping
    ) -> tuple[list[int], list[int]]:
        """One object's kept providers as resident (src, entry) code rows.

        The same cap prefix and sorted-provider order the packing pass
        uses, expressed in the resident code maps (new ``(obj, value)``
        entries are interned into the persistent registry, so worker
        rows stay mutually consistent across syncs).
        """
        kept = sorted(providers)
        cap = self._cap_limit
        if cap is not None and len(kept) > cap:
            kept = kept[:cap]
        src_code = self._resident_src_code
        entry_code = self._resident_entry_code
        row_src: list[int] = []
        row_entry: list[int] = []
        for source in kept:
            value = providers[source].value
            code = entry_code.get((obj, value))
            if code is None:
                code = len(entry_code)
                entry_code[(obj, value)] = code
            row_src.append(src_code[source])
            row_entry.append(code)
        return row_src, row_entry

    def _resident_pack_shards(self, shard_ids) -> dict[int, dict]:
        """Pack the named shards' states from the dataset.

        Used for crash recovery (re-ship what a dead worker held) and
        for the re-arm path — both replay the packing pass for a subset
        of shards, against the current dataset, in the resident code
        maps.
        """
        wanted = set(shard_ids)
        n_sources = len(self._resident_sources)
        states = {
            sid: {"objs": [], "src": [], "entry": [], "n_sources": n_sources}
            for sid in wanted
        }
        dataset = self._dataset
        plan = self._plan
        for obj in dataset.objects:
            sid = plan.shard_of(obj)
            if sid not in wanted:
                continue
            providers = dataset.claims_about_view(obj)
            if len(providers) < 2:
                continue
            row_src, row_entry = self._resident_row(obj, providers)
            state = states[sid]
            state["objs"].append(obj)
            state["src"].append(row_src)
            state["entry"].append(row_entry)
        return states

    def _resident_rearm(self) -> None:
        """Full re-pack and re-ship after the source universe grew.

        New sources change the pair-id code space every resident row is
        expressed in, so every row is stale at once. Rebuilding the
        code maps (and the plan — the object universe may have grown
        too) and re-adopting all shards keeps residency alive for a
        stream instead of degrading to cold builds forever; the bytes
        shipped are counted against the sync that triggered it.
        """
        from repro.dependence.sharding import ShardPlanner

        dataset = self._dataset
        self._resident_fresh = False
        sources = dataset.sources
        self._resident_sources = list(sources)
        self._resident_src_code = {s: i for i, s in enumerate(sources)}
        self._resident_entry_code = {}
        eligible = [
            obj
            for obj in dataset.objects
            if len(dataset.claims_about_view(obj)) >= 2
        ]
        self._plan = ShardPlanner(self._num_workers, self._shard_size).plan(
            eligible
        )
        self._resident_call(
            "resident.adopt",
            self._resident_pack_shards(range(self._plan.n_shards)),
        )
        self._resident_fresh = True

    def _resident_sync_ship(self, delta: Mapping, dirty_sorted) -> None:
        """Keep worker rows current across a sync: ship row deltas.

        The parent-side repair is already done (and is authoritative);
        this ships each dirty object's *final* row — kept providers and
        entry codes — to its shard's worker, so the next warm build or
        worker-side sweep sees exactly the state a cold pack would. A
        dirty object that fell below two providers (retractions) ships
        an empty tombstone row, which the worker-side ``apply_delta``
        interprets as "delete this object" — without it the worker would
        keep sweeping the stale pre-retraction row forever. Bytes
        shipped are exposed via :attr:`last_sync_shipped_bytes`.
        """
        self._last_sync_shipped_bytes = 0
        if self._executor is None or not self._resident_fresh:
            # No live workers (closed) or already stale: the next build
            # is cold anyway; do not let worker state drift silently.
            self._resident_fresh = False
            return
        executor = self._executor
        before = executor.bytes_shipped
        src_code = self._resident_src_code
        dataset = self._dataset
        if self._plan.n_shards == 0 or any(
            source not in src_code
            for obj in dirty_sorted
            for source in dataset.claims_about_view(obj)
        ):
            # A zero-shard plan (no object had two providers at build
            # time) leaves freshly eligible rows nowhere to route; new
            # sources invalidate the code space of every row. Both are
            # solved the same way: re-plan and re-ship. (The check walks
            # the dirty objects' *current* providers: a mutated claim's
            # source set can gain members through corrections too, not
            # just through the adds the old delta shape carried.)
            self._resident_rearm()
        else:
            rows_by_shard: dict[int, list] = {}
            for obj in dirty_sorted:
                providers = dataset.claims_about_view(obj)
                if len(providers) < 2:
                    # Tombstone: the worker deletes the object's row (a
                    # no-op if it never held one, e.g. an object that
                    # was always below the two-provider floor).
                    rows_by_shard.setdefault(
                        self._plan.shard_of(obj), []
                    ).append((obj, [], []))
                    continue
                row_src, row_entry = self._resident_row(obj, providers)
                rows_by_shard.setdefault(
                    self._plan.shard_of(obj), []
                ).append((obj, row_src, row_entry))
            if rows_by_shard:
                self._resident_call("resident.delta", rows_by_shard)
        self._last_sync_shipped_bytes = executor.bytes_shipped - before

    # ------------------------------------------------------------------
    # entry store
    # ------------------------------------------------------------------

    def _entry_for(self, obj: ObjectId, value: Value) -> int:
        """Get or create the deduplicated entry for one (obj, value)."""
        entries = self._groups.get(obj)
        if entries is None:
            entries = {}
            self._groups[obj] = entries
            if self._with_popularity:
                self._value_counts[obj] = [
                    (v, len(sources_of))
                    for v, sources_of in self._dataset.values_for_view(
                        obj
                    ).items()
                ]
        eid = entries.get(value)
        if eid is not None:
            return eid
        if self._free:
            eid = self._free.pop()
            self._entry_obj[eid] = obj
            self._entry_value[eid] = value
            self._entry_refs[eid] = 0
            self._p[eid] = 0.0
            if self._with_popularity:
                self._entry_m[eid] = self._dataset.providers_count(obj, value)
                self._pop[eid] = 1.0  # type: ignore[index]
        else:
            eid = len(self._entry_obj)
            self._entry_obj.append(obj)
            self._entry_value.append(value)
            self._entry_refs.append(0)
            self._p.append(0.0)
            if self._with_popularity:
                self._entry_m.append(self._dataset.providers_count(obj, value))
                self._pop.append(1.0)  # type: ignore[union-attr]
        entries[value] = eid
        self._entry_epoch += 1
        return eid

    def _release_entry(self, eid: int) -> None:
        """Drop one reference; free the entry when nothing points at it."""
        self._entry_refs[eid] -= 1
        if self._entry_refs[eid] > 0:
            return
        obj = self._entry_obj[eid]
        entries = self._groups[obj]
        del entries[self._entry_value[eid]]
        if not entries:
            del self._groups[obj]
            self._value_counts.pop(obj, None)
        self._entry_obj[eid] = None
        self._entry_value[eid] = None
        self._free.append(eid)
        self._entry_epoch += 1

    # ------------------------------------------------------------------
    # incremental maintenance (dirty-object invalidation)
    # ------------------------------------------------------------------

    def sync(self) -> set[ObjectId]:
        """Apply the dataset's mutations since the last sync.

        Returns the dirty objects repaired (empty when already in sync).
        Called automatically by :meth:`refresh` / :meth:`collect_all`;
        call it directly to pay the structural repair eagerly at ingest
        time instead of at the next refresh.

        With a sharded build the dirty objects are routed through the
        shard plan first (:attr:`last_sync_routing` records the shards
        affected) — only those shards' slot segments are repaired.
        Because shards are ascending object ranges, the routed repair
        order is identical to the flat sorted walk, so the repaired
        state stays bit-for-bit equal to a cold rebuild either way.
        """
        dataset = self._dataset
        self._last_sync_routing = {}
        if dataset.version == self._synced_version:
            return set()
        delta = dataset.mutations_since(self._synced_version)
        self._synced_version = dataset.version
        self._refreshed = False
        backfilled: set[PairKey] = set()
        dirty_sorted = sorted(delta)
        if self._plan is not None:
            routed = self._plan.route(dirty_sorted)
            self._last_sync_routing = {
                shard: len(objs) for shard, objs in sorted(routed.items())
            }
            dirty_sorted = [
                obj for shard in sorted(routed) for obj in routed[shard]
            ]
        for obj in dirty_sorted:
            self._apply_object_delta(obj, delta[obj], backfilled)
        if self._resident:
            self._resident_sync_ship(delta, dirty_sorted)
        if self._store is not None:
            # Tombstones from removals/retirements accumulate across
            # syncs; reclaim once they outnumber the live cells. The
            # compaction renumbers slot ids, which is safe exactly here:
            # the delta already invalidated the per-sid sums (refresh is
            # mandatory before the next evidence read).
            self._store.maybe_compact(self._slots.values())
        self._warn_overlap_calibration()
        return set(delta)

    def _apply_object_delta(
        self,
        obj: ObjectId,
        touched: Mapping[SourceId, Any],
        backfilled: set[PairKey],
    ) -> None:
        """Repair one dirty object's pair contributions.

        ``touched`` is the object's slice of
        :meth:`~repro.core.dataset.ClaimDataset.mutations_since`: each
        mutated source mapped to its value at the cache's previous
        synced version (:data:`~repro.core.dataset.ABSENT` when it
        asserted nothing then). Pure adds take the incremental
        only-new-pairs path; any retraction or correction takes the
        inverse-delta path — retire every contribution the old state
        made, then re-collect the current state — which is
        history-independent and therefore bit-for-bit equal to a cold
        rebuild.
        """
        dataset = self._dataset
        providers = dataset.claims_about_view(obj)
        cap = self._cap_limit
        if any(old is not ABSENT for old in touched.values()):
            # Inverse delta: reconstruct the provider→value map the
            # cache collected (untouched sources keep their current
            # value; touched sources their logged old value), retire its
            # capped prefix's contributions, then re-collect the current
            # prefix. Entry dedup plus object-sorted segments make the
            # final structure independent of this retire/re-add detour.
            old_values = {
                s: c.value for s, c in providers.items() if s not in touched
            }
            for source, old in touched.items():
                if old is not ABSENT:
                    old_values[source] = old
            kept_old: list[SourceId] = []
            if len(old_values) >= 2:
                old_sorted = sorted(old_values)
                kept_old = old_sorted[:cap] if cap is not None else old_sorted
            kept_new: list[SourceId] = []
            if len(providers) >= 2:
                kept_new = list(self._cap.kept(obj, sorted(providers)))
            # A source untouched by the delta and kept in both prefixes
            # contributes the same value to the same pairs before and
            # after: pairs with two such endpoints need no retire/re-add
            # (their agreement entries, kd counts and co-counts are all
            # unchanged — only the object's value probabilities moved,
            # which _dirty_probs_objects already covers).
            stable = (set(kept_old) & set(kept_new)) - set(touched)
            if len(kept_old) >= 2:
                self._remove_object_pairs(
                    obj, kept_old, old_values, backfilled, stable=stable
                )
            for i, s1 in enumerate(kept_new):
                in_stable = s1 in stable
                for s2 in kept_new[i + 1 :]:
                    if in_stable and s2 in stable:
                        continue
                    self._add_pair_on_object(
                        obj, s1, s2, providers, backfilled
                    )
            if cap is not None and len(providers) <= cap:
                # A shrunk object is no longer truncated; a cold rebuild
                # would not record it.
                self._cap.clear(obj)
            if obj not in self._groups:
                # Nothing agrees on the object any more (or it fell
                # below two providers): no popularity inputs to refresh.
                self._dirty_probs_objects.add(obj)
                return
        elif len(providers) < 2:
            return
        else:
            # A source can be added *and* retracted between syncs: its
            # first logged old value is ABSENT (nothing to retire) and
            # it is absent now (nothing to collect) — drop it.
            new_sources = {s for s in touched if s in providers}
            all_sorted = sorted(providers)
            if cap is not None and len(all_sorted) > cap:
                # The capped prefix may have changed: retire the old
                # prefix's contributions, collect the new prefix's. When
                # the new sources all sort past the prefix (the common
                # case for a hot object) the prefix — and every
                # contribution — is unchanged, and only the popularity
                # inputs need refreshing.
                old_sorted = [s for s in all_sorted if s not in new_sources]
                kept_old = old_sorted[:cap]
                kept_new = list(self._cap.kept(obj, all_sorted))
                if kept_new != kept_old:
                    self._remove_object_pairs(
                        obj,
                        kept_old,
                        {s: providers[s].value for s in kept_old},
                        backfilled,
                    )
                    for i, s1 in enumerate(kept_new):
                        for s2 in kept_new[i + 1 :]:
                            self._add_pair_on_object(
                                obj, s1, s2, providers, backfilled
                            )
            else:
                # Providers only grew: everything previously collected
                # for this object stands; only pairs with a new endpoint
                # appear.
                new_sorted = sorted(new_sources)
                old_sorted = [s for s in all_sorted if s not in new_sources]
                for s_new in new_sorted:
                    for s_old in old_sorted:
                        key = (
                            (s_new, s_old) if s_new < s_old else (s_old, s_new)
                        )
                        self._add_pair_on_object(
                            obj, key[0], key[1], providers, backfilled
                        )
                for i, s1 in enumerate(new_sorted):
                    for s2 in new_sorted[i + 1 :]:
                        self._add_pair_on_object(
                            obj, s1, s2, providers, backfilled
                        )
        # Provider counts changed: refresh the object's popularity inputs.
        if self._with_popularity and obj in self._groups:
            self._value_counts[obj] = [
                (v, len(sources_of))
                for v, sources_of in dataset.values_for_view(obj).items()
            ]
            for value, eid in self._groups[obj].items():
                self._entry_m[eid] = dataset.providers_count(obj, value)
        # A dirty object's value probabilities (and, empirically, its
        # popularity inputs) shift even for pairs whose *structure* this
        # delta left alone — every pair agreeing on the object must
        # re-score. Enumerating those value-group pairs here would put
        # O(group²) work on every sync whether or not anyone consumes
        # dirty-pair tracking, so only the object is recorded; the
        # expansion happens lazily in :meth:`dirty_pairs`.
        self._dirty_probs_objects.add(obj)

    def _add_pair_on_object(
        self,
        obj: ObjectId,
        s1: SourceId,
        s2: SourceId,
        providers: Mapping,
        backfilled: set[PairKey],
    ) -> None:
        """Record that (s1, s2) now overlap on ``obj``; s1 < s2."""
        key = (s1, s2)
        counts = self._co_counts
        if counts is not None:
            count = counts.get(key, 0) + 1
            counts[key] = count
            slot = self._slots.get(key)
            if slot is None:
                if count >= self._min_overlap:
                    self._backfill_pair(key)
                    backfilled.add(key)
                return
        else:
            slot = self._slots.get(key)
            if slot is None:
                return
        if key in backfilled:
            return  # the backfill already collected the final state
        self._dirty_pairs.add(key)
        v1 = providers[s1].value
        v2 = providers[s2].value
        if v1 != v2:
            slot.kd += 1
        else:
            eid = self._entry_for(obj, v1)
            if self._store is None:
                insort(slot.agree, eid, key=self._entry_obj.__getitem__)
            else:
                self._store.insert(
                    slot, self._segment_bisect(slot, obj), eid
                )
            self._entry_refs[eid] += 1
        if self._overlap_armed:
            self._note_overlap(slot)

    def _segment_bisect(self, slot: _PairSlot, obj: ObjectId) -> int:
        """Position of ``obj`` in the slot's object-sorted segment.

        A pair agrees on at most one value per object, so the segment
        holds at most one entry per object: the bisection point is both
        the insertion position for a new object and the exact position
        of an existing one.
        """
        return bisect_left(
            self._store.segment(slot), obj, key=self._entry_obj.__getitem__
        )

    def _remove_object_pairs(
        self,
        obj: ObjectId,
        kept_old: list[SourceId],
        values: Mapping[SourceId, Value],
        backfilled: set[PairKey],
        stable: frozenset[SourceId] | set[SourceId] = frozenset(),
    ) -> None:
        """Retire the contributions the old capped prefix made for ``obj``.

        ``values`` maps each kept source to the value it asserted in the
        state being retired — the *current* claims for a cap-prefix
        retirement, the reconstructed old map for a mutation's inverse
        delta. Pairs with both endpoints in ``stable`` are skipped: the
        caller established their contribution survives the delta
        unchanged, so neither their entries nor their co-counts move.
        """
        counts = self._co_counts
        for i, s1 in enumerate(kept_old):
            v1 = values[s1]
            in_stable = s1 in stable
            for s2 in kept_old[i + 1 :]:
                if in_stable and s2 in stable:
                    continue
                key = (s1, s2)
                if counts is not None:
                    remaining = counts[key] - 1
                    if remaining:
                        counts[key] = remaining
                    else:
                        del counts[key]
                slot = self._slots.get(key)
                if slot is None:
                    continue
                if key not in backfilled:
                    # (A backfilled slot already reflects the final state
                    # of every object, this one included.)
                    self._dirty_pairs.add(key)
                    if values[s2] != v1:
                        slot.kd -= 1
                    else:
                        eid = self._groups[obj][v1]
                        if self._store is None:
                            slot.agree.remove(eid)
                        else:
                            self._store.remove(
                                slot, self._segment_bisect(slot, obj)
                            )
                        self._release_entry(eid)
                if (
                    counts is not None
                    and counts.get(key, 0) < self._min_overlap
                ):
                    self._drop_slot(key)

    def _drop_slot(self, key: PairKey) -> None:
        """Retire a pair that fell below the overlap threshold."""
        slot = self._slots.pop(key)
        self._dirty_pairs.add(key)
        if self._store is None:
            for eid in slot.agree:
                self._release_entry(eid)
        else:
            for eid in self._store.segment(slot).tolist():
                self._release_entry(eid)
            self._store.release(slot)

    def _backfill_pair(self, key: PairKey) -> None:
        """Collect a newly eligible pair's full structure from scratch.

        Walks the two sources' shared coverage once — the same walk the
        per-pair reference path does — honouring the hot-object cap, so
        the slot matches what a cold rebuild would have produced.
        """
        s1, s2 = key
        dataset = self._dataset
        self._dirty_pairs.add(key)
        slot = _PairSlot(s1, s2)
        agree = slot.agree
        claims1 = dataset.claims_by_view(s1)
        claims2 = dataset.claims_by_view(s2)
        smaller = claims1 if len(claims1) <= len(claims2) else claims2
        larger = claims2 if smaller is claims1 else claims1
        cap = self._cap_limit
        for obj in sorted(o for o in smaller if o in larger):
            if cap is not None:
                view = dataset.claims_about_view(obj)
                if len(view) > cap:
                    kept = self._cap.kept(obj, sorted(view))
                    if s1 not in kept or s2 not in kept:
                        continue
            v1 = claims1[obj].value
            if claims2[obj].value != v1:
                slot.kd += 1
                continue
            eid = self._entry_for(obj, v1)
            agree.append(eid)  # objects walked sorted: order holds
            self._entry_refs[eid] += 1
        if self._store is not None:
            self._store.new_sid(slot)
            self._store.append_segment(slot, agree)
            slot.agree = None
        self._slots[key] = slot
        if self._overlap_armed:
            self._note_overlap(slot)

    # ------------------------------------------------------------------
    # per-round refresh
    # ------------------------------------------------------------------

    def refresh(self, value_probs) -> None:
        """Recompute the ``value_probs``-dependent soft parts.

        Syncs any pending dataset mutations first, then makes one sweep
        over the deduplicated agreement entries; under the empirical
        model each object's ``k_false`` is computed once here instead of
        once per pair per shared value.

        ``value_probs`` is either the classic nested dict or a
        :class:`~repro.truth.columnar.ValueProbTable`. With a table the
        per-entry dict probes disappear entirely: the entries' truth
        probabilities are read **positionally** — one cached
        entry-id-to-table-slot gather — and (empirical model) each
        object's ``k_false`` and the per-entry popularities are derived
        as segment sums over the table's own arrays, in the dict walk's
        accumulation order, so the results stay bit-for-bit identical.

        With the columnar store the dict-input entry sweep only *probes*
        the new probabilities (dict lookups are irreducible while
        ``value_probs`` is a nested dict); everything downstream — the
        per-slot ``kt``/``kf`` sums over every agreement reference,
        previously the dominant per-round Python loop — happens here as
        one gather plus two sequential ``bincount`` segment sums,
        bit-for-bit identical to the list walk.
        """
        self.sync()
        self._refreshed = True
        if not isinstance(value_probs, dict):
            self._refresh_from_table(value_probs)
            return
        p = self._p
        if self._pop is None:
            for obj, entries in self._groups.items():
                obj_probs = value_probs.get(obj, _EMPTY_PROBS)
                for value, eid in entries.items():
                    p[eid] = obj_probs.get(value, 0.0)
            self._refresh_columnar()
            return
        pop = self._pop
        entry_m = self._entry_m
        value_counts = self._value_counts
        for obj, entries in self._groups.items():
            obj_probs = value_probs.get(obj, _EMPTY_PROBS)
            k_false = sum(
                count * (1.0 - obj_probs.get(value, 0.0))
                for value, count in value_counts[obj]
            )
            for value, eid in entries.items():
                p[eid] = obj_probs.get(value, 0.0)
                if k_false > 1.0:
                    pop[eid] = min(1.0, (entry_m[eid] - 1) / (k_false - 1.0))
                else:
                    pop[eid] = 1.0
        self._refresh_columnar()

    def _refresh_columnar(self) -> None:
        """Derive the per-slot soft sums from the refreshed entries."""
        store = self._store
        if store is None:
            return
        self._p_arr = np.asarray(self._p, dtype=np.float64)
        self._kt_arr, self._kf_arr = store.sums(self._p_arr)
        # Scalar consumers (collect_all's positional fast path, the
        # per-pair _build) read Python floats; tolist keeps their types
        # — and therefore their arithmetic — exactly as before.
        self._kt = self._kt_arr.tolist()
        self._kf = self._kf_arr.tolist()
        if self._pop is not None:
            self._pop_arr = np.asarray(self._pop, dtype=np.float64)

    def _refresh_from_table(self, table) -> None:
        """Table-input refresh: positional gathers, no per-entry probes.

        The entries' probabilities are one gather through the cached
        entry-to-slot index; the empirical model's per-object
        ``k_false`` is a per-object segment sum over the table's slot
        arrays (counts times ``1 - p`` accumulated in slot order — the
        dict walk's order, so the sums are bit-for-bit identical) and
        the per-entry popularity a vectorised clamp of
        ``(m - 1) / (k_false - 1)``.
        """
        require_numpy()
        if (
            getattr(table, "probs", None) is None
            or not hasattr(table, "slot")
        ):
            raise DataError(
                "value_probs must be a nested {object: {value: p}} dict "
                f"or a ValueProbTable, got {type(table).__name__}"
            )
        if table.dataset is not self._dataset:
            raise DataError(
                "value-probability table is bound to a different "
                "ClaimDataset than this evidence cache"
            )
        if table.dataset_version != self._synced_version:
            raise DataError(
                f"value-probability table snapshots dataset version "
                f"{table.dataset_version}, cache is at "
                f"{self._synced_version} — rebuild the table after ingest"
            )
        gather = self._table_gather(table)
        p_arr = table.probs[gather]
        pop_arr = None
        if self._pop is not None:
            k_false = np.bincount(
                table.row_of_slot,
                weights=table.counts * (1.0 - table.probs),
                minlength=len(table.objects),
            )
            kf_entries = k_false[table.row_of_slot[gather]]
            m = np.asarray(self._entry_m, dtype=np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                pop_arr = np.where(
                    kf_entries > 1.0,
                    np.minimum(1.0, (m - 1.0) / (kf_entries - 1.0)),
                    1.0,
                )
        if self._store is not None:
            self._p_arr = p_arr
            self._kt_arr, self._kf_arr = self._store.sums(p_arr)
            self._kt = self._kt_arr.tolist()
            self._kf = self._kf_arr.tolist()
            self._pop_arr = pop_arr
        else:
            self._p = p_arr.tolist()
            if pop_arr is not None:
                self._pop = pop_arr.tolist()

    def _table_gather(self, table):
        """The entry-id -> table-slot index, rebuilt only when stale.

        Keyed on the table identity/version and the cache's entry epoch:
        while neither side's structure changed, the per-round refresh
        pays a single array gather and zero Python-level lookups.
        """
        key = (table.uid, table.dataset_version, self._entry_epoch)
        if self._gather_key != key:
            slot = table.slot
            self._gather = np.asarray(
                [
                    0 if obj is None else slot(obj, value)
                    for obj, value in zip(self._entry_obj, self._entry_value)
                ],
                dtype=np.int64,
            )
            # Object rows back the popularity-aware moved-pair test:
            # k_false sums over ALL of an object's slots, so under the
            # empirical model an entry's evidence moves whenever any
            # sibling slot of its object moved.
            self._gather_rows = table.row_of_slot[self._gather]
            self._table_row_of_slot = table.row_of_slot
            self._table_n_rows = len(table.objects)
            self._gather_key = key
        return self._gather

    def pairs_with_moved_entries(self, moved) -> set[PairKey]:
        """Candidate pairs referencing an agreement entry flagged in ``moved``.

        ``moved`` is a table-slot-indexed boolean array — typically the
        moved-entry mask of the
        :class:`~repro.truth.columnar.ValueProbTable` the last
        :meth:`refresh` consumed (or a drift mask accumulated from it).
        An unflagged pair has bit-for-bit the same
        ``kt``/``kf``/``shared_values`` as before that update; together
        with unchanged endpoint accuracies that makes its previous
        posterior exact for reuse — the restriction DEPEN's iterative
        rounds apply. Without popularity the test is per entry (the
        evidence depends only on the entries' own probabilities); when
        popularity is collected (empirical model, or escaped pairs
        under ``overlap_policy="auto"``) it widens to per *object*:
        each entry's popularity reads ``k_false`` summed over ALL of
        its object's slots, so a sibling slot's move flags the entry's
        pairs too. Requires the last refresh to have consumed a table
        (the entry-to-slot gather must exist and match the current
        structural state).
        """
        entry_mask = self.moved_entry_mask(moved)
        if self._store is not None:
            # The sid -> key reverse map shares the gather's staleness
            # exactly (both die with the entry epoch / structural
            # state), so it is cached on the same key rather than
            # rebuilt O(pairs) per round.
            if self._sid_to_key_key != self._gather_key:
                self._sid_to_key = {
                    slot.sid: key for key, slot in self._slots.items()
                }
                self._sid_to_key_key = self._gather_key
            sid_to_key = self._sid_to_key
            return {
                sid_to_key[sid]
                for sid in self._store.flagged_sids(entry_mask).tolist()
                if sid in sid_to_key
            }
        flags = entry_mask.tolist()
        return {
            key
            for key, slot in self._slots.items()
            if any(flags[eid] for eid in slot.agree)
        }

    def moved_entry_mask(self, moved):
        """Entry-id-indexed boolean mask of agreement entries that moved.

        The entry-level half of :meth:`pairs_with_moved_entries` —
        ``moved`` is the same table-slot-indexed drift mask, widened to
        per-object flags under the empirical/popularity models. Exposed
        separately so the batched posterior engine can map it onto pair
        *positions* without building a key set.
        """
        if (
            self._gather is None
            or not self._refreshed
            or self._gather_key is None
            or self._gather_key[2] != self._entry_epoch
        ):
            raise DataError(
                "no table-based refresh against the current structure — "
                "call refresh(table) before asking which pairs moved"
            )
        moved = np.asarray(moved, dtype=bool)
        if self._pop is not None:
            moved_rows = np.zeros(self._table_n_rows, dtype=bool)
            moved_rows[self._table_row_of_slot[moved]] = True
            return moved_rows[self._gather_rows]
        return moved[self._gather]

    def posterior_engine(self, params: DependenceParams):
        """The memoized batched posterior engine for this cache.

        Columnar store only. One engine per distinct ``params`` — the
        engine caches position-indexed static arrays keyed on the
        structural epoch, so reuse across rounds (and across
        ``sync()``/``build()`` calls) is safe and cheap.
        """
        engine = self._posterior_engines.get(params)
        if engine is None:
            from repro.dependence.bayes_batch import BatchedPosteriorEngine

            engine = BatchedPosteriorEngine(self, params)
            self._posterior_engines[params] = engine
        return engine

    # ------------------------------------------------------------------
    # per-pair round stamps (restricted re-scoring baselines)
    # ------------------------------------------------------------------

    def pair_round_stamps(self) -> dict[PairKey, int]:
        """Each pair's last-scored round stamp (columnar store only).

        Stamps back DEPEN's per-pair drift baselines: a pair's
        accumulated input drift is measured since the round *it* was
        last scored, not since the last global re-score. Slots created
        after the last full stamp (backfilled pairs) carry stamp 0 —
        "never scored" — so consumers treat them as always affected.
        """
        store = self._store
        if store is None:
            raise DataError(
                "per-pair round stamps live in the columnar entry store — "
                "build the cache with entry_store='columnar'"
            )
        stamps = store.stamps
        return {
            key: int(stamps[slot.sid]) for key, slot in self._slots.items()
        }

    def stamp_pairs(self, keys: Iterable[PairKey], round_index: int) -> None:
        """Record that ``keys`` were (re)scored at ``round_index``."""
        store = self._store
        if store is None:
            raise DataError(
                "per-pair round stamps live in the columnar entry store — "
                "build the cache with entry_store='columnar'"
            )
        slots = self._slots
        store.set_stamps(
            [slots[key].sid for key in keys if key in slots], round_index
        )

    def stamp_all_pairs(self, round_index: int) -> None:
        """Record that every current pair was scored at ``round_index``."""
        store = self._store
        if store is None:
            raise DataError(
                "per-pair round stamps live in the columnar entry store — "
                "build the cache with entry_store='columnar'"
            )
        store.stamp_all(round_index)

    # ------------------------------------------------------------------
    # evidence accessors
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> list[PairKey]:
        """The candidate pairs, normalised ``s1 < s2``."""
        return list(self._slots)

    @property
    def truncated_objects(self) -> Mapping[ObjectId, int]:
        """Hot objects whose pair enumeration was capped: ``{obj: dropped}``."""
        return self._cap.truncated

    @property
    def synced_version(self) -> int:
        """The dataset version the structural state reflects."""
        return self._synced_version

    @property
    def shard_plan(self):
        """The :class:`~repro.dependence.sharding.ShardPlan` of the last
        sharded build, or ``None`` under the serial backend."""
        return self._plan

    @property
    def last_sync_routing(self) -> Mapping[int, int]:
        """Shards the last :meth:`sync` routed repairs to: ``{shard: objects}``.

        Empty under the serial backend (no plan to route through) and
        after a sync that found nothing dirty.
        """
        return dict(self._last_sync_routing)

    def dirty_pairs(self) -> set[PairKey]:
        """Pairs whose served evidence may differ since the last clear.

        Accumulated by :meth:`build` (everything) and :meth:`sync`:
        pairs whose slots were structurally touched, pairs retired or
        backfilled, and pairs agreeing on a dirty object — whose soft
        evidence shifts through the object's value probabilities even
        when their structure did not change. The value-group expansion
        of dirty objects happens here, not during sync, so callers that
        never consume the tracking never pay for it; expanding against
        the *current* dataset is safe because any pair whose agreement
        set changed — including through retractions, corrections and
        capped-prefix shifts — was structurally touched during sync and
        is already marked; the expansion only needs the pairs whose
        structure stood while the object's probabilities moved, and
        those agree on the object *now*.

        Non-destructive — call :meth:`clear_dirty_pairs` once the pairs
        have actually been re-scored, so a failure in between never
        loses invalidations. Retired pairs appear here but no longer
        serve evidence; the caller filters. This is what lets
        :meth:`~repro.dependence.streaming.StreamingDependenceEngine.discover`
        re-score only the pairs that can have moved.
        """
        expanded = set(self._dirty_pairs)
        slots = self._slots
        dataset = self._dataset
        cap = self._cap_limit
        for obj in self._dirty_probs_objects:
            providers = dataset.claims_about_view(obj)
            if len(providers) < 2:
                continue
            kept = (
                set(sorted(providers)[:cap])
                if cap is not None and len(providers) > cap
                else None
            )
            for sources_of in dataset.values_for_view(obj).values():
                if len(sources_of) < 2:
                    continue
                group = sorted(
                    s for s in sources_of if kept is None or s in kept
                )
                for i, s1 in enumerate(group):
                    for s2 in group[i + 1 :]:
                        if (s1, s2) in slots:
                            expanded.add((s1, s2))
        return expanded

    def clear_dirty_pairs(self) -> None:
        """Reset dirty-pair tracking after the consumer re-scored them."""
        self._dirty_pairs = set()
        self._dirty_probs_objects = set()

    @property
    def dataset(self) -> ClaimDataset:
        """The claim store this cache is bound to."""
        return self._dataset

    @property
    def entry_store(self) -> str:
        """The resolved store layout: ``"columnar"`` or ``"list"``."""
        return "columnar" if self._store is not None else "list"

    @property
    def executor(self):
        """The live :class:`repro.exec.ShardExecutor`, or ``None``."""
        return self._executor

    @property
    def owns_executor(self) -> bool:
        """Whether :meth:`close` closes the executor (vs borrowing it)."""
        return self._owns_executor

    def execution_health(self) -> dict:
        """The supervised executor's health counters, if one is live.

        ``{"supervised": False}`` for in-process execution, borrowed
        raw executors, or before the first sharded build; otherwise the
        supervisor's :meth:`~repro.exec.supervisor.SupervisedExecutor.health`
        dict (current backend, degradation state, retry/deadline/loss
        counters) under ``"supervised": True``.
        """
        health = getattr(self._executor, "health", None)
        if health is None:
            return {"supervised": False}
        return {"supervised": True, **health()}

    @property
    def last_build_shipped_bytes(self) -> int:
        """Payload bytes serialized to workers by the last :meth:`build`.

        Resident backend only (0 otherwise): a cold build ships every
        shard's packed rows; a warm build ships nothing but the sweep
        requests themselves.
        """
        return self._last_build_shipped_bytes

    @property
    def last_sync_shipped_bytes(self) -> int:
        """Payload bytes serialized to workers by the last delta-bearing
        :meth:`sync` (resident backend only; 0 otherwise). Dirty-row
        deltas in the common case; a full re-ship when new sources
        forced a re-arm or a crashed worker's state was rebuilt.
        """
        return self._last_sync_shipped_bytes

    def close(self) -> None:
        """Release the worker executor, if this cache owns one.

        Owned executors (created internally for ``pool="persistent"``
        process pools or the ``"resident"`` backend) are closed and
        dropped — for the resident backend this discards the workers'
        shard state, so the next build is cold. A borrowed executor
        (passed to the constructor) is left alive for its owner.
        Idempotent; the cache stays usable — the next sharded build
        simply starts a fresh executor.
        """
        if self._executor is None:
            return
        if self._owns_executor:
            self._executor.close()
            self._executor = None
            self._resident_fresh = False

    def __enter__(self) -> "EvidenceCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _note_overlap(self, slot: _PairSlot) -> None:
        """Raise the overlap high-water mark after a slot grew.

        Called from every growth site (build, delta repair, backfill),
        so :meth:`_warn_overlap_calibration` stays O(1) per sync instead
        of scanning all pairs. Removals do not lower the mark — a
        high-water semantic is exactly right for a warning that should
        fire once if the hazardous regime was ever entered.
        """
        shared = (
            slot.length if self._store is not None else len(slot.agree)
        )
        overlap = shared + slot.kd
        if overlap > self._overlap_mark[0]:
            self._overlap_mark = (overlap, (slot.s1, slot.s2))

    def _warn_overlap_calibration(self) -> None:
        """One structured warning when expected_log+uniform leaves its
        calibrated regime (see ``DependenceParams.overlap_warning_bound``
        and :class:`~repro.exceptions.OverlapCalibrationWarning`)."""
        if not self._overlap_armed or self._warned_overlap:
            return
        worst, worst_key = self._overlap_mark
        if worst < self._overlap_bound:
            return
        self._warned_overlap = True
        warnings.warn(
            f"candidate pair {worst_key!r} overlaps on {worst} objects "
            f"(calibration bound: {self._overlap_bound}). The default "
            "evidence model "
            "(evidence_form='expected_log' with false_value_model="
            "'uniform') is known to over-detect dependence on overlaps "
            "this large — 184 false positives at threshold 0.9 on a "
            "200-object, 20-source world where the alternatives found "
            "none. Prefer false_value_model='empirical' or "
            "evidence_form='marginal' at this scale, or set "
            "DependenceParams(overlap_warning_bound=None) after "
            "validating the workload.",
            OverlapCalibrationWarning,
            # No stacklevel: build and sync reach here at different
            # depths, so no fixed value lands on the user's call site —
            # point consistently at the library rather than misattribute.
        )

    def check_bound(self, dataset: ClaimDataset, min_overlap: int) -> None:
        """Raise unless the cache serves this dataset and pair policy.

        An injected cache silently answering for a *different* dataset —
        or for a laxer overlap prefilter than the caller asked for —
        would produce wrong truths with no error, so callers accepting
        external caches (:meth:`~repro.truth.depen.Depen.discover`)
        validate the binding up front. Explicit-pair caches skip the
        ``min_overlap`` comparison: their pair set ignores it by design.
        """
        if dataset is not self._dataset:
            raise DataError(
                "evidence cache is bound to a different ClaimDataset than "
                "the one being analysed — build a cache on this dataset"
            )
        if not self._fixed and min_overlap != self._min_overlap:
            raise DataError(
                f"evidence cache derives candidate pairs with min_overlap="
                f"{self._min_overlap}, but the caller asked for "
                f"min_overlap={min_overlap} — build a matching cache"
            )

    def check_compatible(self, params: DependenceParams) -> None:
        """Raise unless the cache was built for this evidence model.

        The cache bakes the false-value model (popularity collected or
        not), the evidence form (fast aggregate path or not) and the
        hot-object cap (candidate-pair derivation) into its structure;
        scoring its output under different params would be silently
        wrong.
        """
        if (
            params.false_value_model != self._false_value_model
            or params.evidence_form != self._evidence_form
            or params.max_providers_per_object != self._cap_limit
            or params.overlap_policy != self._overlap_policy
            or (
                params.overlap_policy == "auto"
                and params.overlap_warning_bound != self._overlap_bound
            )
        ):
            raise DataError(
                "evidence cache was built for "
                f"false_value_model={self._false_value_model!r}, "
                f"evidence_form={self._evidence_form!r}, "
                f"max_providers_per_object={self._cap_limit!r}, "
                f"overlap_policy={self._overlap_policy!r}; cannot score "
                f"under false_value_model={params.false_value_model!r}, "
                f"evidence_form={params.evidence_form!r}, "
                f"max_providers_per_object={params.max_providers_per_object!r},"
                f" overlap_policy={params.overlap_policy!r}"
                " — build a new cache"
            )

    def evidence(self, s1: SourceId, s2: SourceId) -> PairEvidence:
        """Evidence for one pair, from the *last* :meth:`refresh`."""
        if not self._refreshed:
            raise DataError(
                "evidence cache has not been refreshed yet — call "
                "refresh(value_probs) or collect_all(value_probs) first"
            )
        if self._dataset.version != self._synced_version:
            raise DataError(
                "dataset has grown since the last refresh — call "
                "refresh(value_probs) or collect_all(value_probs) to fold "
                "the new claims in"
            )
        key = pair_key(s1, s2)
        slot = self._slots.get(key)
        if slot is None:
            raise DataError(f"pair ({s1!r}, {s2!r}) is not a candidate pair")
        return self._build(slot)

    def collect_all(
        self, value_probs: ValueProbabilities
    ) -> dict[PairKey, PairEvidence]:
        """Refresh and return evidence for every candidate pair."""
        self.refresh(value_probs)
        if self._store is not None and self._fast and not self._auto_empirical:
            # Columnar fast path: the refresh already produced every
            # pair's sums; assembly is one positional construction per
            # pair (kwargs cost ~25% of the whole round at this width).
            kt, kf = self._kt, self._kf
            evidence = PairEvidence
            return {
                key: evidence(
                    slot.s1,
                    slot.s2,
                    kt[slot.sid],
                    kf[slot.sid],
                    slot.kd,
                    None,
                    slot.length,
                )
                for key, slot in self._slots.items()
            }
        return {key: self._build(slot) for key, slot in self._slots.items()}

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[PairKey]:
        return iter(self._slots)

    def __contains__(self, pair: tuple[SourceId, SourceId]) -> bool:
        s1, s2 = pair
        if s1 == s2:
            return False  # a self-pair is never a candidate, not an error
        return ((s1, s2) if s1 < s2 else (s2, s1)) in self._slots

    def _slot_escaped(self, slot: _PairSlot) -> bool:
        """Does ``overlap_policy="auto"`` switch this pair to empirical?

        Evaluated against the slot's *current* overlap, so pairs that
        grow across the bound under ingest switch exactly when a cold
        rebuild would have switched them.
        """
        if not self._auto_empirical:
            return False
        shared = slot.length if self._store is not None else len(slot.agree)
        return shared + slot.kd >= self._overlap_bound

    def _build(self, slot: _PairSlot) -> PairEvidence:
        if self._store is not None:
            return self._build_columnar(slot)
        p = self._p
        kt = 0.0
        kf = 0.0
        escaped = self._slot_escaped(slot)
        if self._fast and not escaped:
            for eid in slot.agree:
                p_true = p[eid]
                kt += p_true
                kf += 1.0 - p_true
            shared_values = None
        else:
            pop = self._pop
            shared: list[tuple[float, float]] = []
            if pop is None:
                for eid in slot.agree:
                    p_true = p[eid]
                    kt += p_true
                    kf += 1.0 - p_true
                    shared.append((p_true, -1.0))  # -1: use the uniform 1/n
            else:
                for eid in slot.agree:
                    p_true = p[eid]
                    kt += p_true
                    kf += 1.0 - p_true
                    shared.append((p_true, pop[eid]))
            shared_values = tuple(shared)
        return PairEvidence(
            s1=slot.s1,
            s2=slot.s2,
            kt_soft=kt,
            kf_soft=kf,
            kd=slot.kd,
            shared_values=shared_values,
            shared_count=len(slot.agree),
            calibrated=escaped,
        )

    def _build_columnar(self, slot: _PairSlot) -> PairEvidence:
        """Evidence straight off the arrays: sums were computed by the
        last :meth:`refresh`; per-value detail (non-fast modes) is one
        gather over the slot's segment."""
        sid = slot.sid
        escaped = self._slot_escaped(slot)
        if self._fast and not escaped:
            shared_values = None
        else:
            seg = self._store.segment(slot)
            probs = self._p_arr[seg].tolist()
            if self._pop is None:
                shared_values = tuple((p_true, -1.0) for p_true in probs)
            else:
                shared_values = tuple(
                    zip(probs, self._pop_arr[seg].tolist())
                )
        return PairEvidence(
            s1=slot.s1,
            s2=slot.s2,
            kt_soft=self._kt[sid],
            kf_soft=self._kf[sid],
            kd=slot.kd,
            shared_values=shared_values,
            shared_count=slot.length,
            calibrated=escaped,
        )
