"""Batch pair-evidence engine with round-to-round caching.

The iterative algorithms (DEPEN and friends) re-estimate pairwise
dependence every round. Done naively — :func:`~repro.dependence.bayes.collect_evidence`
once per candidate pair — each round re-walks the dataset O(pairs)
times, re-copying both sources' claim dicts per pair and, under the
empirical false-value model, recomputing each object's expected wrong
count once per pair per shared value. :class:`EvidenceCache` replaces
all of that with one structural pass at construction plus one cheap
soft refresh per round.

Cached vs refreshed split
-------------------------

The pair evidence ``(kt_soft, kf_soft, kd, shared_values)`` factors into
a part that depends only on *which claims exist* (static across rounds —
the claims never change while truth is being iterated) and a part that
depends on the current ``value_probs``:

**Cached once, at construction** (one sweep over the by-object index):

* the candidate pair set and, per pair, its *agreement list* — the
  shared ``(object, value)`` entries where both sources assert the same
  value, in sorted-object order — and its integer ``kd`` (overlap
  objects where they differ);
* agreement entries are deduplicated across pairs: every pair agreeing
  on ``(obj, v)`` references the same entry slot, so a value shared by
  a whole copier clique is refreshed once, not once per pair;
* per entry, the provider count ``m`` (for the empirical popularity);
* per object, the ordered ``(value, provider_count)`` list feeding the
  expected-wrong-provider count ``k_false``.

**Refreshed each round** (:meth:`EvidenceCache.refresh`, one sweep over
the deduplicated entries): the truth probability ``p_true`` of every
entry, and — empirical model only — each object's ``k_false`` and the
resulting per-entry popularity.

Fast aggregate path
-------------------

Under the uniform false-value model with ``evidence_form="expected_log"``
the per-shared-value log-likelihood loop collapses: every shared value
uses the same ``Pf`` (``q_v`` is the uniform ``1/n`` floor for all of
them), so ``Σ [pᵢ·ln Pt + (1-pᵢ)·ln Pf] = kt·ln Pt + kf·ln Pf`` — exactly
the aggregate :func:`~repro.dependence.bayes._log_likelihood`. In that
mode the engine skips materialising ``shared_values`` entirely and emits
aggregate-count evidence, which
:func:`~repro.dependence.bayes.pair_posterior` scores with the closed
form. Pass ``exact=True`` to force per-value evidence anyway; the exact
mode reproduces :func:`~repro.dependence.bayes.collect_evidence` bit for
bit (same accumulation order — both walk objects sorted).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams
from repro.core.types import SourceId, Value
from repro.dependence.bayes import PairEvidence, ValueProbabilities
from repro.exceptions import DataError

_EMPTY_PROBS: dict[Value, float] = {}


class _PairSlot:
    """Static structure of one candidate pair: agreement entries + kd."""

    __slots__ = ("s1", "s2", "agree", "kd")

    def __init__(self, s1: SourceId, s2: SourceId) -> None:
        self.s1 = s1
        self.s2 = s2
        self.agree: list[int] = []  # entry ids, in sorted-object order
        self.kd = 0


class EvidenceCache:
    """Per-round batch evidence for all candidate pairs of a dataset.

    Parameters
    ----------
    dataset:
        The (immutable while iterating) claim store.
    candidate_pairs:
        The pairs to analyse; ``None`` derives them from
        :meth:`~repro.core.dataset.ClaimDataset.co_coverage_counts` with
        ``min_overlap``. Pairs are normalised to ``s1 < s2``. Pairs with
        no overlap are legal and yield zero evidence (prior posterior).
    min_overlap:
        Overlap prefilter used only when ``candidate_pairs`` is ``None``.
    params:
        Selects the false-value model (whether popularity is needed) and
        the evidence form (whether the fast aggregate path applies).
    exact:
        Force per-value ``shared_values`` evidence even when the fast
        aggregate path would be valid — bit-for-bit identical to the
        per-pair :func:`~repro.dependence.bayes.collect_evidence`.

    Typical use::

        cache = EvidenceCache(dataset, params=params)
        for each round:
            for (s1, s2), ev in cache.collect_all(value_probs).items():
                graph.add(pair_posterior(ev, acc[s1], acc[s2], params))
    """

    def __init__(
        self,
        dataset: ClaimDataset,
        candidate_pairs: Iterable[tuple[SourceId, SourceId]] | None = None,
        *,
        min_overlap: int = 1,
        params: DependenceParams | None = None,
        exact: bool = False,
    ) -> None:
        if params is None:
            params = DependenceParams()
        if min_overlap < 1:
            raise DataError(f"min_overlap must be >= 1, got {min_overlap}")
        self._false_value_model = params.false_value_model
        self._evidence_form = params.evidence_form
        self._with_popularity = params.false_value_model == "empirical"
        self._fast = (
            not exact
            and not self._with_popularity
            and params.evidence_form == "expected_log"
        )
        self._refreshed = False

        if candidate_pairs is None:
            candidate_pairs = sorted(dataset.co_coverage_counts(min_overlap))
        self._slots: dict[tuple[SourceId, SourceId], _PairSlot] = {}
        for s1, s2 in candidate_pairs:
            if s1 == s2:
                raise DataError(f"a source cannot pair with itself: {s1!r}")
            key = (s1, s2) if s1 < s2 else (s2, s1)
            self._slots[key] = _PairSlot(*key)

        # --- structural pass: one sweep over the by-object index ------
        # Per object: pair up the providers once, splitting each
        # candidate pair's overlap into agreement entries and kd.
        # Objects are visited in sorted order so every pair's agreement
        # list — and therefore every soft sum built from it — follows
        # the same order as the per-pair reference walk.
        groups: list[tuple[object, list[int], list[Value]]] = []
        # entry_m feeds only the empirical popularity; skip collecting it
        # (and the per-object value counts) under the uniform model.
        entry_m: list[int] = []
        value_counts: list[list[tuple[Value, int]]] = []
        n_entries = 0
        slots = self._slots
        for obj in dataset.objects:
            providers = dataset.claims_about_view(obj)
            if len(providers) < 2:
                continue
            sources = sorted(providers)
            eids: list[int] = []
            values: list[Value] = []
            local: dict[Value, int] = {}
            for i, s1 in enumerate(sources):
                v1 = providers[s1].value
                for s2 in sources[i + 1 :]:
                    slot = slots.get((s1, s2))
                    if slot is None:
                        continue
                    if providers[s2].value != v1:
                        slot.kd += 1
                        continue
                    eid = local.get(v1)
                    if eid is None:
                        eid = n_entries
                        n_entries += 1
                        local[v1] = eid
                        if self._with_popularity:
                            entry_m.append(dataset.providers_count(obj, v1))
                        eids.append(eid)
                        values.append(v1)
                    slot.agree.append(eid)
            if eids:
                groups.append((obj, eids, values))
                if self._with_popularity:
                    value_counts.append(
                        [
                            (value, len(sources_of))
                            for value, sources_of in dataset.values_for_view(
                                obj
                            ).items()
                        ]
                    )
        self._groups = groups
        self._entry_m = entry_m
        self._value_counts = value_counts
        # refreshed parts
        self._p = [0.0] * n_entries
        self._pop = [1.0] * n_entries if self._with_popularity else None

    # ------------------------------------------------------------------
    # per-round refresh
    # ------------------------------------------------------------------

    def refresh(self, value_probs: ValueProbabilities) -> None:
        """Recompute the ``value_probs``-dependent soft parts.

        One sweep over the deduplicated agreement entries; under the
        empirical model each object's ``k_false`` is computed once here
        instead of once per pair per shared value.
        """
        self._refreshed = True
        p = self._p
        if self._pop is None:
            for obj, eids, values in self._groups:
                obj_probs = value_probs.get(obj, _EMPTY_PROBS)
                for eid, value in zip(eids, values):
                    p[eid] = obj_probs.get(value, 0.0)
            return
        pop = self._pop
        entry_m = self._entry_m
        for (obj, eids, values), counts in zip(self._groups, self._value_counts):
            obj_probs = value_probs.get(obj, _EMPTY_PROBS)
            k_false = sum(
                count * (1.0 - obj_probs.get(value, 0.0))
                for value, count in counts
            )
            for eid, value in zip(eids, values):
                p[eid] = obj_probs.get(value, 0.0)
                if k_false > 1.0:
                    pop[eid] = min(1.0, (entry_m[eid] - 1) / (k_false - 1.0))
                else:
                    pop[eid] = 1.0

    # ------------------------------------------------------------------
    # evidence accessors
    # ------------------------------------------------------------------

    @property
    def pairs(self) -> list[tuple[SourceId, SourceId]]:
        """The candidate pairs, normalised ``s1 < s2``."""
        return list(self._slots)

    def check_compatible(self, params: DependenceParams) -> None:
        """Raise unless the cache was built for this evidence model.

        The cache bakes the false-value model (popularity collected or
        not) and the evidence form (fast aggregate path or not) into its
        structure; scoring its output under different params would be
        silently wrong.
        """
        if (
            params.false_value_model != self._false_value_model
            or params.evidence_form != self._evidence_form
        ):
            raise DataError(
                "evidence cache was built for "
                f"false_value_model={self._false_value_model!r}, "
                f"evidence_form={self._evidence_form!r}; cannot score under "
                f"false_value_model={params.false_value_model!r}, "
                f"evidence_form={params.evidence_form!r} — build a new cache"
            )

    def evidence(self, s1: SourceId, s2: SourceId) -> PairEvidence:
        """Evidence for one pair, from the *last* :meth:`refresh`."""
        if not self._refreshed:
            raise DataError(
                "evidence cache has not been refreshed yet — call "
                "refresh(value_probs) or collect_all(value_probs) first"
            )
        key = (s1, s2) if s1 < s2 else (s2, s1)
        slot = self._slots.get(key)
        if slot is None:
            raise DataError(f"pair ({s1!r}, {s2!r}) is not a candidate pair")
        return self._build(slot)

    def collect_all(
        self, value_probs: ValueProbabilities
    ) -> dict[tuple[SourceId, SourceId], PairEvidence]:
        """Refresh and return evidence for every candidate pair."""
        self.refresh(value_probs)
        return {key: self._build(slot) for key, slot in self._slots.items()}

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[tuple[SourceId, SourceId]]:
        return iter(self._slots)

    def _build(self, slot: _PairSlot) -> PairEvidence:
        p = self._p
        kt = 0.0
        kf = 0.0
        if self._fast:
            for eid in slot.agree:
                p_true = p[eid]
                kt += p_true
                kf += 1.0 - p_true
            shared_values = None
        else:
            pop = self._pop
            shared: list[tuple[float, float]] = []
            if pop is None:
                for eid in slot.agree:
                    p_true = p[eid]
                    kt += p_true
                    kf += 1.0 - p_true
                    shared.append((p_true, -1.0))  # -1: use the uniform 1/n
            else:
                for eid in slot.agree:
                    p_true = p[eid]
                    kt += p_true
                    kf += 1.0 - p_true
                    shared.append((p_true, pop[eid]))
            shared_values = tuple(shared)
        return PairEvidence(
            s1=slot.s1,
            s2=slot.s2,
            kt_soft=kt,
            kf_soft=kf,
            kd=slot.kd,
            shared_values=shared_values,
            shared_count=len(slot.agree),
        )
