"""Dependence graph: the collected pairwise posteriors over all sources.

:class:`DependenceGraph` is what dependence *discovery* produces and what
dependence *applications* consume (vote discounting, query ordering,
source recommendation). It stores one :class:`~repro.dependence.bayes.PairDependence`
per analysed pair and answers the two queries the rest of the library
needs:

* ``probability(s1, s2)`` — total posterior that the pair is dependent;
* ``directed_probability(copier, original)`` — posterior of one
  direction.

It can threshold itself into a set of *detected* pairs (for evaluation
against planted edges) and export to ``networkx`` for graph analyses
such as finding copier cliques.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from types import MappingProxyType

import networkx as nx

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams
from repro.core.types import SourceId
from repro.dependence.bayes import (
    PairDependence,
    ValueProbabilities,
    analyze_pair,
    pair_posterior,
)
from repro.dependence.bayes_batch import resolve_posterior_backend
from repro.dependence.collector import pair_key as _pair_key
from repro.dependence.evidence import EvidenceCache
from repro.exceptions import DataError

_EMPTY_ADJACENCY: Mapping[SourceId, PairDependence] = MappingProxyType({})


class DependenceGraph:
    """Posterior dependence over all analysed source pairs."""

    def __init__(self, pairs: Iterable[PairDependence] = ()) -> None:
        self._pairs: dict[tuple[SourceId, SourceId], PairDependence] = {}
        # Per-source adjacency: source -> {other: pair}. Kept in sync by
        # add() so per-source queries (dependence_score, pairs_of) are
        # O(degree) instead of scanning every stored pair.
        self._adjacent: dict[SourceId, dict[SourceId, PairDependence]] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: PairDependence) -> None:
        """Insert or replace the posterior for one pair."""
        self._pairs[_pair_key(pair.s1, pair.s2)] = pair
        self._adjacent.setdefault(pair.s1, {})[pair.s2] = pair
        self._adjacent.setdefault(pair.s2, {})[pair.s1] = pair

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[PairDependence]:
        return iter(self._pairs.values())

    def get(self, s1: SourceId, s2: SourceId) -> PairDependence | None:
        """The stored posterior for the pair, if it was analysed."""
        return self._pairs.get(_pair_key(s1, s2))

    def probability(self, s1: SourceId, s2: SourceId) -> float:
        """Total dependence posterior for the pair (0.0 if not analysed).

        Unanalysed pairs (e.g. disjoint coverage) are treated as
        independent: with no overlap there is no evidence either way and
        no vote interaction to correct.
        """
        pair = self.get(s1, s2)
        return 0.0 if pair is None else pair.p_dependent

    def directed_probability(self, copier: SourceId, original: SourceId) -> float:
        """Posterior that ``copier`` copies from ``original`` (0.0 if unanalysed)."""
        pair = self.get(copier, original)
        return 0.0 if pair is None else pair.copies_probability(copier)

    def detected_pairs(self, threshold: float = 0.5) -> set[frozenset[SourceId]]:
        """Pairs whose dependence posterior is at or above ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise DataError(f"threshold must be in [0, 1], got {threshold}")
        return {
            frozenset((pair.s1, pair.s2))
            for pair in self
            if pair.p_dependent >= threshold
        }

    def pairs_of(self, source: SourceId) -> Mapping[SourceId, PairDependence]:
        """Read-only adjacency view: ``{other: pair}`` for ``source``'s pairs."""
        adjacent = self._adjacent.get(source)
        return _EMPTY_ADJACENCY if adjacent is None else MappingProxyType(adjacent)

    def dependence_score(self, source: SourceId) -> float:
        """How entangled ``source`` is: max dependence posterior over its pairs.

        Used by source recommendation: a source whose every value might be
        copied contributes little *new* information. Answered from the
        per-source adjacency index in O(degree) — scanning all stored
        pairs per query made recommendation O(sources · pairs).
        """
        adjacent = self._adjacent.get(source)
        if not adjacent:
            return 0.0
        return max(pair.p_dependent for pair in adjacent.values())

    def independence_weight(
        self, source: SourceId, counted: Iterable[SourceId], copy_rate: float
    ) -> float:
        """Probability that ``source``'s value was provided independently of ``counted``.

        This is the vote-discount factor of the DEPEN algorithm: for each
        already-counted source ``S0`` voting for the same value, the vote
        of ``source`` survives with probability ``1 - c·P(dep(source, S0))``.
        """
        if not 0.0 < copy_rate < 1.0:
            raise DataError(f"copy_rate must be in (0, 1), got {copy_rate}")
        weight = 1.0
        for other in counted:
            if other == source:
                continue
            weight *= 1.0 - copy_rate * self.probability(source, other)
        return weight

    def export_arrays(self, sources: list[SourceId]) -> dict:
        """Columnar export of the stored posteriors for snapshot publication.

        Returns read-only arrays over the pairs whose *both* endpoints
        appear in ``sources``: ``pair_s1`` / ``pair_s2`` (int64 codes
        into ``sources``, with ``pair_s1 < pair_s2`` per row, rows in
        sorted code order so equal graphs export bitwise-equal arrays),
        ``p_dependent``, ``p_s1_copies`` and ``p_s2_copies`` (float64,
        aligned; the directional posteriors follow the *code* order, not
        the stored pair's own endpoint order). Needs numpy.
        """
        if np is None:  # pragma: no cover - numpy ships with the toolchain
            raise DataError(
                "DependenceGraph.export_arrays needs numpy; install numpy "
                "or keep consuming PairDependence objects directly"
            )
        code = {source: i for i, source in enumerate(sources)}
        rows = []
        for pair in self:
            i = code.get(pair.s1)
            j = code.get(pair.s2)
            if i is None or j is None:
                continue
            if i > j:
                i, j = j, i
                first, second = pair.s2, pair.s1
            else:
                first, second = pair.s1, pair.s2
            rows.append(
                (
                    i,
                    j,
                    pair.p_dependent,
                    pair.copies_probability(first),
                    pair.copies_probability(second),
                )
            )
        rows.sort(key=lambda row: (row[0], row[1]))
        arrays = {
            "pair_s1": np.asarray([r[0] for r in rows], dtype=np.int64),
            "pair_s2": np.asarray([r[1] for r in rows], dtype=np.int64),
            "p_dependent": np.asarray([r[2] for r in rows], dtype=np.float64),
            "p_s1_copies": np.asarray([r[3] for r in rows], dtype=np.float64),
            "p_s2_copies": np.asarray([r[4] for r in rows], dtype=np.float64),
        }
        for arr in arrays.values():
            arr.flags.writeable = False
        return arrays

    def to_networkx(self, threshold: float = 0.0) -> nx.Graph:
        """Export as an undirected weighted graph (weight = dependence posterior)."""
        graph = nx.Graph()
        for pair in self:
            if pair.p_dependent >= threshold:
                graph.add_edge(pair.s1, pair.s2, weight=pair.p_dependent)
        return graph

    def copier_groups(self, threshold: float = 0.5) -> list[set[SourceId]]:
        """Connected components of the thresholded dependence graph.

        In a copier clique (S4 and S5 both copying S3, Example 2.1) every
        pair shares false values, so the clique shows up as one component.
        """
        components = nx.connected_components(self.to_networkx(threshold))
        return sorted((set(c) for c in components), key=lambda c: sorted(c)[0])


def discover_dependence(
    dataset: ClaimDataset,
    value_probs: ValueProbabilities,
    accuracies: dict[SourceId, float],
    params: DependenceParams | None = None,
    min_overlap: int = 1,
    candidate_pairs: Iterable[tuple[SourceId, SourceId]] | None = None,
    evidence_cache: EvidenceCache | None = None,
    batch: bool = True,
) -> DependenceGraph:
    """Analyse every source pair with enough overlap and build the graph.

    ``min_overlap`` mirrors the paper's Example 4.1, which only considers
    bookstore pairs "that provide information on at least the same 10
    books": pairs with tiny overlap carry almost no evidence and are
    skipped (treated as independent).

    ``candidate_pairs`` bypasses the overlap scan (iterative callers
    compute the pair set once and reuse it every round — the overlap
    structure never changes between rounds).

    By default the evidence for all pairs comes from one batch sweep
    (:class:`~repro.dependence.evidence.EvidenceCache`). Iterative
    callers should build the cache once and pass it as
    ``evidence_cache`` so the structural pass is also amortised across
    rounds (:class:`~repro.truth.depen.Depen` does). ``batch=False``
    selects the per-pair reference path
    (:func:`~repro.dependence.bayes.analyze_pair` per pair) — it exists
    for equivalence testing and benchmarking, not for production use.
    """
    if params is None:
        params = DependenceParams()
    if min_overlap < 1:
        raise DataError(f"min_overlap must be >= 1, got {min_overlap}")
    graph = DependenceGraph()
    if not batch:
        if evidence_cache is not None:
            raise DataError(
                "evidence_cache is a batch-path input; it cannot be combined "
                "with batch=False (the per-pair reference path)"
            )
        if candidate_pairs is None:
            candidate_pairs = sorted(dataset.co_coverage_counts(min_overlap))
        for s1, s2 in candidate_pairs:
            graph.add(
                analyze_pair(dataset, s1, s2, value_probs, accuracies, params)
            )
        return graph
    cache = evidence_cache
    owns_cache = cache is None
    if cache is None:
        cache = EvidenceCache(
            dataset, candidate_pairs, min_overlap=min_overlap, params=params
        )
    else:
        if candidate_pairs is not None:
            raise DataError(
                "pass either candidate_pairs or evidence_cache, not both — "
                "the cache already fixes the pair set"
            )
        cache.check_compatible(params)
    try:
        backend = resolve_posterior_backend(params.posterior_backend, cache)
        if backend == "batch":
            cache.refresh(value_probs)
            engine = cache.posterior_engine(params)
            for pair in engine.posterior_pairs(accuracies):
                graph.add(pair)
            return graph
        for (s1, s2), evidence in cache.collect_all(value_probs).items():
            graph.add(
                pair_posterior(
                    evidence, accuracies[s1], accuracies[s2], params
                )
            )
        return graph
    finally:
        if owns_cache:
            # An internally built cache must not strand a persistent
            # worker pool (no-op under the ephemeral default).
            cache.close()
