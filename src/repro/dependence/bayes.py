"""Pairwise Bayesian copy detection for snapshot data (section 3.2).

The model follows the paper's two intuitions for snapshot dependence:

1. *Shared false values are the give-away.* Two independent sources with
   accuracies ``A1, A2`` provide the same **true** value for an object
   with probability ``A1·A2``, but the same **false** value only with
   probability ``(1-A1)(1-A2)/n`` (they must both err *and* pick the same
   one of ``n`` false alternatives). A copier reproduces whatever the
   original said — true or false — with the copy rate ``c``. So shared
   false values shift the likelihood toward the copy hypotheses roughly
   ``n`` times harder than shared true values do. This is the
   multiple-choice-quiz analogy of the paper.

2. Three hypotheses per source pair — ``S1 ⊥ S2`` (independent),
   ``S1 → S2`` (S1 copies from S2) and ``S2 → S1`` — with prior mass
   ``1-α``, ``α/2``, ``α/2``. Evidence is accumulated over the pair's
   *overlap* (objects both cover) and combined with Bayes' rule in log
   space.

Because truth is not known while dependence is being estimated (the
chicken-and-egg the paper resolves iteratively), evidence is computed
*softly*: each shared value contributes with the current probability
``p`` that it is true, i.e. ``p·ln(Pt) + (1-p)·ln(Pf)``. Before any truth
estimate exists, callers should pass uniform value probabilities
(:func:`uniform_value_probabilities`); hard 0/1 probabilities recover the
classic ``kt/kf/kd`` counting.

This module holds the per-pair model (evidence dataclasses, likelihoods,
posterior combination). Batch evidence collection over *all* candidate
pairs — the per-round hot path — lives in
:mod:`repro.dependence.evidence`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.dataset import ClaimDataset
from repro.core.params import DependenceParams
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError

#: Type of the soft-truth input: per object, the probability of each value.
ValueProbabilities = dict[ObjectId, dict[Value, float]]

_TINY = 1e-12


def uniform_value_probabilities(dataset: ClaimDataset) -> ValueProbabilities:
    """Truth-agnostic initialisation: observed values equally likely.

    Used for the first round of the iterative algorithm, before any truth
    estimate exists. Starting from naive-vote truth instead would
    pre-commit to exactly the copier-boosted decisions the algorithm is
    meant to overturn (Example 2.1), so the uniform start is load-bearing.
    """
    probs: ValueProbabilities = {}
    for obj in dataset.objects:
        values = dataset.values_for(obj)
        if not values:
            continue
        share = 1.0 / len(values)
        probs[obj] = {value: share for value in values}
    return probs


@dataclass(frozen=True, slots=True)
class PairEvidence:
    """Soft evidence about one source pair, over their coverage overlap.

    ``kt_soft`` / ``kf_soft`` are the expected numbers of shared-true and
    shared-false values (they sum to the number of shared values);
    ``kd`` counts overlap objects where the two sources differ.

    ``shared_values`` optionally keeps per-shared-value detail as
    ``(p_true, popularity)`` pairs, where *popularity* is the fraction of
    the object's *other* providers asserting the same value — the input
    of the empirical false-value model. ``None`` means only the
    aggregate counts were collected (uniform model).

    ``shared_count`` is the exact integer number of shared (equal-valued)
    overlap objects, recorded by evidence collection. Mathematically
    ``kt_soft + kf_soft == shared_count``, but the two soft sums
    accumulate float error independently, so deriving the count by
    rounding their sum can drift; hand-built evidence with genuinely
    fractional soft counts (marginal-style estimates) can even be off by
    ±1. ``None`` means the count was not recorded (hand-built aggregate
    evidence) and :attr:`overlap_size` falls back to rounding.

    ``calibrated`` marks evidence that must be scored with the
    *calibrated* per-value treatment regardless of
    ``params.evidence_form`` — empirical popularity plus proper
    marginalisation of the latent truth. Set by the evidence engine
    under ``overlap_policy="auto"`` for pairs whose overlap reached the
    calibration bound, where the default expected-log form is known to
    over-detect (see
    :class:`~repro.core.params.DependenceParams.overlap_warning_bound`).
    """

    s1: SourceId
    s2: SourceId
    kt_soft: float
    kf_soft: float
    kd: int
    shared_values: tuple[tuple[float, float], ...] | None = None
    shared_count: int | None = None
    calibrated: bool = False

    @property
    def overlap_size(self) -> int:
        """Number of objects both sources cover."""
        if self.shared_count is not None:
            return self.shared_count + self.kd
        return round(self.kt_soft + self.kf_soft) + self.kd

    @property
    def shared(self) -> float:
        """Expected number of shared (equal-valued) overlap objects."""
        return self.kt_soft + self.kf_soft


def collect_evidence(
    dataset: ClaimDataset,
    s1: SourceId,
    s2: SourceId,
    value_probs: ValueProbabilities,
    with_popularity: bool = False,
) -> PairEvidence:
    """Gather soft ``(kt, kf, kd)`` evidence for one pair of sources.

    With ``with_popularity`` the per-shared-value popularity is also
    recorded: ``(m - 1) / (k_false - 1)`` where ``m`` providers assert
    the value and ``k_false`` is the object's expected number of *wrong*
    providers (one minus value probability, summed) — i.e. the chance
    that another *erring* provider repeats this particular mistake. A
    popular mistake approaches 1; a pair-exclusive one approaches 0.

    This is the per-pair *reference* path: it re-walks the pair's
    overlap on every call. Iterative callers analysing many pairs per
    round should use :class:`~repro.dependence.evidence.EvidenceCache`,
    which produces identical evidence from one sweep over the by-object
    index. The overlap is walked in sorted-object order so that the
    batch engine (which sweeps objects in the same order) accumulates
    the soft sums in the identical order, bit for bit.
    """
    kt = 0.0
    kf = 0.0
    kd = 0
    shared: list[tuple[float, float]] = []
    claims1 = dataset.claims_by(s1)
    claims2 = dataset.claims_by(s2)
    if len(claims1) > len(claims2):
        claims1, claims2 = claims2, claims1
    for obj in sorted(obj for obj in claims1 if obj in claims2):
        claim = claims1[obj]
        other = claims2[obj]
        if claim.value != other.value:
            kd += 1
            continue
        p_true = value_probs.get(obj, {}).get(claim.value, 0.0)
        kt += p_true
        kf += 1.0 - p_true
        if with_popularity:
            m = len(dataset.providers_of(obj, claim.value))
            obj_probs = value_probs.get(obj, {})
            k_false = sum(
                len(sources) * (1.0 - obj_probs.get(value, 0.0))
                for value, sources in dataset.values_for(obj).items()
            )
            if k_false > 1.0:
                popularity = min(1.0, (m - 1) / (k_false - 1.0))
            else:
                popularity = 1.0
            shared.append((p_true, popularity))
        else:
            shared.append((p_true, -1.0))  # -1: use the uniform 1/n
    return PairEvidence(
        s1=s1,
        s2=s2,
        kt_soft=kt,
        kf_soft=kf,
        kd=kd,
        shared_values=tuple(shared),
        shared_count=len(shared),
    )


@dataclass(frozen=True, slots=True)
class PairDependence:
    """Posterior over the three hypotheses for one source pair."""

    s1: SourceId
    s2: SourceId
    p_independent: float
    p_s1_copies_s2: float
    p_s2_copies_s1: float

    def __post_init__(self) -> None:
        total = self.p_independent + self.p_s1_copies_s2 + self.p_s2_copies_s1
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise DataError(f"pair posterior must sum to 1, got {total}")

    @property
    def p_dependent(self) -> float:
        """Posterior probability that the pair is dependent (either direction)."""
        return self.p_s1_copies_s2 + self.p_s2_copies_s1

    def copies_probability(self, copier: SourceId) -> float:
        """Posterior that ``copier`` is the one copying in this pair."""
        if copier == self.s1:
            return self.p_s1_copies_s2
        if copier == self.s2:
            return self.p_s2_copies_s1
        raise DataError(f"{copier!r} is not part of pair ({self.s1!r}, {self.s2!r})")

    def likely_copier(self) -> SourceId | None:
        """The more probable copier, or ``None`` if the pair looks independent."""
        if self.p_independent >= self.p_dependent:
            return None
        if self.p_s1_copies_s2 >= self.p_s2_copies_s1:
            return self.s1
        return self.s2


def normalized_posteriors(log_posts: list[float]) -> list[float]:
    """Normalise log-posterior masses into probabilities, peak-shifted.

    The shared tail of every posterior implementation in this package
    (snapshot :func:`pair_posterior`, temporal
    :func:`~repro.dependence.temporal.temporal_pair_posterior`, opinion
    :func:`~repro.dependence.opinions.rater_pair_posterior`): subtract
    the peak before exponentiating so the largest hypothesis maps to
    ``exp(0)`` and nothing under- or overflows, then divide by the sum.
    """
    peak = max(log_posts)
    weights = [math.exp(lp - peak) for lp in log_posts]
    total = sum(weights)
    return [weight / total for weight in weights]


def _per_object_rates(
    a_provider: float,
    a_other: float,
    a_original: float,
    params: DependenceParams,
    copy_rate: float | None = None,
) -> tuple[float, float, float]:
    """(Pt, Pf, Pd) under a copy hypothesis with the given original accuracy."""
    c = params.copy_rate if copy_rate is None else copy_rate
    n = params.n_false_values
    pt_ind = a_provider * a_other
    pf_ind = (1.0 - a_provider) * (1.0 - a_other) / n
    pd_ind = max(_TINY, 1.0 - pt_ind - pf_ind)
    pt = a_original * c + pt_ind * (1.0 - c)
    pf = (1.0 - a_original) * c + pf_ind * (1.0 - c)
    pd = (1.0 - c) * pd_ind
    return pt, pf, pd


def _log_likelihood(
    evidence: PairEvidence, pt: float, pf: float, pd: float
) -> float:
    """Log-likelihood of the evidence under per-object rates (Pt, Pf, Pd)."""
    return (
        evidence.kt_soft * math.log(max(pt, _TINY))
        + evidence.kf_soft * math.log(max(pf, _TINY))
        + evidence.kd * math.log(max(pd, _TINY))
    )


def _log_likelihood_per_value(
    evidence: PairEvidence,
    pt: float,
    pd: float,
    a1: float,
    a2: float,
    a_original: float | None,
    params: DependenceParams,
) -> float:
    """Log-likelihood with per-shared-value detail.

    The truth of each shared value is latent. Under
    ``evidence_form="marginal"`` it is marginalised properly,
    ``ln(p·Pt + (1-p)·Pf_v)``; under the default ``"expected_log"`` the
    true/false log-likelihoods are probability-weighted,
    ``p·ln(Pt) + (1-p)·ln(Pf_v)`` — deliberately more aggressive while
    ``p`` is uncertain (see :class:`~repro.core.params.DependenceParams`
    for the trade-off). The two coincide for hard ``p ∈ {0, 1}``.

    ``Pf_v`` uses the value's observed popularity when recorded
    (``popularity >= 0``, the empirical false-value model) and the
    uniform ``1/n`` otherwise. ``a_original=None`` selects the
    independence hypothesis. Evidence flagged ``calibrated`` (the
    ``overlap_policy="auto"`` escape for large overlaps) is always
    marginalised, whatever ``params.evidence_form`` says.
    """
    floor = 1.0 / params.n_false_values
    c = params.copy_rate
    marginal = evidence.calibrated or params.evidence_form == "marginal"
    total = evidence.kd * math.log(max(pd, _TINY))
    for p_true, popularity in evidence.shared_values:
        q_v = floor if popularity < 0.0 else min(0.95, max(floor, popularity))
        pf_ind_v = (1.0 - a1) * (1.0 - a2) * q_v
        if a_original is None:
            pf_v = pf_ind_v
        else:
            pf_v = (1.0 - a_original) * c + (1.0 - c) * pf_ind_v
        if marginal:
            total += math.log(max(p_true * pt + (1.0 - p_true) * pf_v, _TINY))
        else:
            total += p_true * math.log(max(pt, _TINY))
            total += (1.0 - p_true) * math.log(max(pf_v, _TINY))
    return total


def pair_posterior(
    evidence: PairEvidence,
    a1: float,
    a2: float,
    params: DependenceParams,
) -> PairDependence:
    """Bayes-combine the evidence into a posterior over the three hypotheses.

    ``a1`` and ``a2`` are the current accuracy estimates of ``evidence.s1``
    and ``evidence.s2``; they must lie strictly inside (0, 1) — iterative
    callers clamp them (:meth:`repro.core.params.IterationParams.clamp_accuracy`).
    """
    for name, a in (("a1", a1), ("a2", a2)):
        if not 0.0 < a < 1.0:
            raise DataError(f"{name} must be in (0, 1), got {a}")

    n = params.n_false_values
    pt_ind = a1 * a2
    pf_ind = (1.0 - a1) * (1.0 - a2) / n
    pd_ind = max(_TINY, 1.0 - pt_ind - pf_ind)

    if evidence.shared_values is not None:
        log_independent = _log_likelihood_per_value(
            evidence, pt_ind, pd_ind, a1, a2, None, params
        )
        pt_1c2, _, pd_1c2 = _per_object_rates(a1, a2, a_original=a2, params=params)
        log_s1_copies = _log_likelihood_per_value(
            evidence, pt_1c2, pd_1c2, a1, a2, a2, params
        )
        pt_2c1, _, pd_2c1 = _per_object_rates(a1, a2, a_original=a1, params=params)
        log_s2_copies = _log_likelihood_per_value(
            evidence, pt_2c1, pd_2c1, a1, a2, a1, params
        )
    else:
        # Aggregate-count path (hand-built evidence): counts are treated
        # as hard classifications, for which the expected-log form is
        # exact.
        log_independent = _log_likelihood(evidence, pt_ind, pf_ind, pd_ind)
        # S1 copies from S2: the shared value originates at S2 (accuracy a2).
        log_s1_copies = _log_likelihood(
            evidence, *_per_object_rates(a1, a2, a_original=a2, params=params)
        )
        # S2 copies from S1: the shared value originates at S1.
        log_s2_copies = _log_likelihood(
            evidence, *_per_object_rates(a1, a2, a_original=a1, params=params)
        )

    log_posts = [
        math.log(params.prior_independent) + log_independent,
        math.log(params.prior_direction) + log_s1_copies,
        math.log(params.prior_direction) + log_s2_copies,
    ]
    posts = normalized_posteriors(log_posts)
    return PairDependence(
        s1=evidence.s1,
        s2=evidence.s2,
        p_independent=posts[0],
        p_s1_copies_s2=posts[1],
        p_s2_copies_s1=posts[2],
    )


def analyze_pair(
    dataset: ClaimDataset,
    s1: SourceId,
    s2: SourceId,
    value_probs: ValueProbabilities,
    accuracies: dict[SourceId, float],
    params: DependenceParams,
) -> PairDependence:
    """Convenience: collect evidence for one pair and compute its posterior."""
    evidence = collect_evidence(
        dataset,
        s1,
        s2,
        value_probs,
        with_popularity=params.false_value_model == "empirical",
    )
    return pair_posterior(evidence, accuracies[s1], accuracies[s2], params)
