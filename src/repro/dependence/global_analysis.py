"""Global structure on top of pairwise dependence posteriors.

Pairwise posteriors answer "are these two entangled?", but the paper's
discussion of specialists, generalists and *loop copying* (section 3.1)
is about global structure: cliques of sources sharing provenance, and
within a clique, who the likely original is. This module consolidates a
:class:`~repro.dependence.graph.DependenceGraph` into that structure:

* :func:`copier_cliques` — connected components of the thresholded
  dependence graph, as :class:`CopierClique` objects;
* each clique ranks its members by *originality*: a blend of directed
  posterior mass (who the Bayes model thinks copies whom) and accuracy
  (originals tend to be the competent ones — copying does not raise the
  ceiling above the original's accuracy);
* :func:`independent_core` — a maximal set of pairwise-plausibly-
  independent sources, greedily chosen by accuracy: the sub-population a
  fusion or recommendation system should treat as the real signal.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.types import SourceId
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class CopierClique:
    """One connected component of entangled sources."""

    members: tuple[SourceId, ...]
    originality: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise DataError("a clique needs at least two members")
        if len(self.members) != len(self.originality):
            raise DataError("one originality score per member required")

    @property
    def likely_original(self) -> SourceId:
        """The member most likely to be the clique's original."""
        best = max(range(len(self.members)), key=lambda i: self.originality[i])
        return self.members[best]

    def likely_copiers(self) -> tuple[SourceId, ...]:
        """Everyone but the likely original."""
        original = self.likely_original
        return tuple(m for m in self.members if m != original)


def _originality(
    source: SourceId,
    members: list[SourceId],
    graph: DependenceGraph,
    accuracies: Mapping[SourceId, float],
) -> float:
    """Blend of "not the copying side" mass and accuracy, in [0, 1]."""
    directed = []
    adjacent = graph.pairs_of(source)  # O(degree) adjacency view
    for other in members:
        if other == source:
            continue
        pair = adjacent.get(other)
        if pair is None:
            continue
        # Posterior that *the other* copies from this source, given the
        # pair is dependent at all.
        p_dep = pair.p_dependent
        if p_dep <= 0.0:
            continue
        directed.append(pair.copies_probability(other) / p_dep)
    direction_score = sum(directed) / len(directed) if directed else 0.5
    accuracy = accuracies.get(source, 0.5)
    return 0.5 * direction_score + 0.5 * accuracy


def copier_cliques(
    graph: DependenceGraph,
    accuracies: Mapping[SourceId, float] | None = None,
    threshold: float = 0.5,
) -> list[CopierClique]:
    """Consolidate the dependence graph into cliques with ranked members."""
    if not 0.0 <= threshold <= 1.0:
        raise DataError(f"threshold must be in [0, 1], got {threshold}")
    accuracies = accuracies or {}
    cliques = []
    for component in graph.copier_groups(threshold):
        members = sorted(component)
        scores = tuple(
            _originality(m, members, graph, accuracies) for m in members
        )
        cliques.append(CopierClique(members=tuple(members), originality=scores))
    return cliques


def independent_core(
    graph: DependenceGraph,
    sources: list[SourceId],
    accuracies: Mapping[SourceId, float] | None = None,
    threshold: float = 0.5,
) -> list[SourceId]:
    """A greedy maximal set of pairwise-plausibly-independent sources.

    Sources are considered best-first (by accuracy, then id); a source
    joins the core if its dependence posterior with every source already
    in the core is below ``threshold``. Cliques therefore contribute
    (roughly) one representative each — their likely original, since it
    is typically the most accurate member.
    """
    if not sources:
        raise DataError("no sources given")
    accuracies = accuracies or {}
    ordered = sorted(sources, key=lambda s: (-accuracies.get(s, 0.5), s))
    core: list[SourceId] = []
    for source in ordered:
        if all(graph.probability(source, kept) < threshold for kept in core):
            core.append(source)
    return sorted(core)
