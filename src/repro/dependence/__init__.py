"""Source-dependence discovery: snapshot, partial, opinion, temporal."""

from repro.dependence.bayes import (
    PairDependence,
    PairEvidence,
    analyze_pair,
    collect_evidence,
    pair_posterior,
    uniform_value_probabilities,
)
from repro.dependence.bayes_batch import (
    BatchedPosteriorEngine,
    resolve_posterior_backend,
)
from repro.dependence.collector import (
    PairSlotCollector,
    ProviderCap,
    pair_key,
)
from repro.dependence.entrystore import ColumnarAgreeStore, PackedRecords
from repro.dependence.evidence import EvidenceCache
from repro.dependence.global_analysis import (
    CopierClique,
    copier_cliques,
    independent_core,
)
from repro.dependence.graph import DependenceGraph, discover_dependence
from repro.dependence.partial import (
    AccuracySplit,
    DirectionEvidence,
    accuracy_split,
    batch_accuracy_splits,
    category_splits,
    direction_evidence,
)
from repro.dependence.sharding import (
    ParallelSweepExecutor,
    ShardPlan,
    ShardPlanner,
    SweepConfig,
)
from repro.dependence.streaming import StreamingDependenceEngine
from repro.dependence.temporal import (
    CoAdoptionCollector,
    StreamingTemporalDataset,
    discover_temporal_dependence,
    temporal_pair_posterior,
)

__all__ = [
    "AccuracySplit",
    "BatchedPosteriorEngine",
    "CoAdoptionCollector",
    "ColumnarAgreeStore",
    "CopierClique",
    "DependenceGraph",
    "DirectionEvidence",
    "EvidenceCache",
    "PackedRecords",
    "PairDependence",
    "PairEvidence",
    "PairSlotCollector",
    "ParallelSweepExecutor",
    "ProviderCap",
    "ShardPlan",
    "ShardPlanner",
    "StreamingDependenceEngine",
    "StreamingTemporalDataset",
    "SweepConfig",
    "accuracy_split",
    "analyze_pair",
    "batch_accuracy_splits",
    "category_splits",
    "collect_evidence",
    "copier_cliques",
    "direction_evidence",
    "discover_dependence",
    "discover_temporal_dependence",
    "independent_core",
    "pair_key",
    "pair_posterior",
    "resolve_posterior_backend",
    "temporal_pair_posterior",
    "uniform_value_probabilities",
]
