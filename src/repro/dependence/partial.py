"""Accuracy-split evidence for partial copiers (section 3.2, intuition 2).

The paper's second snapshot intuition: *"If the accuracy of a data source
on the subset of information it shares in common with another data source
is significantly different from its accuracy on the remaining
information, the data source is more likely to be a partial copier than
an independent data source."*

This module implements that test. For a pair (S, O) it splits S's claims
into the overlap ``S ∩ O`` and the private remainder ``S \\ O`` and
compares S's accuracy on the two parts. A genuine partial copier that
copies (accurate or inaccurate) material from O while producing its own
independent claims elsewhere shows a *split*: overlap accuracy tracks
O's accuracy, private accuracy tracks S's own competence. An independent
source shows no systematic split.

The split is scored with a two-proportion z-test (soft counts allowed) so
small overlaps don't produce spurious confidence, and the result doubles
as *direction* evidence for the main Bayes model: of the two sources in a
dependent pair, the one with the stronger split is the likelier copier
(the original's accuracy is a property of the source, not of where it
overlaps a particular other source).

:func:`accuracy_split` is the per-pair form; when splits are needed for
a whole round's pair list, :func:`batch_accuracy_splits` computes each
source's total truth mass once and charges every pair only for its
overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.dataset import ClaimDataset
from repro.core.types import SourceId
from repro.dependence.bayes import ValueProbabilities
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class AccuracySplit:
    """The accuracy of one source, split by overlap with another source."""

    source: SourceId
    other: SourceId
    overlap_accuracy: float
    private_accuracy: float
    overlap_size: int
    private_size: int

    @property
    def gap(self) -> float:
        """Signed accuracy gap (overlap minus private)."""
        return self.overlap_accuracy - self.private_accuracy

    @property
    def z_score(self) -> float:
        """Two-proportion z statistic for the split (0 when undefined).

        Uses the pooled-variance form; with either side empty or the
        pooled proportion degenerate, there is no evidence and the score
        is 0.
        """
        n1, n2 = self.overlap_size, self.private_size
        if n1 == 0 or n2 == 0:
            return 0.0
        pooled = (
            self.overlap_accuracy * n1 + self.private_accuracy * n2
        ) / (n1 + n2)
        variance = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2)
        if variance <= 0.0:
            return 0.0
        return self.gap / math.sqrt(variance)

    @property
    def split_strength(self) -> float:
        """|z| mapped to [0, 1): 0 = no split, →1 = decisive split."""
        z = abs(self.z_score)
        return z / (1.0 + z)


def accuracy_split(
    dataset: ClaimDataset,
    source: SourceId,
    other: SourceId,
    value_probs: ValueProbabilities,
) -> AccuracySplit:
    """Compute the overlap/private accuracy split of ``source`` w.r.t. ``other``.

    Accuracy here is the *soft* accuracy under the current truth estimate:
    the mean probability that the source's value is true, exactly the
    quantity the iterative algorithm maintains.
    """
    if source == other:
        raise DataError("cannot split a source against itself")
    claims = dataset.claims_by_view(source)
    if not claims:
        raise DataError(f"source {source!r} provides no claims")
    other_objects = dataset.claims_by_view(other)

    overlap_mass = 0.0
    overlap_count = 0
    private_mass = 0.0
    private_count = 0
    for obj, claim in claims.items():
        p_true = value_probs.get(obj, {}).get(claim.value, 0.0)
        if obj in other_objects:
            overlap_mass += p_true
            overlap_count += 1
        else:
            private_mass += p_true
            private_count += 1

    return AccuracySplit(
        source=source,
        other=other,
        overlap_accuracy=overlap_mass / overlap_count if overlap_count else 0.0,
        private_accuracy=private_mass / private_count if private_count else 0.0,
        overlap_size=overlap_count,
        private_size=private_count,
    )


@dataclass(frozen=True, slots=True)
class DirectionEvidence:
    """Which of a dependent pair looks more like the copier, from splits."""

    s1: SourceId
    s2: SourceId
    split1: AccuracySplit
    split2: AccuracySplit

    @property
    def likely_copier(self) -> SourceId | None:
        """The source with the stronger accuracy split, or ``None`` on a tie."""
        strength1 = self.split1.split_strength
        strength2 = self.split2.split_strength
        if math.isclose(strength1, strength2, abs_tol=1e-9):
            return None
        return self.s1 if strength1 > strength2 else self.s2

    def direction_weight(self, copier: SourceId) -> float:
        """Relative weight in [0, 1] for "``copier`` is the copying side".

        The two weights sum to 1 and can be used to re-split the
        dependence posterior mass between the two directed hypotheses.
        With no split evidence on either side the weights are 0.5/0.5.
        """
        strength1 = self.split1.split_strength
        strength2 = self.split2.split_strength
        total = strength1 + strength2
        if total <= 0.0:
            return 0.5
        if copier == self.s1:
            return strength1 / total
        if copier == self.s2:
            return strength2 / total
        raise DataError(f"{copier!r} is not part of pair ({self.s1!r}, {self.s2!r})")


def direction_evidence(
    dataset: ClaimDataset,
    s1: SourceId,
    s2: SourceId,
    value_probs: ValueProbabilities,
) -> DirectionEvidence:
    """Accuracy-split direction evidence for a pair (both splits).

    Computed through :func:`batch_accuracy_splits` so the pair's overlap
    is walked once and shared by both directed splits.
    """
    splits = batch_accuracy_splits(dataset, [(s1, s2)], value_probs)
    return DirectionEvidence(
        s1=s1,
        s2=s2,
        split1=splits[(s1, s2)],
        split2=splits[(s2, s1)],
    )


def batch_accuracy_splits(
    dataset: ClaimDataset,
    pairs: list[tuple[SourceId, SourceId]],
    value_probs: ValueProbabilities,
) -> dict[tuple[SourceId, SourceId], AccuracySplit]:
    """Both directed splits for many pairs, sharing per-source totals.

    :func:`accuracy_split` walks the source's full claim set per call —
    for the pair list of a dependence round that is O(pairs · coverage)
    full walks. Here each source's total truth mass is computed once and
    each pair only walks its *overlap*; the private side is derived as
    ``total - overlap``. Returns ``{(source, other): split}`` with both
    orientations for every input pair. Results match
    :func:`accuracy_split` up to float summation order (the private mass
    is a difference rather than a direct sum).
    """
    totals: dict[SourceId, tuple[float, int]] = {}

    def total_of(source: SourceId) -> tuple[float, int]:
        cached = totals.get(source)
        if cached is not None:
            return cached
        claims = dataset.claims_by_view(source)
        if not claims:
            raise DataError(f"source {source!r} provides no claims")
        mass = 0.0
        for obj, claim in claims.items():
            mass += value_probs.get(obj, {}).get(claim.value, 0.0)
        totals[source] = (mass, len(claims))
        return totals[source]

    splits: dict[tuple[SourceId, SourceId], AccuracySplit] = {}
    for s1, s2 in pairs:
        if s1 == s2:
            raise DataError("cannot split a source against itself")
        claims1 = dataset.claims_by_view(s1)
        claims2 = dataset.claims_by_view(s2)
        smaller = claims1 if len(claims1) <= len(claims2) else claims2
        larger = claims2 if smaller is claims1 else claims1
        overlap = [obj for obj in smaller if obj in larger]
        n_overlap = len(overlap)
        for source, other, claims in ((s1, s2, claims1), (s2, s1, claims2)):
            total_mass, total_count = total_of(source)
            overlap_mass = 0.0
            for obj in overlap:
                overlap_mass += value_probs.get(obj, {}).get(
                    claims[obj].value, 0.0
                )
            n_private = total_count - n_overlap
            splits[(source, other)] = AccuracySplit(
                source=source,
                other=other,
                overlap_accuracy=(
                    overlap_mass / n_overlap if n_overlap else 0.0
                ),
                private_accuracy=(
                    (total_mass - overlap_mass) / n_private if n_private else 0.0
                ),
                overlap_size=n_overlap,
                private_size=n_private,
            )
    return splits


def category_splits(
    dataset: ClaimDataset,
    source: SourceId,
    other: SourceId,
    value_probs: ValueProbabilities,
    categories: dict[str, set[str]],
) -> dict[str, AccuracySplit]:
    """Per-category accuracy splits, for category-scoped partial copying.

    Section 3.1's *partial dependence* challenge notes a copier may copy
    "only presidential politics" while providing "local politics"
    independently. Given a partition of objects into named categories,
    this computes the accuracy split within each category, letting the
    caller localise *where* the copying happens.
    """
    splits: dict[str, AccuracySplit] = {}
    for name, objects in categories.items():
        sub = dataset.restrict_objects(objects)
        if not sub.claims_by(source):
            continue
        splits[name] = accuracy_split(sub, source, other, value_probs)
    return splits
