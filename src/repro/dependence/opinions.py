"""Rater-dependence detection: similarity *and* dissimilarity (section 2.2).

Example 2.2 introduces the paper's second kind of dependence: reviewer R4
"has a strong opinion on R1's tastes and chooses to provide opposite
ratings for all of R1's ratings" — dissimilarity-dependence. With no
underlying truth, the snapshot copy model does not apply directly;
instead, each co-rated item's *consensus distribution* plays the role
the false-value model played for facts.

For a rater pair (R1, R2) and each co-rated item ``i`` with
(leave-pair-out) consensus ``θ_i``:

* independent: ``P(r1, r2) = θ_i(r1) · θ_i(r2)``;
* R2 copies R1 (similarity): with probability ``c`` R2 echoes R1's
  rating, else rates independently:
  ``θ_i(r1) · (c·1[r2 = r1] + (1-c)·θ_i(r2))``;
* R2 opposes R1 (dissimilarity): with probability ``c`` R2 gives the
  *mirrored* rating, else rates independently:
  ``θ_i(r1) · (c·1[r2 = mirror(r1)] + (1-c)·θ_i(r2))``.

Five hypotheses (independent + two kinds × two directions) are combined
with Bayes' rule. Conditioning on ``θ_i`` is what defuses the
"correlated information" challenge of section 3.1: agreement on an item
everyone loves is expected under independence (``θ_i`` is concentrated),
while agreement on divisive items — and systematic *mirroring* — is not.

Note the two directions of a kind are nearly symmetric on rating data
alone (mirroring is an involution); direction separation needs temporal
information. The posteriors expose both directions anyway so callers can
fold in such evidence.

Batch collection
----------------

Scoring a pair walks its co-rated items and needs, per item, the
leave-pair-out consensus — recomputed per pair, that is one full pass
over the item's raters for every (pair, item) combination. The batch
:class:`RaterPairCollector` follows the shared
:class:`~repro.dependence.collector.PairSlotCollector` pattern instead:
one structural sweep over the by-item index records every pair's
co-rated ``(item, score, score)`` triples (cached across rounds of the
iterative consensus loop), and each round computes every item's
*weighted score counts once*, deriving any pair's leave-pair-out
consensus by subtracting the pair's own two contributions.
:func:`rater_pair_posterior` remains as the per-pair reference path; the
subtraction is algebraically identical to its exclusion (and bit-for-bit
identical for unit weights, where all the sums are exact).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.params import OpinionParams
from repro.core.types import ObjectId, SourceId, Value
from repro.core.world import DependenceKind
from repro.dependence.bayes import normalized_posteriors
from repro.dependence.collector import PairSlotCollector, pair_key
from repro.exceptions import DataError
from repro.opinions.ratings import RatingMatrix

_TINY = 1e-12


@dataclass(frozen=True, slots=True)
class RaterPairDependence:
    """Posterior over the five hypotheses for one rater pair."""

    r1: SourceId
    r2: SourceId
    p_independent: float
    p_r1_copies_r2: float
    p_r2_copies_r1: float
    p_r1_opposes_r2: float
    p_r2_opposes_r1: float
    co_rated: int

    def __post_init__(self) -> None:
        total = (
            self.p_independent
            + self.p_r1_copies_r2
            + self.p_r2_copies_r1
            + self.p_r1_opposes_r2
            + self.p_r2_opposes_r1
        )
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise DataError(f"rater-pair posterior must sum to 1, got {total}")

    @property
    def p_similarity(self) -> float:
        """Posterior of similarity-dependence (either direction)."""
        return self.p_r1_copies_r2 + self.p_r2_copies_r1

    @property
    def p_dissimilarity(self) -> float:
        """Posterior of dissimilarity-dependence (either direction)."""
        return self.p_r1_opposes_r2 + self.p_r2_opposes_r1

    @property
    def p_dependent(self) -> float:
        """Posterior of any dependence at all."""
        return self.p_similarity + self.p_dissimilarity

    def dominant_kind(self) -> DependenceKind | None:
        """The more probable dependence kind, or ``None`` if independence wins."""
        if self.p_independent >= self.p_dependent:
            return None
        if self.p_similarity >= self.p_dissimilarity:
            return DependenceKind.SIMILARITY
        return DependenceKind.DISSIMILARITY

    def dependence_on(self, rater: SourceId) -> float:
        """Posterior that *the other rater* depends on ``rater`` (any kind)."""
        if rater == self.r1:
            return self.p_r2_copies_r1 + self.p_r2_opposes_r1
        if rater == self.r2:
            return self.p_r1_copies_r2 + self.p_r1_opposes_r2
        raise DataError(f"{rater!r} is not part of pair ({self.r1!r}, {self.r2!r})")


def _posterior_from_records(
    r1: SourceId,
    r2: SourceId,
    records: Iterable[tuple[Value, Value, float, float]],
    co_rated: int,
    scale,
    params: OpinionParams,
) -> RaterPairDependence:
    """Bayes-combine per-item records into the five-hypothesis posterior.

    Each record is ``(score1, score2, t1, t2)``: the pair's two scores
    for one item and the leave-pair-out consensus probabilities of those
    scores. Shared by the per-pair reference path and the batch
    collector — the records are the point where the two paths meet.
    """
    c = params.influence_rate
    log_ind = 0.0
    log_sim_12 = 0.0  # r1 copies r2
    log_sim_21 = 0.0  # r2 copies r1
    log_dis_12 = 0.0  # r1 opposes r2
    log_dis_21 = 0.0  # r2 opposes r1
    for s1, s2, t1, t2 in records:
        log_ind += math.log(t1) + math.log(t2)
        same = 1.0 if s1 == s2 else 0.0
        mirrored_2 = 1.0 if s2 == scale.mirror(s1) else 0.0
        mirrored_1 = 1.0 if s1 == scale.mirror(s2) else 0.0
        log_sim_21 += math.log(t1) + math.log(c * same + (1 - c) * t2)
        log_sim_12 += math.log(t2) + math.log(c * same + (1 - c) * t1)
        log_dis_21 += math.log(t1) + math.log(c * mirrored_2 + (1 - c) * t2)
        log_dis_12 += math.log(t2) + math.log(c * mirrored_1 + (1 - c) * t1)

    log_posts = [
        math.log(params.prior_independent) + log_ind,
        math.log(params.prior_per_hypothesis) + log_sim_12,
        math.log(params.prior_per_hypothesis) + log_sim_21,
        math.log(params.prior_per_hypothesis) + log_dis_12,
        math.log(params.prior_per_hypothesis) + log_dis_21,
    ]
    posts = normalized_posteriors(log_posts)
    return RaterPairDependence(
        r1=r1,
        r2=r2,
        p_independent=posts[0],
        p_r1_copies_r2=posts[1],
        p_r2_copies_r1=posts[2],
        p_r1_opposes_r2=posts[3],
        p_r2_opposes_r1=posts[4],
        co_rated=co_rated,
    )


def rater_pair_posterior(
    matrix: RatingMatrix,
    r1: SourceId,
    r2: SourceId,
    params: OpinionParams | None = None,
    weights: dict[SourceId, float] | None = None,
) -> RaterPairDependence:
    """Bayes posterior over the five hypotheses for one rater pair.

    ``weights`` (if given) weight the *other* raters when estimating each
    item's consensus — the iterative consensus algorithm passes its
    current rater weights here so already-suspect raters distort the
    independence model less.

    This is the per-pair *reference* path: it re-estimates the
    leave-pair-out consensus of every co-rated item on each call. Loops
    over many pairs should use :class:`RaterPairCollector`.
    """
    if r1 == r2:
        raise DataError("cannot analyse a rater against itself")
    if params is None:
        params = OpinionParams()
    items = matrix.co_rated(r1, r2)

    def records():
        for item in items:
            theta = matrix.consensus(
                item,
                weights=weights,
                exclude=(r1, r2),
                smoothing=params.smoothing,
            )
            s1 = matrix.score_of(r1, item)
            s2 = matrix.score_of(r2, item)
            yield s1, s2, max(theta[s1], _TINY), max(theta[s2], _TINY)

    return _posterior_from_records(
        r1, r2, records(), len(items), matrix.scale, params
    )


#: Per-item smoothed weighted score counts: ``item -> (counts, total)``.
ConsensusCounts = dict[ObjectId, tuple[dict[Value, float], float]]


class RaterPairCollector(PairSlotCollector):
    """Batch co-rating collection for all rater pairs in one sweep.

    The structural pass walks the by-item index once, recording each
    pair's ``(item, score1, score2)`` triples in sorted item order (the
    order :meth:`~repro.opinions.ratings.RatingMatrix.co_rated` yields,
    so the reference path accumulates identically). Per round, one
    :meth:`weighted_counts` table turns any pair's records into
    leave-pair-out consensus probabilities by subtracting the pair's own
    contributions — O(1) per (pair, item) instead of a pass over the
    item's raters.
    """

    def __init__(
        self,
        matrix: RatingMatrix,
        candidate_pairs: list[tuple[SourceId, SourceId]] | None = None,
        *,
        max_raters_per_item: int | None = None,
        sweep=None,
    ) -> None:
        super().__init__(
            candidate_pairs, max_providers_per_item=max_raters_per_item
        )
        self._matrix = matrix
        self._built_size = len(matrix)
        groups = []
        for item in matrix.items:
            ratings = matrix.ratings_for(item)
            providers = [
                (rater, ratings[rater]) for rater in sorted(ratings)
            ]
            groups.append((item, providers))
        self.build(groups, sweep=sweep)

    def _new_slot(
        self, r1: SourceId, r2: SourceId
    ) -> list[tuple[ObjectId, Value, Value]]:
        return []

    def _collect(self, slot, item, r1, score1, r2, score2) -> None:
        slot.append((item, score1, score2))

    @property
    def matrix(self) -> RatingMatrix:
        """The rating matrix this collector was built from."""
        return self._matrix

    def _check_fresh(self) -> None:
        """Raise if the matrix gained ratings after the structural pass.

        Ratings are append-only (re-rating raises), so a length
        comparison detects every mutation; mixing frozen slots with
        live consensus counts would be silently wrong.
        """
        if len(self._matrix) != self._built_size:
            raise DataError(
                "rating matrix has grown since this collector's "
                "structural pass — build a new RaterPairCollector"
            )

    def co_rated(self, r1: SourceId, r2: SourceId) -> int:
        """Number of items both raters scored (0 for uncollected pairs)."""
        key = pair_key(r1, r2)
        if self._packed is not None:
            return self._packed.count(key)
        # A point query must not force the full O(records) packing.
        slot = self._slots.get(key)
        return 0 if slot is None else len(slot)

    def weighted_counts(
        self,
        weights: Mapping[SourceId, float] | None,
        smoothing: float,
    ) -> ConsensusCounts:
        """Per-item smoothed weighted score counts, computed once per round."""
        self._check_fresh()
        if smoothing <= 0:
            raise DataError(f"smoothing must be > 0, got {smoothing}")
        matrix = self._matrix
        levels = matrix.scale.levels
        table: ConsensusCounts = {}
        for item in matrix.items:
            counts = {level: smoothing for level in levels}
            for rater, score in matrix.ratings_for(item).items():
                counts[score] += _rater_weight(weights, rater)
            table[item] = (counts, sum(counts.values()))
        return table

    def pair_posterior(
        self,
        r1: SourceId,
        r2: SourceId,
        params: OpinionParams | None = None,
        weights: Mapping[SourceId, float] | None = None,
        counts: ConsensusCounts | None = None,
    ) -> RaterPairDependence:
        """The five-hypothesis posterior for one pair, from cached records.

        ``counts`` reuses a :meth:`weighted_counts` table across many
        pairs of the same round; without one it is computed here.
        """
        self._check_fresh()
        if params is None:
            params = OpinionParams()
        key = pair_key(r1, r2)
        # Packed-store read path when the packing exists (bulk scoring
        # loops build it once up front); a lone point query reads the
        # slot registry directly rather than paying the full pack.
        if self._packed is not None:
            records = self._packed.segment(key)
        else:
            slot = self._slots.get(key)
            records = slot if slot is not None else []
        if key != (r1, r2):
            records = [(item, s2, s1) for item, s1, s2 in records]
        if counts is None:
            counts = self.weighted_counts(weights, params.smoothing)
        w1 = _rater_weight(weights, r1)
        w2 = _rater_weight(weights, r2)

        def theta_records():
            for item, s1, s2 in records:
                item_counts, total = counts[item]
                excl_total = total - w1 - w2
                c1 = item_counts[s1] - w1 - (w2 if s2 == s1 else 0.0)
                c2 = item_counts[s2] - w2 - (w1 if s1 == s2 else 0.0)
                yield (
                    s1,
                    s2,
                    max(c1 / excl_total, _TINY),
                    max(c2 / excl_total, _TINY),
                )

        return _posterior_from_records(
            r1, r2, theta_records(), len(records), self._matrix.scale, params
        )


def _rater_weight(
    weights: Mapping[SourceId, float] | None, rater: SourceId
) -> float:
    """A rater's consensus weight, matching :meth:`RatingMatrix.consensus`."""
    return 1.0 if weights is None else max(0.0, weights.get(rater, 1.0))


class RaterDependenceResult:
    """Collected rater-pair posteriors, mirroring :class:`DependenceGraph`."""

    def __init__(self, pairs: Iterable[RaterPairDependence] = ()) -> None:
        self._pairs: dict[tuple[SourceId, SourceId], RaterPairDependence] = {}
        for pair in pairs:
            self.add(pair)

    @staticmethod
    def _key(r1: SourceId, r2: SourceId) -> tuple[SourceId, SourceId]:
        if r1 == r2:
            raise DataError(f"a rater cannot pair with itself: {r1!r}")
        return (r1, r2) if r1 < r2 else (r2, r1)

    def add(self, pair: RaterPairDependence) -> None:
        """Insert or replace the posterior for one pair."""
        self._pairs[self._key(pair.r1, pair.r2)] = pair

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[RaterPairDependence]:
        return iter(self._pairs.values())

    def get(self, r1: SourceId, r2: SourceId) -> RaterPairDependence | None:
        """The stored posterior for the pair, if analysed."""
        return self._pairs.get(self._key(r1, r2))

    def probability(
        self, r1: SourceId, r2: SourceId, kind: DependenceKind | None = None
    ) -> float:
        """Dependence posterior for the pair, optionally restricted to a kind."""
        pair = self.get(r1, r2)
        if pair is None:
            return 0.0
        if kind is None:
            return pair.p_dependent
        if kind is DependenceKind.SIMILARITY:
            return pair.p_similarity
        return pair.p_dissimilarity

    def detected_pairs(
        self, kind: DependenceKind | None = None, threshold: float = 0.5
    ) -> set[frozenset[SourceId]]:
        """Pairs whose (kind-restricted) posterior reaches ``threshold``."""
        return {
            frozenset((pair.r1, pair.r2))
            for pair in self
            if self.probability(pair.r1, pair.r2, kind) >= threshold
        }

    def dependence_weight(self, rater: SourceId, influence_rate: float) -> float:
        """Probability that ``rater``'s ratings are its own, for aggregation.

        The consensus aggregator multiplies, over every pair the rater is
        in, the probability that the rater is *not* the dependent side:
        ``Π (1 - c·P(rater depends on other))``. Both kinds discount —
        copied ratings are redundant, opposed ratings are adversarial
        (Example 2.2's aggregation distortion).
        """
        weight = 1.0
        for (a, b), pair in self._pairs.items():
            if rater not in (a, b):
                continue
            weight *= 1.0 - influence_rate * pair.dependence_on(
                b if rater == a else a
            )
        return weight


def discover_rater_dependence(
    matrix: RatingMatrix,
    params: OpinionParams | None = None,
    min_co_rated: int = 1,
    weights: dict[SourceId, float] | None = None,
    collector: RaterPairCollector | None = None,
    sweep=None,
) -> RaterDependenceResult:
    """Analyse every rater pair with enough co-rated items.

    The structural co-rating records for all pairs come from one
    :class:`RaterPairCollector` sweep, and each round's consensus counts
    are computed once and shared across pairs. Iterative callers (the
    dependence-aware consensus loop) build the collector once and pass
    it in, so each round pays only the soft parts. ``sweep`` (a
    :class:`~repro.dependence.sharding.SweepConfig`) shards the
    structural sweep over a worker pool — identical results for any
    worker count.
    """
    if params is None:
        params = OpinionParams()
    if min_co_rated < 1:
        raise DataError(f"min_co_rated must be >= 1, got {min_co_rated}")
    if collector is None:
        collector = RaterPairCollector(matrix, sweep=sweep)
    elif collector.matrix is not matrix:
        raise DataError(
            "collector was built from a different RatingMatrix than the "
            "one being analysed"
        )
    counts = collector.weighted_counts(weights, params.smoothing)
    collector.ensure_packed()  # bulk loop: contiguous read path, once
    result = RaterDependenceResult()
    for r1, r2 in sorted(collector.pairs):
        if collector.co_rated(r1, r2) < min_co_rated:
            continue
        result.add(
            collector.pair_posterior(r1, r2, params, weights, counts=counts)
        )
    return result
