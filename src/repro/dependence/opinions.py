"""Rater-dependence detection: similarity *and* dissimilarity (section 2.2).

Example 2.2 introduces the paper's second kind of dependence: reviewer R4
"has a strong opinion on R1's tastes and chooses to provide opposite
ratings for all of R1's ratings" — dissimilarity-dependence. With no
underlying truth, the snapshot copy model does not apply directly;
instead, each co-rated item's *consensus distribution* plays the role
the false-value model played for facts.

For a rater pair (R1, R2) and each co-rated item ``i`` with
(leave-pair-out) consensus ``θ_i``:

* independent: ``P(r1, r2) = θ_i(r1) · θ_i(r2)``;
* R2 copies R1 (similarity): with probability ``c`` R2 echoes R1's
  rating, else rates independently:
  ``θ_i(r1) · (c·1[r2 = r1] + (1-c)·θ_i(r2))``;
* R2 opposes R1 (dissimilarity): with probability ``c`` R2 gives the
  *mirrored* rating, else rates independently:
  ``θ_i(r1) · (c·1[r2 = mirror(r1)] + (1-c)·θ_i(r2))``.

Five hypotheses (independent + two kinds × two directions) are combined
with Bayes' rule. Conditioning on ``θ_i`` is what defuses the
"correlated information" challenge of section 3.1: agreement on an item
everyone loves is expected under independence (``θ_i`` is concentrated),
while agreement on divisive items — and systematic *mirroring* — is not.

Note the two directions of a kind are nearly symmetric on rating data
alone (mirroring is an involution); direction separation needs temporal
information. The posteriors expose both directions anyway so callers can
fold in such evidence.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.params import OpinionParams
from repro.core.types import ObjectId, SourceId
from repro.core.world import DependenceKind
from repro.exceptions import DataError
from repro.opinions.ratings import RatingMatrix

_TINY = 1e-12


@dataclass(frozen=True, slots=True)
class RaterPairDependence:
    """Posterior over the five hypotheses for one rater pair."""

    r1: SourceId
    r2: SourceId
    p_independent: float
    p_r1_copies_r2: float
    p_r2_copies_r1: float
    p_r1_opposes_r2: float
    p_r2_opposes_r1: float
    co_rated: int

    def __post_init__(self) -> None:
        total = (
            self.p_independent
            + self.p_r1_copies_r2
            + self.p_r2_copies_r1
            + self.p_r1_opposes_r2
            + self.p_r2_opposes_r1
        )
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise DataError(f"rater-pair posterior must sum to 1, got {total}")

    @property
    def p_similarity(self) -> float:
        """Posterior of similarity-dependence (either direction)."""
        return self.p_r1_copies_r2 + self.p_r2_copies_r1

    @property
    def p_dissimilarity(self) -> float:
        """Posterior of dissimilarity-dependence (either direction)."""
        return self.p_r1_opposes_r2 + self.p_r2_opposes_r1

    @property
    def p_dependent(self) -> float:
        """Posterior of any dependence at all."""
        return self.p_similarity + self.p_dissimilarity

    def dominant_kind(self) -> DependenceKind | None:
        """The more probable dependence kind, or ``None`` if independence wins."""
        if self.p_independent >= self.p_dependent:
            return None
        if self.p_similarity >= self.p_dissimilarity:
            return DependenceKind.SIMILARITY
        return DependenceKind.DISSIMILARITY

    def dependence_on(self, rater: SourceId) -> float:
        """Posterior that *the other rater* depends on ``rater`` (any kind)."""
        if rater == self.r1:
            return self.p_r2_copies_r1 + self.p_r2_opposes_r1
        if rater == self.r2:
            return self.p_r1_copies_r2 + self.p_r1_opposes_r2
        raise DataError(f"{rater!r} is not part of pair ({self.r1!r}, {self.r2!r})")


def rater_pair_posterior(
    matrix: RatingMatrix,
    r1: SourceId,
    r2: SourceId,
    params: OpinionParams | None = None,
    weights: dict[SourceId, float] | None = None,
) -> RaterPairDependence:
    """Bayes posterior over the five hypotheses for one rater pair.

    ``weights`` (if given) weight the *other* raters when estimating each
    item's consensus — the iterative consensus algorithm passes its
    current rater weights here so already-suspect raters distort the
    independence model less.
    """
    if r1 == r2:
        raise DataError("cannot analyse a rater against itself")
    if params is None:
        params = OpinionParams()
    items = matrix.co_rated(r1, r2)
    scale = matrix.scale
    c = params.influence_rate

    log_ind = 0.0
    log_sim_12 = 0.0  # r1 copies r2
    log_sim_21 = 0.0  # r2 copies r1
    log_dis_12 = 0.0  # r1 opposes r2
    log_dis_21 = 0.0  # r2 opposes r1
    for item in items:
        theta = matrix.consensus(
            item, weights=weights, exclude=(r1, r2), smoothing=params.smoothing
        )
        s1 = matrix.score_of(r1, item)
        s2 = matrix.score_of(r2, item)
        t1 = max(theta[s1], _TINY)
        t2 = max(theta[s2], _TINY)
        log_ind += math.log(t1) + math.log(t2)
        same = 1.0 if s1 == s2 else 0.0
        mirrored_2 = 1.0 if s2 == scale.mirror(s1) else 0.0
        mirrored_1 = 1.0 if s1 == scale.mirror(s2) else 0.0
        log_sim_21 += math.log(t1) + math.log(c * same + (1 - c) * t2)
        log_sim_12 += math.log(t2) + math.log(c * same + (1 - c) * t1)
        log_dis_21 += math.log(t1) + math.log(c * mirrored_2 + (1 - c) * t2)
        log_dis_12 += math.log(t2) + math.log(c * mirrored_1 + (1 - c) * t1)

    log_posts = [
        math.log(params.prior_independent) + log_ind,
        math.log(params.prior_per_hypothesis) + log_sim_12,
        math.log(params.prior_per_hypothesis) + log_sim_21,
        math.log(params.prior_per_hypothesis) + log_dis_12,
        math.log(params.prior_per_hypothesis) + log_dis_21,
    ]
    peak = max(log_posts)
    exps = [math.exp(lp - peak) for lp in log_posts]
    total = sum(exps)
    return RaterPairDependence(
        r1=r1,
        r2=r2,
        p_independent=exps[0] / total,
        p_r1_copies_r2=exps[1] / total,
        p_r2_copies_r1=exps[2] / total,
        p_r1_opposes_r2=exps[3] / total,
        p_r2_opposes_r1=exps[4] / total,
        co_rated=len(items),
    )


class RaterDependenceResult:
    """Collected rater-pair posteriors, mirroring :class:`DependenceGraph`."""

    def __init__(self, pairs: Iterable[RaterPairDependence] = ()) -> None:
        self._pairs: dict[tuple[SourceId, SourceId], RaterPairDependence] = {}
        for pair in pairs:
            self.add(pair)

    @staticmethod
    def _key(r1: SourceId, r2: SourceId) -> tuple[SourceId, SourceId]:
        if r1 == r2:
            raise DataError(f"a rater cannot pair with itself: {r1!r}")
        return (r1, r2) if r1 < r2 else (r2, r1)

    def add(self, pair: RaterPairDependence) -> None:
        """Insert or replace the posterior for one pair."""
        self._pairs[self._key(pair.r1, pair.r2)] = pair

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[RaterPairDependence]:
        return iter(self._pairs.values())

    def get(self, r1: SourceId, r2: SourceId) -> RaterPairDependence | None:
        """The stored posterior for the pair, if analysed."""
        return self._pairs.get(self._key(r1, r2))

    def probability(
        self, r1: SourceId, r2: SourceId, kind: DependenceKind | None = None
    ) -> float:
        """Dependence posterior for the pair, optionally restricted to a kind."""
        pair = self.get(r1, r2)
        if pair is None:
            return 0.0
        if kind is None:
            return pair.p_dependent
        if kind is DependenceKind.SIMILARITY:
            return pair.p_similarity
        return pair.p_dissimilarity

    def detected_pairs(
        self, kind: DependenceKind | None = None, threshold: float = 0.5
    ) -> set[frozenset[SourceId]]:
        """Pairs whose (kind-restricted) posterior reaches ``threshold``."""
        return {
            frozenset((pair.r1, pair.r2))
            for pair in self
            if self.probability(pair.r1, pair.r2, kind) >= threshold
        }

    def dependence_weight(self, rater: SourceId, influence_rate: float) -> float:
        """Probability that ``rater``'s ratings are its own, for aggregation.

        The consensus aggregator multiplies, over every pair the rater is
        in, the probability that the rater is *not* the dependent side:
        ``Π (1 - c·P(rater depends on other))``. Both kinds discount —
        copied ratings are redundant, opposed ratings are adversarial
        (Example 2.2's aggregation distortion).
        """
        weight = 1.0
        for (a, b), pair in self._pairs.items():
            if rater not in (a, b):
                continue
            weight *= 1.0 - influence_rate * pair.dependence_on(
                b if rater == a else a
            )
        return weight


def discover_rater_dependence(
    matrix: RatingMatrix,
    params: OpinionParams | None = None,
    min_co_rated: int = 1,
    weights: dict[SourceId, float] | None = None,
) -> RaterDependenceResult:
    """Analyse every rater pair with enough co-rated items."""
    if params is None:
        params = OpinionParams()
    if min_co_rated < 1:
        raise DataError(f"min_co_rated must be >= 1, got {min_co_rated}")
    result = RaterDependenceResult()
    raters = matrix.raters
    for i, r1 in enumerate(raters):
        for r2 in raters[i + 1 :]:
            if len(matrix.co_rated(r1, r2)) < min_co_rated:
                continue
            result.add(rater_pair_posterior(matrix, r1, r2, params, weights))
    return result
