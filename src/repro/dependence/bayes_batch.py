"""Batched Bayes posterior kernel over the columnar evidence layout.

:func:`~repro.dependence.bayes.pair_posterior` scores one pair at a
time; a full DEPEN re-score round calls it ~``n²/2`` times, and after
the columnar refresh work of earlier iterations those scalar calls are
the dominant cost of a round. :class:`BatchedPosteriorEngine` computes
the three-hypothesis posterior for **all** candidate pairs (or any
index-selected subset) in one array pass instead: ``kt``/``kf``/``kd``
and the per-shared-value ``(p_true, popularity)`` segments already live
in flat arrays inside :class:`~repro.dependence.evidence.EvidenceCache`
and its :class:`~repro.dependence.entrystore.ColumnarAgreeStore`, so
the hypothesis log-likelihoods become gathers plus ``np.bincount``
segment sums, the ``calibrated``/``evidence_form``/``false_value_model``
branches lift to per-pair masks, and the final softmax is a vectorised
peak-shifted normalisation.

Bit-for-bit parity with the scalar reference is a hard requirement (the
whole repo's optimisation discipline), achieved by the conventions of
:mod:`repro.truth.columnar`:

* transcendentals run as scalar ``math.log``/``math.exp`` applied
  element-wise (numpy's SIMD variants diverge from libm by 1 ulp on a
  small fraction of inputs);
* per-segment accumulation uses ``np.bincount``, which adds weights
  sequentially in input order — each pair's per-value terms are fed in
  segment (object) order, prefixed by the pair's ``kd`` term exactly
  where the scalar loop starts its total (a bin's leading ``+0.0``
  can only flip the sign of a zero, which the non-zero log-prior added
  afterwards erases);
* binary-operator chains mirror the scalar expressions' left-to-right
  association, and the ``_TINY`` floors and the 0.95 popularity clamp
  are applied at the same points.

The engine is selected through ``DependenceParams.posterior_backend``
(``auto`` | ``batch`` | ``scalar``, env ``REPRO_POSTERIOR_BACKEND``);
``scalar`` keeps every call site on the reference loop.
"""

from __future__ import annotations

import math

from repro.core.params import POSTERIOR_BACKENDS, DependenceParams
from repro.dependence.bayes import _TINY, PairDependence
from repro.exceptions import DataError, ParameterError

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

#: Environment variable consulted by ``DependenceParams`` for the
#: default-valued ``posterior_backend`` field.
POSTERIOR_BACKEND_ENV = "REPRO_POSTERIOR_BACKEND"


def resolve_posterior_backend(setting: str, cache) -> str:
    """Resolve ``auto|batch|scalar`` against a concrete evidence cache.

    ``auto`` picks ``batch`` exactly when it can run: numpy importable
    and the cache's entry store columnar. An explicit ``batch`` on a
    cache that cannot support it is a :class:`ParameterError` — the
    caller asked for something impossible and silence would mislead.
    """
    if setting not in POSTERIOR_BACKENDS:
        raise ParameterError(
            "posterior_backend must be 'auto', 'batch' or 'scalar', got "
            f"{setting!r}"
        )
    columnar = cache is not None and cache.entry_store == "columnar"
    if setting == "auto":
        return "batch" if (np is not None and columnar) else "scalar"
    if setting == "batch":
        if np is None:
            raise ParameterError(
                "posterior_backend='batch' needs numpy for its array "
                "kernels; install numpy or use posterior_backend='scalar'"
            )
        if not columnar:
            raise ParameterError(
                "posterior_backend='batch' reads the columnar evidence "
                "layout; build the cache with entry_store='columnar' or "
                "use posterior_backend='scalar'"
            )
    return setting


def _exact_unary(fn, arr):
    """Apply a scalar transcendental element-wise (libm-exact).

    Same convention as :mod:`repro.truth.columnar`: numpy's SIMD
    ``exp``/``log`` differ from ``math.exp``/``math.log`` by 1 ulp on a
    small fraction of inputs, which breaks bit-for-bit equality with the
    scalar reference.
    """
    return np.fromiter(map(fn, arr.tolist()), dtype=np.float64, count=arr.size)


class BatchedPosteriorEngine:
    """All-pairs (or subset) posterior computation for one evidence cache.

    Reads the cache's columnar internals directly (same package); the
    cache hands instances out via
    :meth:`~repro.dependence.evidence.EvidenceCache.posterior_engine`,
    memoized per params. Static, refresh-independent state — pair keys
    in registry order, endpoint source codes, ``kd``, segment lengths,
    the live-entry-to-pair-position map — is cached and re-derived only
    when the cache's structural epoch moves (any ``sync``/``build``
    bumps the dataset version or entry epoch). Per-call inputs are the
    current accuracies and the soft sums of the last ``refresh``.

    Positions are indices into :meth:`pair_keys` (the cache's slot
    registry order — the exact order ``collect_all``/iteration yields
    pairs). All posterior outputs are bit-for-bit equal to running
    :func:`~repro.dependence.bayes.pair_posterior` on the evidence the
    cache would serve for the same pair.
    """

    def __init__(self, cache, params: DependenceParams) -> None:
        if np is None:
            raise ParameterError(
                "posterior_backend='batch' needs numpy for its array "
                "kernels; install numpy or use posterior_backend='scalar'"
            )
        if cache.entry_store != "columnar":
            raise ParameterError(
                "posterior_backend='batch' reads the columnar evidence "
                "layout; build the cache with entry_store='columnar' or "
                "use posterior_backend='scalar'"
            )
        cache.check_compatible(params)
        self._cache = cache
        self._params = params
        self._state_key: tuple | None = None

    # -- static (structural) state --------------------------------------

    def _structural_key(self) -> tuple:
        cache = self._cache
        return (
            cache.synced_version,
            cache._entry_epoch,
            cache._store.n_sids,
            len(cache._slots),
        )

    def _ensure_static(self) -> None:
        key = self._structural_key()
        if key == self._state_key:
            return
        cache = self._cache
        slots = cache._slots
        n_pairs = len(slots)
        self._keys = list(slots)
        self._pos_of_key = {k: i for i, k in enumerate(self._keys)}
        self.sources = cache.dataset.sources
        code = {source: i for i, source in enumerate(self.sources)}
        sid = np.empty(n_pairs, dtype=np.int64)
        kd = np.empty(n_pairs, dtype=np.float64)
        shared_len = np.empty(n_pairs, dtype=np.int64)
        s1c = np.empty(n_pairs, dtype=np.int64)
        s2c = np.empty(n_pairs, dtype=np.int64)
        for i, slot in enumerate(slots.values()):
            sid[i] = slot.sid
            kd[i] = slot.kd
            shared_len[i] = slot.length
            s1c[i] = code[slot.s1]
            s2c[i] = code[slot.s2]
        self._sid = sid
        self._kd = kd
        self._s1c = s1c
        self._s2c = s2c
        # Per-pair mode lift of _slot_escaped: under overlap_policy=
        # "auto" a fast cache scores bound-reaching pairs with the
        # calibrated (marginal, popularity-aware) per-value treatment.
        if cache._auto_empirical:
            self._escaped = (
                shared_len + kd.astype(np.int64) >= cache._overlap_bound
            )
        else:
            self._escaped = np.zeros(n_pairs, dtype=bool)
        # Per-value entry layout: only needed when some pair is scored
        # per-value (non-fast cache, or escaped pairs under auto).
        self._needs_values = (not cache._fast) or bool(self._escaped.any())
        if self._needs_values:
            live_sids, live_eids = cache._store.live()
            pos_of_sid = np.zeros(
                max(cache._store.n_sids, 1), dtype=np.int64
            )
            pos_of_sid[sid] = np.arange(n_pairs, dtype=np.int64)
            self._entry_pos = pos_of_sid[live_sids]
            self._entry_eids = live_eids
        self._state_key = key

    def pair_keys(self):
        """Pair keys in position order (the cache's registry order)."""
        self._ensure_static()
        return self._keys

    def positions_of(self, keys):
        """Positions of the given pair keys, as an int64 array."""
        self._ensure_static()
        pos_of_key = self._pos_of_key
        return np.fromiter(
            (pos_of_key[key] for key in keys),
            dtype=np.int64,
            count=len(keys),
        )

    def endpoint_codes(self):
        """Per-position ``(s1, s2)`` source codes w.r.t. :attr:`sources`."""
        self._ensure_static()
        return self._s1c, self._s2c

    def stamp_array(self):
        """Per-position last-scored round stamps (0 = never scored)."""
        self._ensure_static()
        return self._cache._store.stamps[self._sid]

    def stamp_positions(self, positions, round_index: int) -> None:
        """Record that the pairs at ``positions`` were scored this round."""
        self._ensure_static()
        self._cache._store.set_stamps(self._sid[positions], round_index)

    def moved_pair_mask(self, moved):
        """Per-position mask of pairs referencing a moved entry.

        Same semantics as
        :meth:`~repro.dependence.evidence.EvidenceCache.pairs_with_moved_entries`
        (``moved`` is a table-slot-indexed drift mask) but produced as a
        position mask with no per-pair Python work.
        """
        self._ensure_static()
        cache = self._cache
        entry_mask = cache.moved_entry_mask(moved)
        flagged = cache._store.flagged_sids(entry_mask)
        by_sid = np.zeros(max(cache._store.n_sids, 1), dtype=bool)
        by_sid[flagged] = True
        return by_sid[self._sid]

    # -- per-call inputs -------------------------------------------------

    def _accuracy_vector(self, accuracies):
        """Source-code-indexed accuracy array from a mapping or array."""
        if isinstance(accuracies, np.ndarray):
            if accuracies.size != len(self.sources):
                raise DataError(
                    f"accuracy array has {accuracies.size} entries for "
                    f"{len(self.sources)} sources"
                )
            return np.asarray(accuracies, dtype=np.float64)
        acc = np.empty(len(self.sources), dtype=np.float64)
        for code, source in enumerate(self.sources):
            value = accuracies.get(source)
            if value is not None:
                acc[code] = value
            else:
                # Missing endpoint accuracies must fail like the scalar
                # loop's accuracies[s] probe; non-endpoint sources are
                # never read, so only flag codes that appear in a pair.
                acc[code] = np.nan
        return acc

    def _check_accuracies(self, a1, a2, positions) -> None:
        """The scalar per-call range check, hoisted to the batch boundary.

        One reduction over the gathered endpoint accuracies replaces
        ``2 × n_pairs`` scalar comparisons; out-of-range (or missing —
        NaN) values raise the same errors the scalar path would.
        """
        for name, arr in (("a1", a1), ("a2", a2)):
            if arr.size == 0:
                continue
            lo = arr.min()
            hi = arr.max()
            if 0.0 < lo and hi < 1.0:
                continue
            bad = np.flatnonzero(~((arr > 0.0) & (arr < 1.0)))[0]
            value = arr[bad]
            if math.isnan(value):
                keys = self.pair_keys()
                key = keys[int(positions[bad])]
                raise KeyError(key[0] if name == "a1" else key[1])
            raise DataError(
                f"{name} must be in (0, 1), got {float(value)}"
            )

    # -- the kernel ------------------------------------------------------

    def posterior_arrays(self, accuracies, positions=None):
        """``(p_independent, p_s1_copies_s2, p_s2_copies_s1)`` arrays.

        ``accuracies`` is a source-to-accuracy mapping or a
        source-code-indexed float64 array (codes per :attr:`sources`).
        ``positions`` selects a subset of pairs (unique indices into
        :meth:`pair_keys`); ``None`` scores every pair. Requires the
        cache to be refreshed against the current dataset version, like
        any evidence read.
        """
        cache = self._cache
        if not cache._refreshed:
            raise DataError(
                "evidence cache has not been refreshed yet — call "
                "refresh(value_probs) or collect_all(value_probs) first"
            )
        if cache.dataset.version != cache.synced_version:
            raise DataError(
                "dataset has grown since the last refresh — call "
                "refresh(value_probs) or collect_all(value_probs) to fold "
                "the new claims in"
            )
        self._ensure_static()
        params = self._params
        if positions is None:
            positions = np.arange(self._kd.size, dtype=np.int64)
            s1c = self._s1c
            s2c = self._s2c
            kd = self._kd
            sid = self._sid
            escaped = self._escaped
        else:
            positions = np.asarray(positions, dtype=np.int64)
            s1c = self._s1c[positions]
            s2c = self._s2c[positions]
            kd = self._kd[positions]
            sid = self._sid[positions]
            escaped = self._escaped[positions]
        m = positions.size
        acc = self._accuracy_vector(accuracies)
        a1 = acc[s1c]
        a2 = acc[s2c]
        self._check_accuracies(a1, a2, positions)
        kt = cache._kt_arr[sid]
        kf = cache._kf_arr[sid]

        n = params.n_false_values
        c = params.copy_rate
        one_minus_c = 1.0 - c
        # Per-pair rates, association mirroring _per_object_rates /
        # pair_posterior exactly.
        pt_ind = a1 * a2
        pf_ind = (1.0 - a1) * (1.0 - a2) / n
        pd_ind = np.maximum(_TINY, 1.0 - pt_ind - pf_ind)
        pt_12 = a2 * c + pt_ind * one_minus_c  # S1 copies S2: original is S2
        pf_12 = (1.0 - a2) * c + pf_ind * one_minus_c
        pd_copy = one_minus_c * pd_ind  # identical for both directions
        pt_21 = a1 * c + pt_ind * one_minus_c
        pf_21 = (1.0 - a1) * c + pf_ind * one_minus_c

        log_pt = (
            _exact_unary(math.log, np.maximum(pt_ind, _TINY)),
            _exact_unary(math.log, np.maximum(pt_12, _TINY)),
            _exact_unary(math.log, np.maximum(pt_21, _TINY)),
        )
        log_pd_ind = _exact_unary(math.log, np.maximum(pd_ind, _TINY))
        log_pd_copy = _exact_unary(math.log, np.maximum(pd_copy, _TINY))
        log_pd = (log_pd_ind, log_pd_copy, log_pd_copy)

        if cache._fast:
            value_mask = escaped
            marginal = True  # escaped pairs are calibrated → marginalised
        else:
            value_mask = np.ones(m, dtype=bool)
            marginal = cache._evidence_form == "marginal"
        any_value = bool(value_mask.any())
        all_value = bool(value_mask.all()) if m else False

        lls = [None, None, None]
        if not all_value:
            # Aggregate-count path: kt·ln Pt + kf·ln Pf + kd·ln Pd.
            log_pf = (
                _exact_unary(math.log, np.maximum(pf_ind, _TINY)),
                _exact_unary(math.log, np.maximum(pf_12, _TINY)),
                _exact_unary(math.log, np.maximum(pf_21, _TINY)),
            )
            for h in range(3):
                lls[h] = kt * log_pt[h] + kf * log_pf[h] + kd * log_pd[h]

        if any_value:
            value_lls = self._per_value_logliks(
                positions,
                value_mask,
                marginal,
                a1,
                a2,
                kd,
                (pt_ind, pt_12, pt_21),
                log_pt,
                log_pd,
            )
            if all_value:
                lls = value_lls
            else:
                for h in range(3):
                    lls[h] = np.where(value_mask, value_lls[h], lls[h])

        log_prior_ind = math.log(params.prior_independent)
        log_prior_dir = math.log(params.prior_direction)
        lp0 = log_prior_ind + lls[0]
        lp1 = log_prior_dir + lls[1]
        lp2 = log_prior_dir + lls[2]
        peak = np.maximum(np.maximum(lp0, lp1), lp2)
        w0 = _exact_unary(math.exp, lp0 - peak)
        w1 = _exact_unary(math.exp, lp1 - peak)
        w2 = _exact_unary(math.exp, lp2 - peak)
        total = w0 + w1 + w2
        return w0 / total, w1 / total, w2 / total

    def _per_value_logliks(
        self,
        positions,
        value_mask,
        marginal,
        a1,
        a2,
        kd,
        pt,
        log_pt,
        log_pd,
    ):
        """Per-value log-likelihoods for the selected value-mode pairs.

        Mirrors ``_log_likelihood_per_value``: each pair's total starts
        at ``kd·ln(max(Pd, TINY))`` and accumulates its segment's
        per-entry terms in object order — reproduced here as one
        ``np.bincount`` per hypothesis whose weights put every pair's
        ``kd`` term first (array prefix) and the entries after, so each
        bin adds in the scalar loop's order.
        """
        cache = self._cache
        params = self._params
        m = positions.size
        # Map selected positions to local bins, then keep only entries
        # whose pair is a selected value-mode pair.
        local = np.full(self._kd.size, -1, dtype=np.int64)
        local[positions[value_mask]] = np.flatnonzero(value_mask)
        entry_local = local[self._entry_pos]
        keep = entry_local >= 0
        e_bin = entry_local[keep]
        e_eids = self._entry_eids[keep]

        p = cache._p_arr[e_eids]
        floor = 1.0 / params.n_false_values
        if cache._pop_arr is not None:
            pop = cache._pop_arr[e_eids]
            q = np.where(
                pop < 0.0,
                floor,
                np.minimum(0.95, np.maximum(floor, pop)),
            )
        else:
            q = np.full(e_eids.size, floor, dtype=np.float64)
        om = (1.0 - a1) * (1.0 - a2)
        pf_ind_v = om[e_bin] * q
        c = params.copy_rate
        one_minus_c = 1.0 - c
        # Per-entry false-value rates per hypothesis; the copy
        # hypotheses' (1-a_original)·c constant is a per-pair gather.
        const_12 = (1.0 - a2) * c
        const_21 = (1.0 - a1) * c
        pf_v = (
            pf_ind_v,
            const_12[e_bin] + one_minus_c * pf_ind_v,
            const_21[e_bin] + one_minus_c * pf_ind_v,
        )

        bins_prefix = np.arange(m, dtype=np.int64)
        if marginal:
            bins = np.concatenate([bins_prefix, e_bin])
        else:
            one_minus_p = 1.0 - p
            bins = np.concatenate([bins_prefix, np.repeat(e_bin, 2)])
        out = []
        for h in range(3):
            kd_terms = kd * log_pd[h]
            if marginal:
                terms = _exact_unary(
                    math.log,
                    np.maximum(p * pt[h][e_bin] + (1.0 - p) * pf_v[h], _TINY),
                )
            else:
                term_true = p * log_pt[h][e_bin]
                term_false = one_minus_p * _exact_unary(
                    math.log, np.maximum(pf_v[h], _TINY)
                )
                terms = np.empty(2 * e_bin.size, dtype=np.float64)
                terms[0::2] = term_true
                terms[1::2] = term_false
            out.append(
                np.bincount(
                    bins,
                    weights=np.concatenate([kd_terms, terms]),
                    minlength=m,
                )
            )
        return out

    def posterior_pairs(self, accuracies, positions=None):
        """The selected pairs' posteriors as ``PairDependence`` objects.

        Convenience wrapper for graph-building call sites; the fused
        DEPEN loop uses :meth:`posterior_arrays` directly and skips the
        object churn.
        """
        p_ind, p12, p21 = self.posterior_arrays(accuracies, positions)
        keys = self.pair_keys()
        if positions is not None:
            keys = [keys[i] for i in np.asarray(positions).tolist()]
        return [
            PairDependence(s1, s2, pi, pa, pb)
            for (s1, s2), pi, pa, pb in zip(
                keys, p_ind.tolist(), p12.tolist(), p21.tolist()
            )
        ]
