"""Streaming dependence: live pair posteriors under continuous claim ingest.

The ROADMAP's target workload is a service absorbing claim traffic
continuously, with dependence posteriors that stay fresh without
re-sweeping the whole dataset on every arrival. The batch
:class:`~repro.dependence.evidence.EvidenceCache` already amortises the
structural pass across *rounds*; its :meth:`~repro.dependence.evidence.EvidenceCache.sync`
amortises it across *ingest batches* (dirty-object invalidation against
the dataset's mutation log). :class:`StreamingDependenceEngine` packages
the two into one object with the obvious lifecycle::

    engine = StreamingDependenceEngine(params=params)
    engine.ingest(first_batch)               # structural repair: dirty objects only
    graph = engine.discover()                # posteriors for every candidate pair
    engine.ingest(next_batch)                # more claims arrive ...
    graph = engine.discover()                # ... refreshed, not rebuilt

``ingest``, ``refresh`` and ``discover`` interleave freely; after any
sequence the served evidence — and therefore the discovered
:class:`~repro.dependence.graph.DependenceGraph` — is bit-for-bit what a
cold rebuild on the final dataset would produce (the equivalence the
incremental tests pin down). Truth discovery re-runs on the dirty state
through :meth:`run_truth`, which hands DEPEN the engine's cache so the
iterative loop pays no structural pass either.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset, MutationBatch, MutationDelta
from repro.core.params import DependenceParams
from repro.core.types import SourceId
from repro.dependence.bayes import (
    PairEvidence,
    ValueProbabilities,
    pair_posterior,
    uniform_value_probabilities,
)
from repro.dependence.bayes_batch import resolve_posterior_backend
from repro.dependence.evidence import EvidenceCache
from repro.dependence.graph import DependenceGraph, discover_dependence
from repro.exceptions import DataError

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None


class StreamingDependenceEngine:
    """Maintains a live dependence graph over a growing claim store.

    Parameters
    ----------
    dataset:
        An existing store to adopt (the engine keeps ingesting into it);
        ``None`` starts empty.
    params / min_overlap / exact:
        Passed through to the underlying
        :class:`~repro.dependence.evidence.EvidenceCache`; ``params``
        also scores the posteriors.
    default_accuracy:
        The accuracy assumed for sources with no estimate yet. Running
        :meth:`run_truth` replaces the defaults with DEPEN's estimates
        for subsequent :meth:`discover` calls.
    """

    def __init__(
        self,
        dataset: ClaimDataset | None = None,
        *,
        params: DependenceParams | None = None,
        min_overlap: int = 1,
        exact: bool = False,
        default_accuracy: float = 0.8,
    ) -> None:
        if not 0.0 < default_accuracy < 1.0:
            raise DataError(
                f"default_accuracy must be in (0, 1), got {default_accuracy}"
            )
        self.params = params or DependenceParams()
        self.min_overlap = min_overlap
        self._dataset = ClaimDataset() if dataset is None else dataset
        self._cache = EvidenceCache(
            self._dataset,
            min_overlap=min_overlap,
            params=self.params,
            exact=exact,
        )
        self._graph = DependenceGraph()
        self._graph_version: int | None = None
        self._accuracies: dict[SourceId, float] = {}
        self._default_accuracy = default_accuracy
        # Restricted-rescoring state: the accuracies the live graph was
        # scored under, whether that graph is a valid reuse baseline
        # (it was produced by discover() over the engine's own uniform
        # value probabilities and covers every candidate pair), and the
        # counters of the last discover.
        self._last_accuracies: dict[SourceId, float] | None = None
        self._restricted_valid = False
        self._last_discover_stats: dict[str, int | bool] = {
            "pairs": 0,
            "rescored": 0,
            "reused": 0,
            "restricted": False,
        }
        self._last_truth_stats: dict[str, int | str] = {}
        # Publish hook state: the last truth result and the dataset
        # version it was computed at, so snapshot() can tell a fresh
        # result from one that pre-dates an ingest.
        self._last_result = None
        self._last_result_version: int | None = None
        self._published_rounds = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> ClaimDataset:
        """The live claim store (ingest through the engine, not directly)."""
        return self._dataset

    @property
    def cache(self) -> EvidenceCache:
        """The incrementally maintained evidence cache."""
        return self._cache

    def execution_health(self) -> dict:
        """The cache's supervised-executor health counters.

        ``{"supervised": False}`` for in-process execution; otherwise
        the :class:`~repro.exec.supervisor.SupervisedExecutor` health
        dict — current backend (after any degradation), retry/deadline
        counters, worker liveness — so a serving layer can report
        execution state without reaching through the cache.
        """
        return self._cache.execution_health()

    @property
    def graph(self) -> DependenceGraph:
        """The most recently discovered dependence graph."""
        return self._graph

    @property
    def is_stale(self) -> bool:
        """True when claims arrived after the last :meth:`discover`."""
        return self._graph_version != self._dataset.version

    @property
    def accuracies(self) -> dict[SourceId, float]:
        """Accuracy estimates used by :meth:`discover` (defaults filled in)."""
        return {
            source: self._accuracies.get(source, self._default_accuracy)
            for source in self._dataset.sources
        }

    # ------------------------------------------------------------------
    # lifecycle: ingest / refresh / discover
    # ------------------------------------------------------------------

    def ingest(
        self, claims: MutationBatch | Iterable[Claim]
    ) -> MutationDelta:
        """Absorb a mutation batch and repair the evidence structure.

        Accepts a :class:`~repro.core.dataset.MutationBatch` (mixed
        adds/retractions/corrections) or, as before, a bare iterable of
        claims (an add-only batch). The structural repair touches only
        the pair slots of the dirty objects (plus any pairs crossing the
        overlap threshold in either direction); everything else is
        reused. Returns the dataset's
        :class:`~repro.core.dataset.MutationDelta`.
        """
        delta = self._dataset.apply(claims)
        if delta:
            self._cache.sync()
        return delta

    def refresh(self, value_probs: ValueProbabilities | None = None) -> None:
        """Refresh the soft evidence parts (truth-agnostic by default)."""
        if value_probs is None:
            value_probs = uniform_value_probabilities(self._dataset)
        self._cache.refresh(value_probs)

    def evidence(self, s1: SourceId, s2: SourceId) -> PairEvidence:
        """Evidence for one candidate pair, from the last refresh."""
        return self._cache.evidence(s1, s2)

    @property
    def last_discover_stats(self) -> Mapping[str, int | bool]:
        """Counters of the last :meth:`discover`.

        ``pairs`` candidate pairs existed, ``rescored`` had their
        posterior recomputed, ``reused`` kept the previous posterior
        unchanged; ``restricted`` says whether the restricted path ran
        at all (the first discover, any discover under caller-supplied
        ``value_probs``, and the one following :meth:`run_truth` are
        necessarily full re-scores).
        """
        return dict(self._last_discover_stats)

    @property
    def last_truth_stats(self) -> Mapping[str, int | str]:
        """Counters of the last :meth:`run_truth`.

        ``pairs_rescored`` / ``pairs_reused`` aggregate DEPEN's
        per-round restricted re-scoring counters over the whole run
        (columnar truth backend; see
        :class:`~repro.truth.base.RoundTrace`), ``restricted_rounds``
        counts rounds where the restriction actually reused a
        posterior. Empty before the first :meth:`run_truth`.
        """
        return dict(self._last_truth_stats)

    def discover(
        self,
        value_probs: ValueProbabilities | None = None,
        accuracies: Mapping[SourceId, float] | None = None,
    ) -> DependenceGraph:
        """Score the candidate pairs that can have moved; update the graph.

        Without ``value_probs`` the truth-agnostic uniform distribution
        is used; without ``accuracies`` the engine's current estimates
        (DEPEN's, once :meth:`run_truth` has run; the default before).
        Accuracies are clamped into (0, 1) before scoring — DEPEN's
        estimates legitimately reach exactly 0 or 1 on small or fully
        converged inputs, and the Bayes model needs the open interval
        (the same clamp iterative truth discovery applies,
        :meth:`~repro.core.params.IterationParams.clamp_accuracy`).

        Consecutive default-``value_probs`` discovers recompute
        posteriors only for pairs whose evidence slots were touched by
        ingest, pairs agreeing on a dirty object (their soft evidence
        moves through the object's value probabilities), and pairs with
        an endpoint whose accuracy changed — every other pair's
        posterior is carried over unchanged, which is exact, not an
        approximation (same evidence, same accuracies, same params ⇒
        bit-for-bit the same posterior). Caller-supplied ``value_probs``
        force a full re-score: the engine cannot know which entries
        such a distribution moved. :attr:`last_discover_stats` counts
        what happened.
        """
        if len(self._dataset) == 0:
            raise DataError("streaming engine has no claims yet")
        default_probs = value_probs is None
        if default_probs:
            value_probs = uniform_value_probabilities(self._dataset)
        accs = dict(accuracies) if accuracies is not None else self.accuracies
        accs = {s: min(0.99, max(0.01, a)) for s, a in accs.items()}
        self._cache.sync()
        restricted = (
            default_probs
            and self._restricted_valid
            and self._last_accuracies is not None
        )
        if not restricted:
            self._graph = discover_dependence(
                self._dataset,
                value_probs,
                accs,
                self.params,
                evidence_cache=self._cache,
            )
            rescored = len(self._cache)
        else:
            cache = self._cache
            affected = {key for key in cache.dirty_pairs() if key in cache}
            last_accs = self._last_accuracies
            changed = {s for s, a in accs.items() if last_accs.get(s) != a}
            cache.refresh(value_probs)
            graph = DependenceGraph()
            previous = self._graph
            backend = resolve_posterior_backend(
                self.params.posterior_backend, cache
            )
            if backend == "batch":
                engine = cache.posterior_engine(self.params)
                keys = engine.pair_keys()
                need = np.zeros(len(keys), dtype=bool)
                if changed:
                    # Vectorised endpoint selection: pairs touching a
                    # changed-accuracy source, via the engine's static
                    # endpoint code arrays instead of an O(pairs)
                    # membership loop.
                    code = {s: i for i, s in enumerate(engine.sources)}
                    changed_codes = np.asarray(
                        sorted(code[s] for s in changed if s in code),
                        dtype=np.int64,
                    )
                    if changed_codes.size:
                        s1c, s2c = engine.endpoint_codes()
                        need |= np.isin(s1c, changed_codes)
                        need |= np.isin(s2c, changed_codes)
                for i, key in enumerate(keys):
                    if not need[i] and (
                        key in affected or previous.get(*key) is None
                    ):
                        need[i] = True
                positions = np.flatnonzero(need)
                rescored = int(positions.size)
                scored = iter(engine.posterior_pairs(accs, positions))
                for i, key in enumerate(keys):
                    graph.add(
                        next(scored) if need[i] else previous.get(*key)
                    )
            else:
                if changed:
                    for key in cache:
                        if key[0] in changed or key[1] in changed:
                            affected.add(key)
                rescored = 0
                for key in cache:
                    pair = None if key in affected else previous.get(*key)
                    if pair is None:
                        pair = pair_posterior(
                            cache.evidence(*key), accs[key[0]], accs[key[1]],
                            self.params,
                        )
                        rescored += 1
                    graph.add(pair)
            self._graph = graph
        # Cleared only after scoring succeeded: a KeyError (bad caller
        # accuracies) mid-score must not lose the invalidation set, or
        # a retried discover would serve pre-ingest posteriors as fresh.
        self._cache.clear_dirty_pairs()
        self._graph_version = self._dataset.version
        self._last_accuracies = accs
        self._restricted_valid = default_probs
        self._last_discover_stats = {
            "pairs": len(self._cache),
            "rescored": rescored,
            "reused": len(self._cache) - rescored,
            "restricted": restricted,
        }
        return self._graph

    def run_truth(self, algorithm=None):
        """Re-run truth discovery on the current (dirty) state.

        With the default DEPEN the engine's evidence cache is reused, so
        the iterative loop pays only soft refreshes — the whole point of
        maintaining the cache across ingest. Any other
        :class:`~repro.truth.base.TruthDiscovery` runs as-is. The
        result's accuracies and dependence graph become the engine's
        live state.
        """
        # Imported lazily: repro.truth.depen imports this package, so a
        # top-level import would be circular.
        from repro.truth.depen import Depen

        if algorithm is None:
            algorithm = Depen(self.params, min_overlap=self.min_overlap)
        if isinstance(algorithm, Depen):
            result = algorithm.discover(
                self._dataset, evidence_cache=self._cache
            )
        else:
            result = algorithm.discover(self._dataset)
        counted = [
            trace
            for trace in result.trace
            if trace.pairs_rescored is not None
        ]
        self._last_truth_stats = {
            "algorithm": getattr(algorithm, "name", type(algorithm).__name__),
            "rounds": result.rounds,
            "pairs_rescored": sum(t.pairs_rescored for t in counted),
            "pairs_reused": sum(t.pairs_reused or 0 for t in counted),
            "restricted_rounds": sum(1 for t in counted if t.pairs_reused),
        }
        self._last_result = result
        self._last_result_version = self._dataset.version
        if result.accuracies:
            self._accuracies = dict(result.accuracies)
        if result.dependence is not None:
            self._graph = result.dependence
            self._graph_version = self._dataset.version
            # DEPEN's final graph was scored under its own converged
            # value probabilities, not the engine's uniform ones — it is
            # not a reuse baseline for restricted re-scoring.
            self._restricted_valid = False
        return result

    # ------------------------------------------------------------------
    # serving: snapshot / publish
    # ------------------------------------------------------------------

    @property
    def truth_is_stale(self) -> bool:
        """True when no truth result covers the current dataset version."""
        return (
            self._last_result is None
            or self._last_result_version != self._dataset.version
        )

    def snapshot(self, *, refresh: bool = True):
        """Freeze the current truth round as an immutable serving snapshot.

        With ``refresh=True`` (the default) a stale state — claims
        ingested since the last :meth:`run_truth`, or no run yet — first
        re-runs truth discovery, so the snapshot always reflects the
        dataset it is stamped with; ``refresh=False`` raises on a stale
        state instead (for callers that control the cadence themselves).
        The returned :class:`~repro.serve.snapshot.Snapshot` is
        unpublished (no serving version) until a store stamps it.
        """
        # Imported lazily: repro.serve consumes this module's layer
        # outputs; a top-level import would invert the layering.
        from repro.exceptions import ServeError
        from repro.serve.snapshot import Snapshot

        if self.truth_is_stale:
            if not refresh:
                raise ServeError(
                    "truth state is stale (ingest since the last "
                    "run_truth); call run_truth() or pass refresh=True"
                )
            self.run_truth()
        self._published_rounds += 1
        return Snapshot.from_result(
            self._dataset,
            self._last_result,
            round_id=self._published_rounds,
        )

    def publish(self, store, *, refresh: bool = True):
        """:meth:`snapshot` then ``store.publish`` — returns the snapshot.

        The one-call publish hook the serving loop uses: after any
        sequence of :meth:`ingest` calls, one ``publish`` makes the
        refreshed truth round visible to every reader of ``store``,
        atomically.
        """
        return store.publish(self.snapshot(refresh=refresh))

    def compact(self) -> int:
        """Trim the dataset's mutation log up to the cache's sync point.

        Long-running ingest loops call this periodically so the log does
        not grow without bound. Returns the entries dropped.
        """
        return self._dataset.compact_log(self._cache.synced_version)

    def close(self) -> None:
        """Release the evidence cache's executor, if the cache owns one.

        Relevant under ``DependenceParams(parallel_backend="process",
        pool="persistent")`` and under ``parallel_backend="resident"``
        (whose pinned workers are persistent by construction) — after
        ``close()`` no worker process is left alive. A borrowed
        executor (one handed to the cache at construction) is left
        running for its owner. Idempotent and a no-op otherwise; the
        engine stays usable after closing (the next sharded build
        simply creates a fresh executor).
        """
        self._cache.close()

    def __enter__(self) -> "StreamingDependenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingDependenceEngine({len(self._dataset)} claims, "
            f"{len(self._cache)} candidate pairs, "
            f"{'stale' if self.is_stale else 'live'} graph)"
        )
