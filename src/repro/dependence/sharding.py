"""Sharded parallel execution of the structural evidence sweep.

The structural pass every dependence modality performs — enumerate each
item's provider pairs into per-pair slots — is O(Σ providers²) over
items and embarrassingly parallel *over items*: no item's contribution
depends on any other item's. This module partitions that sweep into
deterministic object-range shards and executes the shards on a process
pool (threads do not help under the GIL), then merges the shard-local
results into the exact structure the serial pass would have built.

The design invariant, pinned by ``tests/test_sharded_sweep.py``:

    **Results are bit-for-bit identical for every backend and worker
    count** — serial, in-process numpy, or a process pool of any size.

Three properties deliver that invariance:

* *deterministic sharding* — :class:`ShardPlanner` cuts the **sorted**
  item list into contiguous ranges, so shard membership is a pure
  function of the item set and the configured shard size, never of
  scheduling. The :class:`~repro.dependence.collector.ProviderCap`
  hot-item truncation is applied per item while packing payloads, so
  capped and serial enumeration agree exactly;
* *order-canonicalised merge* — shard results are merged in shard order
  (shards are ascending item ranges, so concatenation restores the
  global sorted-item order every slot relies on), pairs are
  canonicalised on :func:`~repro.dependence.collector.pair_key`, and the
  evidence-record merge re-sorts on ``(pair, item)`` — the completion
  order of the pool never leaks into the result;
* *pickle-light payloads* — a shard ships as numpy-packed code arrays
  (:class:`ShardPayload`: source codes, interned entry codes, group
  lengths), not as Claim objects or dataset slices, and a worker ships
  its records back the same way (:class:`RecordBlock`).

Execution itself lives behind the transport-agnostic
:class:`repro.exec.ShardExecutor` interface: ``"numpy"`` runs the same
vectorised shard sweep in-process (no pool — the win is replacing the
per-record Python loop with array ops); ``"process"`` fans shards out
to a stateless ``concurrent.futures`` process pool; ``"resident"``
pins each shard to a long-lived worker that keeps the shard's packed
records resident and receives only dirty-range deltas (see
:mod:`repro.exec.resident`). :class:`SweepConfig.executor` builds the
right executor for the policy. The generic, payload-agnostic sharding
used by the temporal and opinion collectors
(:func:`run_collector_shards`) reuses the subclass's own ``_collect``
hook inside each worker, so those modalities parallelise without numpy
packing. :class:`ParallelSweepExecutor` remains as a thin legacy
facade over the same machinery.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None  # serial execution needs none of the packed-payload path

from repro.exceptions import ParameterError

#: Shards smaller than this are merged into their neighbour when the
#: planner derives the size itself — per-shard pool overhead (pickle,
#: dispatch) would otherwise dominate tiny shards.
MIN_DERIVED_SHARD = 32

#: With no explicit ``shard_size``, each worker gets this many shards on
#: average, so one slow shard (a run of hot objects) does not stall the
#: whole pool behind it.
SHARDS_PER_WORKER = 4

_BACKENDS = ("serial", "process", "numpy", "resident")


def _validate_policy(
    backend: str | None = None,
    num_workers: int | None = None,
    shard_size: int | None = None,
) -> None:
    """Shared checks for the execution-policy fields.

    ``None`` skips a field (``shard_size=None`` legitimately means
    "derive", which needs no check, so the two meanings coincide).
    """
    if backend is not None and backend not in _BACKENDS:
        raise ParameterError(
            f"backend must be one of {', '.join(map(repr, _BACKENDS))}, "
            f"got {backend!r}"
        )
    if num_workers is not None and num_workers < 1:
        raise ParameterError(f"num_workers must be >= 1, got {num_workers}")
    if shard_size is not None and shard_size < 1:
        raise ParameterError(
            f"shard_size must be >= 1 or None, got {shard_size}"
        )


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepConfig:
    """How a structural sweep executes: backend + workers + shard size.

    Execution policy only — never part of any model and never able to
    change a result. :meth:`from_params` lifts the policy fields out of
    a :class:`~repro.core.params.DependenceParams`, so snapshot,
    temporal and opinion discovery all share one spelling.
    """

    backend: str = "serial"
    num_workers: int = 1
    shard_size: int | None = None
    pool: str = "ephemeral"

    def __post_init__(self) -> None:
        _validate_policy(self.backend, self.num_workers, self.shard_size)
        if self.pool not in ("ephemeral", "persistent"):
            raise ParameterError(
                f"pool must be 'ephemeral' or 'persistent', got {self.pool!r}"
            )

    @classmethod
    def from_params(cls, params) -> "SweepConfig":
        """The sweep policy a ``DependenceParams`` carries."""
        return cls(
            backend=params.parallel_backend,
            num_workers=params.num_workers,
            shard_size=params.shard_size,
            pool=getattr(params, "pool", "ephemeral"),
        )

    @property
    def parallel(self) -> bool:
        return self.backend != "serial"

    def executor(self):
        """A fresh :class:`repro.exec.ShardExecutor` for this policy.

        The caller owns the returned executor and must close it (or use
        it as a context manager); ``resident`` pools are persistent by
        construction, ``process`` pools only under ``pool="persistent"``.
        """
        from repro.exec import make_executor

        return make_executor(
            self.backend,
            self.num_workers,
            persistent=self.pool == "persistent",
        )

    def planner(self) -> "ShardPlanner":
        return ShardPlanner(self.num_workers, self.shard_size)


# ----------------------------------------------------------------------
# planning: deterministic item -> shard assignment
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous ranges over a sorted item list, plus routing support.

    ``starts`` are the range start indexes (``starts[i] .. starts[i+1]``
    is shard ``i``); ``boundaries`` are the first *items* of each shard,
    which is all :meth:`shard_of` needs to route an arbitrary item —
    including items that did not exist when the plan was made (they fall
    into the shard whose range would contain them).
    """

    starts: tuple[int, ...]
    n_items: int
    boundaries: tuple

    @property
    def n_shards(self) -> int:
        return len(self.starts)

    def ranges(self) -> list[tuple[int, int]]:
        """The ``(start, end)`` index ranges, in shard order."""
        ends = (*self.starts[1:], self.n_items)
        return list(zip(self.starts, ends))

    def shard_of(self, item) -> int:
        """The shard an item routes to (0 when it sorts before everything)."""
        if not self.boundaries:
            return 0
        return max(0, bisect_right(self.boundaries, item) - 1)

    def route(self, items: Iterable) -> dict[int, list]:
        """Group items by shard, each group in sorted-item order.

        Iterating the returned groups in ascending shard id visits the
        items in global sorted order — shards are ascending ranges — so
        routed processing is order-identical to a flat sorted walk.
        """
        routed: dict[int, list] = {}
        for item in sorted(items):
            routed.setdefault(self.shard_of(item), []).append(item)
        return routed


class ShardPlanner:
    """Deterministic object-range partitioning for the parallel sweep.

    An explicit ``shard_size`` fixes the ranges outright. Without one,
    the size is derived so each of the ``num_workers`` workers receives
    about :data:`SHARDS_PER_WORKER` shards (bounded below by
    :data:`MIN_DERIVED_SHARD`). Either way the plan is a pure function
    of the sorted item list and the configuration — results never
    depend on it (the merge is order-canonicalised), only load balance
    does.
    """

    def __init__(
        self, num_workers: int = 1, shard_size: int | None = None
    ) -> None:
        _validate_policy(num_workers=num_workers, shard_size=shard_size)
        self.num_workers = num_workers
        self.shard_size = shard_size

    def resolve_size(self, n_items: int) -> int:
        """The objects per shard used for a sweep over ``n_items``."""
        if self.shard_size is not None:
            return self.shard_size
        target = self.num_workers * SHARDS_PER_WORKER
        return max(MIN_DERIVED_SHARD, -(-n_items // target))

    def plan(self, items: Sequence) -> ShardPlan:
        """Cut the (sorted) item sequence into contiguous shard ranges."""
        n = len(items)
        if n == 0:
            return ShardPlan(starts=(), n_items=0, boundaries=())
        size = self.resolve_size(n)
        starts = tuple(range(0, n, size))
        return ShardPlan(
            starts=starts,
            n_items=n,
            boundaries=tuple(items[s] for s in starts),
        )


# ----------------------------------------------------------------------
# numpy-packed payloads for the snapshot evidence sweep
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPayload:
    """One shard of the packed by-object index, ready to ship to a worker.

    ``src`` / ``entry`` are flat per-claim arrays (source rank codes and
    interned ``(object, value)`` entry codes), ``lengths`` the provider
    count of each object in the shard, ``obj_base`` the global index of
    the shard's first object, ``n_sources`` the code space for pair ids.
    Providers are already cap-filtered and in sorted source order, so
    the worker's pair enumeration needs no policy of its own.
    """

    shard_id: int
    obj_base: int
    src: np.ndarray
    entry: np.ndarray
    lengths: np.ndarray
    n_sources: int


@dataclass(frozen=True)
class RecordBlock:
    """A shard's pair records: one row per (object, provider-pair).

    ``pair`` holds composite pair ids (``s1_code * n_sources + s2_code``
    with ``s1_code < s2_code``), ``obj`` global object indexes, ``entry``
    the first provider's entry code, ``agree`` whether the two providers
    assert the same value. A block's rows are sorted by ``(pair, obj)``
    — the worker pays that sort, in parallel, so the parent's merge
    only needs a stable sort on ``pair`` over the shard-ordered
    concatenation (shards are ascending object ranges, so stability
    preserves each pair's global object order).
    """

    pair: np.ndarray
    obj: np.ndarray
    entry: np.ndarray
    agree: np.ndarray

    @staticmethod
    def empty() -> "RecordBlock":
        return RecordBlock(
            pair=np.empty(0, dtype=np.int64),
            obj=np.empty(0, dtype=np.int64),
            entry=np.empty(0, dtype=np.int64),
            agree=np.empty(0, dtype=bool),
        )

    @staticmethod
    def concatenate(blocks: Sequence["RecordBlock"]) -> "RecordBlock":
        if not blocks:
            return RecordBlock.empty()
        return RecordBlock(
            pair=np.concatenate([b.pair for b in blocks]),
            obj=np.concatenate([b.obj for b in blocks]),
            entry=np.concatenate([b.entry for b in blocks]),
            agree=np.concatenate([b.agree for b in blocks]),
        )


def sweep_shard(payload: ShardPayload) -> RecordBlock:
    """Enumerate one shard's provider pairs into a record block.

    Pure function of the payload (safe to run in any process, any
    order). Objects are processed grouped by provider count so each
    group's pair enumeration is one ``triu_indices`` broadcast instead
    of a Python loop; the block is then sorted by ``(pair, obj)`` before
    returning, so the sort — the priciest merge stage — runs inside the
    workers, in parallel.
    """
    if np is None:  # pragma: no cover - numpy ships with the toolchain
        raise ParameterError(
            "the sharded evidence sweep needs numpy for its packed "
            "payloads; install numpy or use parallel_backend='serial'"
        )
    lengths = payload.lengths
    if lengths.size == 0:
        return RecordBlock.empty()
    offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    src = payload.src
    entry = payload.entry
    n_sources = payload.n_sources
    pair_parts: list[np.ndarray] = []
    obj_parts: list[np.ndarray] = []
    entry_parts: list[np.ndarray] = []
    agree_parts: list[np.ndarray] = []
    for k in np.unique(lengths):
        members = np.nonzero(lengths == k)[0]
        starts = offsets[members]
        ti, tj = np.triu_indices(int(k), 1)
        left = (starts[:, None] + ti[None, :]).ravel()
        right = (starts[:, None] + tj[None, :]).ravel()
        s1 = src[left]
        s2 = src[right]
        pair_parts.append(s1 * n_sources + s2)
        obj_parts.append(
            np.repeat(payload.obj_base + members, ti.size).astype(np.int64)
        )
        e1 = entry[left]
        entry_parts.append(e1)
        agree_parts.append(e1 == entry[right])
    pair = np.concatenate(pair_parts)
    obj = np.concatenate(obj_parts)
    # Composite (pair, local-object) key: local indexes keep the key
    # small and within-shard object order equals global object order.
    order = np.argsort(
        pair * np.int64(lengths.size) + (obj - payload.obj_base),
        kind="stable",
    )
    return RecordBlock(
        pair=pair[order],
        obj=obj[order],
        entry=np.concatenate(entry_parts)[order],
        agree=np.concatenate(agree_parts)[order],
    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


class ParallelSweepExecutor:
    """Legacy callable-based executor (superseded by :mod:`repro.exec`).

    Kept for back compatibility with callers that pass a worker
    *callable* to :meth:`run`; new code obtains a
    :class:`repro.exec.ShardExecutor` from :meth:`SweepConfig.executor`
    and addresses work by registry task name instead.

    Runs shard work under the configured backend, results in shard order.

    ``"numpy"`` (and ``"serial"``, for the generic collector path) runs
    the worker in-process; ``"process"`` uses a
    :class:`~concurrent.futures.ProcessPoolExecutor` of ``num_workers``
    processes. Either way :meth:`run` returns results positionally
    aligned with the submitted payloads — callers merge in shard order
    and stay independent of completion order.

    With ``persistent=True`` the process pool is created lazily on the
    first :meth:`run` and *kept alive* across calls, so repeated
    structural builds — streaming rebuilds, iterative re-syncs, bench
    loops — pay the fork/spawn cost once instead of re-forking per
    sweep. Workers are pure functions of their payloads (no shared
    state), so reuse can never change a result; call :meth:`close` (or
    use the executor as a context manager) to release the workers. The
    default ephemeral mode tears the pool down after every run, exactly
    as before.
    """

    def __init__(
        self, backend: str, num_workers: int = 1, *, persistent: bool = False
    ) -> None:
        _validate_policy(backend, num_workers)
        self.backend = backend
        self.num_workers = num_workers
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None

    def run(self, worker: Callable, payloads: Sequence) -> list:
        """Apply ``worker`` to each payload; results in payload order."""
        if not payloads:
            return []
        if self.backend != "process" or len(payloads) == 1:
            return [worker(payload) for payload in payloads]
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.num_workers
                )
            try:
                return list(self._pool.map(worker, payloads))
            except BrokenProcessPool:
                # Shared recovery with PoolExecutor: warn naming the
                # backend, drop the poisoned pool so the next run forks
                # a fresh one — parity with the ephemeral mode, which
                # recovers by construction.
                from repro.exec.base import discard_broken_pool

                discard_broken_pool(self.backend, self.close)
                raise
        workers = min(self.num_workers, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, payloads))

    def close(self) -> None:
        """Shut down the persistent pool (no-op when none is alive)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelSweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# generic collector sharding (temporal / opinion modalities)
# ----------------------------------------------------------------------


def _collector_shard_sweep(task) -> tuple[dict, dict]:
    """Run one shard of a :class:`PairSlotCollector` subclass's sweep.

    ``task`` is ``(cls, groups, fixed_pairs, cap_limit)``. The worker
    instantiates a bare collector (skipping the subclass ``__init__``,
    which would demand the full dataset) and reuses the serial sweep
    with the subclass's own ``_new_slot`` / ``_collect`` hooks, so a
    shard contributes exactly what the serial pass would for its items.
    Returns the shard's slot registry and its cap-truncation record.
    """
    # Imported here so the module import graph stays acyclic (collector
    # imports nothing from sharding; sharding workers need collector).
    from repro.dependence.collector import PairSlotCollector, ProviderCap

    cls, groups, fixed_pairs, cap_limit = task
    shard = cls.__new__(cls)
    PairSlotCollector.__init__(
        shard, fixed_pairs, max_providers_per_item=cap_limit
    )
    # Quiet: the parent's absorb() emits the one authoritative WARNING
    # per truncation (worker logs die with spawn pools and would
    # duplicate the parent's under fork or the in-process short-circuit).
    shard._cap = ProviderCap(cap_limit, quiet=True)
    PairSlotCollector.build(shard, groups)
    return shard._slots, dict(shard._cap.truncated)


def run_collector_shards(
    cls: type,
    groups: Sequence[tuple],
    fixed_pairs: Sequence[tuple] | None,
    cap_limit: int | None,
    executor,
    planner: ShardPlanner,
) -> tuple[list[tuple[dict, dict]], ShardPlan]:
    """Shard a generic by-item sweep and run it under ``executor``.

    ``groups`` must be the full ``(item, providers)`` list in sorted
    item order — the same input the serial
    :meth:`~repro.dependence.collector.PairSlotCollector.build` takes.
    ``executor`` is a :class:`repro.exec.ShardExecutor` (the legacy
    :class:`ParallelSweepExecutor` is also accepted). Returns the
    per-shard ``(slots, truncated)`` results in shard order plus the
    plan used, for the caller's order-canonicalised merge.
    """
    plan = planner.plan([item for item, _ in groups])
    tasks = [
        (cls, groups[start:end], fixed_pairs, cap_limit)
        for start, end in plan.ranges()
    ]
    if isinstance(executor, ParallelSweepExecutor):
        return executor.run(_collector_shard_sweep, tasks), plan
    return executor.run("collector.shard_sweep", tasks), plan


def merge_collector_shards(
    shard_results: Iterable[tuple[dict, dict]],
    slots: dict,
    new_slot: Callable,
    fixed: bool,
    absorb_truncations: Callable[[Mapping], None],
) -> None:
    """Fold per-shard slot registries into the live one, canonically.

    Shards are visited in shard order and each shard's pairs in its own
    (deterministic) first-encounter order, so derived pair admission and
    every slot's record order match the serial sweep exactly: shard
    ranges are ascending item ranges, and list slots concatenate in
    item order. Slots must be list-like (``extend``) — true for every
    collector modality (the snapshot engine merges its own way).
    """
    for shard_slots, truncated in shard_results:
        for key, records in shard_slots.items():
            slot = slots.get(key)
            if slot is None:
                if fixed:
                    continue
                slot = new_slot(*key)
                slots[key] = slot
            slot.extend(records)
        if truncated:
            absorb_truncations(truncated)
