"""Columnar slot storage shared by the dependence modalities.

Two containers live here:

:class:`ColumnarAgreeStore` — the numpy entry store behind
:class:`~repro.dependence.evidence.EvidenceCache`'s ``"columnar"``
layout. Every candidate pair's agreement list (entry ids, in sorted
object order) is one *segment* of a single flat ``int64`` array, with a
parallel array mapping each cell to its pair's *slot id*. The per-round
hot path then collapses to array ops: gather the entries' current truth
probabilities and segment-sum them per slot with one
``np.bincount(slot_ids, weights=...)`` each for ``kt`` and ``kf``.

The one numerical fact the whole design leans on, pinned by
``tests/test_sharded_sweep.py``: **``np.bincount`` accumulates weights
sequentially in input order**, so each slot's sum adds the exact same
float64 values in the exact same left-to-right order as the pure-Python
reference loop — bit-for-bit identical, at every segment length. (This
is *not* true of ``np.sum``/``np.add.reduceat``, which use pairwise
summation above small sizes; do not swap the primitive.)

Incremental maintenance patches the arrays **in place**. Removals shift
within the segment and leave *slack* cells; an insertion into a full
segment relocates it to the array tail and *tombstones* the old region
(slot id ``-1``); dead cells are skipped by a mask at sum time and
reclaimed by :meth:`~ColumnarAgreeStore.compact` once they outnumber
the live ones. Because a segment's live cells are always contiguous and
in object order, the evidence served from any patched layout is
bit-for-bit what a cold rebuild would serve — physical layout is never
observable.

:class:`PackedRecords` — the modality-agnostic *frozen* CSR packing
used by the temporal and opinion collectors
(:class:`~repro.dependence.collector.PairSlotCollector.packed`). Those
modalities' records are heterogeneous tuples and their datasets refuse
growth after the structural pass, so a one-shot flat-list-plus-offsets
pack (no numpy needed) gives the same contiguous-segment read path the
snapshot engine gets from the mutable store.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

from repro.exceptions import ParameterError

#: A compaction never triggers below this many dead cells — tiny stores
#: would otherwise compact on every sync for no measurable gain.
COMPACT_MIN_DEAD = 64


def require_numpy() -> None:
    """Raise the canonical error when the columnar store lacks numpy."""
    if np is None:
        raise ParameterError(
            "entry_store='columnar' needs numpy for its packed arrays; "
            "install numpy or use entry_store='list'"
        )


class ColumnarAgreeStore:
    """Flat-array agreement segments with tombstone + compact repair.

    Slots are duck-typed: the store manages their ``sid`` (dense slot
    id, the bin index of the segment sums), ``start``/``length`` (the
    live segment ``eids[start:start+length]``) and ``cap`` (the
    allocated region — cells between ``length`` and ``cap`` are slack).
    The owning cache keeps the slot registry and the entry tables; the
    store owns only the segment geometry.

    The store also carries one ``int64`` *round stamp* per slot id —
    the iteration round the slot's pair was last scored at, backing
    DEPEN's per-pair drift baselines. Stamps are data the store merely
    hosts (the consumer writes and interprets them); a fresh or
    backfilled slot starts at stamp 0 ("never scored") and compaction
    carries stamps across the renumbering.
    """

    __slots__ = ("_eids", "_sids", "_used", "_dead", "_n_sids", "_stamps")

    def __init__(self) -> None:
        require_numpy()
        self._eids = np.empty(0, dtype=np.int64)
        self._sids = np.empty(0, dtype=np.int64)
        self._used = 0  # high-water mark; cells past it are untracked
        self._dead = 0  # tombstoned + slack cells below the mark
        self._n_sids = 0
        self._stamps = np.empty(0, dtype=np.int64)

    # -- introspection (tests and compaction policy) --------------------

    @property
    def used(self) -> int:
        """Cells below the high-water mark (live + dead)."""
        return self._used

    @property
    def dead(self) -> int:
        """Tombstoned and slack cells below the high-water mark."""
        return self._dead

    @property
    def n_sids(self) -> int:
        """Slot ids handed out since the last pack/compact."""
        return self._n_sids

    # -- bulk construction ----------------------------------------------

    def pack(self, segments: Iterable[tuple[object, Sequence[int]]]) -> None:
        """Cold layout: one contiguous, slack-free segment per slot.

        ``segments`` yields ``(slot, eid_list)`` in canonical slot
        order; slot ids are assigned in that order. Replaces any
        previous contents.
        """
        items = [(slot, eids) for slot, eids in segments]
        total = sum(len(eids) for _, eids in items)
        self._eids = np.empty(total, dtype=np.int64)
        self._sids = np.empty(total, dtype=np.int64)
        cursor = 0
        for sid, (slot, eids) in enumerate(items):
            n = len(eids)
            slot.sid = sid
            slot.start = cursor
            slot.length = n
            slot.cap = n
            if n:
                self._eids[cursor : cursor + n] = eids
                self._sids[cursor : cursor + n] = sid
            cursor += n
        self._used = total
        self._dead = 0
        self._n_sids = len(items)
        self._stamps = np.zeros(len(items), dtype=np.int64)

    def adopt(self, eids, sids, n_sids: int) -> None:
        """Take ownership of pre-built record arrays (the sharded merge).

        The caller guarantees the arrays are segment-contiguous with
        each segment's cells in object order and has already written the
        slots' ``sid``/``start``/``length``/``cap`` geometry.
        """
        self._eids = np.ascontiguousarray(eids, dtype=np.int64)
        self._sids = np.ascontiguousarray(sids, dtype=np.int64)
        self._used = int(self._eids.size)
        self._dead = 0
        self._n_sids = n_sids
        self._stamps = np.zeros(n_sids, dtype=np.int64)

    def new_sid(self, slot) -> None:
        """Register a slot created after the pack (backfilled pair)."""
        slot.sid = self._n_sids
        slot.start = 0
        slot.length = 0
        slot.cap = 0
        self._n_sids += 1
        self._stamps = np.append(self._stamps, 0)

    # -- reads -----------------------------------------------------------

    def segment(self, slot):
        """The slot's live entry ids, in object order (a view)."""
        return self._eids[slot.start : slot.start + slot.length]

    def live(self):
        """The live cells as parallel ``(sids, eids)`` arrays.

        Segment-contiguous, each segment's cells in object order — the
        canonical flat view every vectorised consumer (segment sums,
        moved-pair flagging, the batched posterior kernel) reads.
        """
        sids = self._sids[: self._used]
        eids = self._eids[: self._used]
        if self._dead:
            mask = sids >= 0
            sids = sids[mask]
            eids = eids[mask]
        return sids, eids

    def sums(self, p):
        """Per-slot ``(Σ p, Σ (1-p))`` over the live segments.

        ``p`` is the entry-id-indexed float64 probability array. The
        returned float64 arrays are indexed by ``sid``. Accumulation is
        ``np.bincount`` — sequential, see the module docstring.
        """
        n = self._n_sids
        if n == 0:
            empty = np.zeros(0, dtype=np.float64)
            return empty, empty.copy()
        sids, eids = self.live()
        gathered = p[eids]
        kt = np.bincount(sids, weights=gathered, minlength=n)
        kf = np.bincount(sids, weights=1.0 - gathered, minlength=n)
        return kt, kf

    def flagged_sids(self, entry_mask):
        """Slot ids whose live segment references a flagged entry.

        ``entry_mask`` is an entry-id-indexed boolean array (e.g. the
        moved-entry mask a
        :class:`~repro.truth.columnar.ValueProbTable` update produced,
        gathered onto entry ids). One vectorised scan over the live
        cells — this is what lets DEPEN's iterative rounds re-score
        only the pairs whose evidence actually moved.
        """
        sids, eids = self.live()
        return np.unique(sids[entry_mask[eids]])

    # -- round stamps -----------------------------------------------------

    @property
    def stamps(self):
        """Per-sid round stamps (a view; 0 means never scored)."""
        return self._stamps

    def set_stamps(self, sids: Sequence[int], value: int) -> None:
        """Stamp the given slot ids with the round ``value``."""
        if len(sids):
            self._stamps[np.asarray(sids, dtype=np.int64)] = value

    def stamp_all(self, value: int) -> None:
        """Stamp every live slot id with the round ``value``."""
        self._stamps[:] = value

    # -- in-place repair --------------------------------------------------

    def insert(self, slot, pos: int, eid: int) -> None:
        """Insert ``eid`` at segment position ``pos`` (object order).

        Uses the segment's slack when there is any; otherwise relocates
        the segment to the array tail (with room to grow) and
        tombstones the old region.
        """
        start, length, cap = slot.start, slot.length, slot.cap
        eids, sids = self._eids, self._sids
        if length < cap:
            eids[start + pos + 1 : start + length + 1] = eids[
                start + pos : start + length
            ]
            eids[start + pos] = eid
            sids[start + length] = slot.sid
            slot.length = length + 1
            self._dead -= 1
            return
        new_cap = max(4, 2 * (length + 1))
        new_start = self._used
        self._ensure(new_start + new_cap)
        eids, sids = self._eids, self._sids
        eids[new_start : new_start + pos] = eids[start : start + pos]
        eids[new_start + pos] = eid
        eids[new_start + pos + 1 : new_start + length + 1] = eids[
            start + pos : start + length
        ]
        sids[new_start : new_start + length + 1] = slot.sid
        eids[new_start + length + 1 : new_start + new_cap] = 0
        sids[new_start + length + 1 : new_start + new_cap] = -1
        eids[start : start + cap] = 0
        sids[start : start + cap] = -1
        self._used = new_start + new_cap
        # Old live cells died; the new region's slack is born dead (the
        # old region's slack was already counted).
        self._dead += length + (new_cap - (length + 1))
        slot.start, slot.length, slot.cap = new_start, length + 1, new_cap

    def remove(self, slot, pos: int) -> None:
        """Remove the cell at segment position ``pos`` (shift left)."""
        start, length = slot.start, slot.length
        eids, sids = self._eids, self._sids
        eids[start + pos : start + length - 1] = eids[
            start + pos + 1 : start + length
        ]
        eids[start + length - 1] = 0
        sids[start + length - 1] = -1
        slot.length = length - 1
        self._dead += 1

    def release(self, slot) -> None:
        """Tombstone a retired slot's whole region."""
        start, cap = slot.start, slot.cap
        self._eids[start : start + cap] = 0
        self._sids[start : start + cap] = -1
        self._dead += slot.length  # slack cells were already dead
        slot.length = 0
        slot.cap = 0

    def append_segment(self, slot, eids: Sequence[int]) -> None:
        """Place a freshly collected segment at the tail (backfill)."""
        n = len(eids)
        start = self._used
        self._ensure(start + n)
        if n:
            self._eids[start : start + n] = eids
            self._sids[start : start + n] = slot.sid
        self._used = start + n
        slot.start, slot.length, slot.cap = start, n, n

    # -- compaction -------------------------------------------------------

    def maybe_compact(self, slots: Iterable) -> bool:
        """Compact when dead cells outnumber live ones (hysteresis)."""
        if self._dead < COMPACT_MIN_DEAD or 2 * self._dead <= self._used:
            return False
        self.compact(slots)
        return True

    def compact(self, slots: Iterable) -> None:
        """Rebuild the cold layout from the live segments.

        ``slots`` must be every live slot, in canonical registry order;
        slot ids are renumbered (any cached per-sid aggregates are
        stale afterwards — the owning cache re-derives them on the next
        refresh, which the mutation that made compaction worthwhile
        already forces).
        """
        live = list(slots)
        old = self._eids
        old_stamps = self._stamps
        total = sum(slot.length for slot in live)
        eids = np.empty(total, dtype=np.int64)
        sids = np.empty(total, dtype=np.int64)
        stamps = np.zeros(len(live), dtype=np.int64)
        cursor = 0
        for sid, slot in enumerate(live):
            n = slot.length
            if n:
                eids[cursor : cursor + n] = old[
                    slot.start : slot.start + n
                ]
                sids[cursor : cursor + n] = sid
            if slot.sid < old_stamps.size:
                stamps[sid] = old_stamps[slot.sid]
            slot.sid = sid
            slot.start = cursor
            slot.cap = n
            cursor += n
        self._eids = eids
        self._sids = sids
        self._used = total
        self._dead = 0
        self._n_sids = len(live)
        self._stamps = stamps

    def _ensure(self, n: int) -> None:
        if self._eids.size >= n:
            return
        size = max(n, 2 * self._eids.size, 256)
        eids = np.empty(size, dtype=np.int64)
        sids = np.empty(size, dtype=np.int64)
        eids[: self._used] = self._eids[: self._used]
        sids[: self._used] = self._sids[: self._used]
        self._eids = eids
        self._sids = sids


class PackedRecords:
    """Frozen CSR packing of a collector's per-pair record lists.

    One flat record list plus per-pair ``(start, end)`` bounds — the
    same contiguous-segment shape the snapshot engine's columnar store
    uses, for modalities whose records are heterogeneous tuples and
    whose datasets are frozen after the structural pass. Needs no
    numpy, so the pure-Python serial environment keeps working.
    """

    __slots__ = ("_records", "_bounds")

    def __init__(self, slots: Mapping[tuple, Sequence]) -> None:
        records: list = []
        bounds: dict[tuple, tuple[int, int]] = {}
        for key, slot in slots.items():
            start = len(records)
            records.extend(slot)
            bounds[key] = (start, len(records))
        self._records = records
        self._bounds = bounds

    def segment(self, key: tuple) -> list:
        """The pair's records, in collection order ([] if uncollected)."""
        span = self._bounds.get(key)
        if span is None:
            return []
        start, end = span
        return self._records[start:end]

    def count(self, key: tuple) -> int:
        """Number of records collected for the pair (0 if uncollected)."""
        span = self._bounds.get(key)
        return 0 if span is None else span[1] - span[0]

    def __contains__(self, key: tuple) -> bool:
        return key in self._bounds

    def __len__(self) -> int:
        return len(self._bounds)

    @property
    def total_records(self) -> int:
        """Records across all pairs (the flat array's length)."""
        return len(self._records)
