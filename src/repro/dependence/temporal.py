"""Temporal copy detection from update traces (section 3.2, temporal case).

The temporal intuitions of the paper, as implemented here:

1. *Shared never-true values beat shared true values.* Co-adopting a
   value that was never true anywhere on the inferred timeline is the
   temporal analogue of a shared false value — two independent sources
   pick the same never-true value with probability
   ``(1-A1)(1-A2)/n``, a copier inherits it with probability ``c``.
2. *Update order and lag carry direction.* Under independence, which of
   two sources adopts a value first is symmetric; under "S2 copies S1",
   S2's adoption strictly trails S1's within the copy-lag window. This
   is what separates the lazy copier S3 (always trailing S1) from the
   slow-but-independent S2 (often leading or tying) in Example 3.2.
3. *Common update traces are weak evidence.* A simultaneous co-update
   shared by many sources mostly reflects the world changing; the
   rarity discount shrinks its contribution.

Per pair, the unit of evidence is a **co-adopted (object, value)**: a
value both sources adopted at some point (first adoption times are
compared). Unilateral values are deliberately *not* scored — which
values a source chooses to track reflects coverage and expertise, not
copying (the "different coverage and expertise" challenge warns against
reading dependence into coverage differences), and a lazy copier's
missed updates would otherwise swamp the signal.

Each co-adoption is classified by **order** (later / tie / earlier /
later-but-outside-window, per direction) and **truth class** (ever-true
vs never-true on the timeline), and scored under three hypotheses
(independent, S1 copies S2, S2 copies S1) via an explicit generative
model; posteriors come from Bayes' rule in log space. The result reuses
:class:`~repro.dependence.bayes.PairDependence` /
:class:`~repro.dependence.graph.DependenceGraph`, so temporal and
snapshot detections are interchangeable downstream.

Batch collection
----------------

Like the snapshot engine, collection splits into a *structural* part
that depends only on the update histories — which (object, value) pairs
each source pair co-adopted, at what times, and how many sources adopted
each value — and a *per-call* part (the ever-true classification against
the current reference timelines). :class:`CoAdoptionCollector` gathers
the structural part for **all** pairs in one sweep over the by-object
index (first-adoption maps computed once per (source, object), not once
per pair), following the shared
:class:`~repro.dependence.collector.PairSlotCollector` pattern;
:func:`collect_co_adoptions` remains as the per-pair reference walk the
equivalence tests compare against.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.claims import TemporalClaim, ValuePeriod
from repro.core.dataset import MutationDelta
from repro.core.params import TemporalParams
from repro.core.temporal_dataset import TemporalDataset
from repro.core.types import ObjectId, SourceId, Value
from repro.dependence.bayes import PairDependence, normalized_posteriors
from repro.dependence.collector import PairKey, PairSlotCollector, pair_key
from repro.dependence.graph import DependenceGraph
from repro.exceptions import DataError

_TINY = 1e-12

#: Copy-rate grid each directed hypothesis is marginalised over.
_COPY_RATE_GRID = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85)


@dataclass(frozen=True, slots=True)
class CoAdoption:
    """One shared adoption of ``value`` for ``object`` by a source pair."""

    object: ObjectId
    value: Value
    t1: float
    t2: float
    ever_true: bool
    n_adopters: int

    @property
    def lag(self) -> float:
        """Signed adoption lag: positive when s2 adopted after s1."""
        return self.t2 - self.t1


def collect_co_adoptions(
    dataset: TemporalDataset,
    s1: SourceId,
    s2: SourceId,
    timelines: Mapping[ObjectId, list[ValuePeriod]],
    adopter_counts: Mapping[tuple[ObjectId, Value], int] | None = None,
    corroboration_rescue: bool = True,
) -> list[CoAdoption]:
    """Enumerate the co-adopted (object, value) pairs of ``s1`` and ``s2``.

    A value is classified *never-true* only when it is absent from the
    reference timelines **and**, with ``corroboration_rescue`` (the
    default), no source outside the pair ever adopted it. Inferred
    timelines miss short-lived truths; a short truth co-captured by a
    third source is almost certainly real, while a copied error stays
    exclusive to the copying pair — so the rescue suppresses the main
    false-positive mode without hiding genuine shared errors. (It does
    assume errors are not shared beyond the pair; large copier cliques
    need the iterative, dependence-discounted timeline loop instead.)
    """
    if s1 == s2:
        raise DataError("cannot analyse a source against itself")
    events: list[CoAdoption] = []
    shared_objects = dataset.objects_of(s1) & dataset.objects_of(s2)
    for obj in sorted(shared_objects):
        adoptions1 = _first_adoptions(dataset, s1, obj)
        adoptions2 = _first_adoptions(dataset, s2, obj)
        for value, t1 in adoptions1.items():
            t2 = adoptions2.get(value)
            if t2 is None:
                continue
            periods = timelines.get(obj, [])
            ever_true = any(p.value == value for p in periods)
            n_adopters = (
                adopter_counts.get((obj, value), 2)
                if adopter_counts is not None
                else _count_adopters(dataset, obj, value)
            )
            if not ever_true and corroboration_rescue and n_adopters > 2:
                ever_true = True
            events.append(
                CoAdoption(
                    object=obj,
                    value=value,
                    t1=t1,
                    t2=t2,
                    ever_true=ever_true,
                    n_adopters=n_adopters,
                )
            )
    return events


def _first_adoptions(
    dataset: TemporalDataset, source: SourceId, obj: ObjectId
) -> dict[Value, float]:
    adoptions: dict[Value, float] = {}
    for time, value in dataset.history(source, obj):
        if value not in adoptions:
            adoptions[value] = time
    return adoptions


def _count_adopters(
    dataset: TemporalDataset, obj: ObjectId, value: Value
) -> int:
    return sum(
        1
        for source in dataset.sources
        if any(v == value for _, v in dataset.history(source, obj))
    )


class CoAdoptionCollector(PairSlotCollector):
    """Batch co-adoption collection for all source pairs in one sweep.

    The structural pass walks the by-object index once: per (source,
    object) the first-adoption map is computed a single time (the
    per-pair reference path recomputes it once per pair the source is
    in), and every pair of sources covering the object records its
    co-adopted ``(value, t1, t2)`` triples into its slot, in the same
    order the reference walk enumerates them — objects ascending, then
    the lower source's adoption order — so downstream log-likelihood
    sums accumulate identically, bit for bit.

    Adopter counts per (object, value) and per-source adoption lists
    fall out of the same sweep; the *ever-true* classification against a
    set of reference timelines is deliberately deferred to
    :meth:`events` because iterative and leave-pair-out callers re-score
    the same structure under different timelines.
    """

    def __init__(
        self,
        dataset: TemporalDataset,
        candidate_pairs: list[tuple[SourceId, SourceId]] | None = None,
        *,
        max_providers_per_object: int | None = None,
        sweep=None,
    ) -> None:
        super().__init__(
            candidate_pairs, max_providers_per_item=max_providers_per_object
        )
        self._dataset = dataset
        self._built_size = len(dataset)
        self._adopter_counts: dict[tuple[ObjectId, Value], int] = {}
        self._adoptions_by_source: dict[
            SourceId, list[tuple[ObjectId, Value]]
        ] = {}
        groups = []
        for obj in dataset.objects:
            providers = []
            for source in sorted(dataset.sources_for(obj)):
                adoptions = _first_adoptions(dataset, source, obj)
                providers.append((source, adoptions))
                by_source = self._adoptions_by_source.setdefault(source, [])
                for value in adoptions:
                    key = (obj, value)
                    self._adopter_counts[key] = (
                        self._adopter_counts.get(key, 0) + 1
                    )
                    by_source.append(key)
            groups.append((obj, providers))
        self.build(groups, sweep=sweep)

    def _new_slot(
        self, s1: SourceId, s2: SourceId
    ) -> list[tuple[ObjectId, Value, float, float]]:
        return []

    def _collect(self, slot, item, s1, adoptions1, s2, adoptions2) -> None:
        for value, t1 in adoptions1.items():
            t2 = adoptions2.get(value)
            if t2 is not None:
                slot.append((item, value, t1, t2))

    @property
    def dataset(self) -> TemporalDataset:
        """The temporal store this collector was built from."""
        return self._dataset

    def _check_fresh(self) -> None:
        """Raise if the dataset grew after the structural pass.

        Temporal claims are append-only, so a length comparison detects
        every mutation; serving stale co-adoption slots against a grown
        dataset would be silently wrong.
        """
        if len(self._dataset) != self._built_size:
            raise DataError(
                "temporal dataset has grown since this collector's "
                "structural pass — build a new CoAdoptionCollector"
            )

    @property
    def adopter_counts(self) -> Mapping[tuple[ObjectId, Value], int]:
        """How many sources ever adopted each (object, value)."""
        return self._adopter_counts

    def never_true_rates(
        self, timelines: Mapping[ObjectId, list[ValuePeriod]]
    ) -> dict[SourceId, float]:
        """Per source, the fraction of its adoptions absent from ``timelines``.

        These are the ``nt_rates`` that floor the independence
        likelihood of never-true co-adoptions (see
        :func:`_event_log_ratio`). Sources with no adoptions are
        omitted, matching the reference computation.
        """
        self._check_fresh()
        rates: dict[SourceId, float] = {}
        for source, adoptions in self._adoptions_by_source.items():
            never_true = sum(
                1
                for obj, value in adoptions
                if not any(p.value == value for p in timelines.get(obj, []))
            )
            rates[source] = never_true / len(adoptions)
        return rates

    def events(
        self,
        s1: SourceId,
        s2: SourceId,
        timelines: Mapping[ObjectId, list[ValuePeriod]],
        corroboration_rescue: bool = True,
    ) -> list[CoAdoption]:
        """The pair's co-adoptions, classified against ``timelines``.

        Equivalent to :func:`collect_co_adoptions` with this collector's
        adopter counts (bit for bit, including event order, when
        ``s1 < s2`` — the order the discovery loop uses). A pair that
        never shares an object yields ``[]``.
        """
        self._check_fresh()
        key = pair_key(s1, s2)
        # Read off the packed store when it exists (bulk discovery
        # builds it once up front); a lone point query reads the slot
        # registry directly rather than paying the full pack. Either
        # way the records are identical, order included.
        if self._packed is not None:
            records = self._packed.segment(key)
        else:
            records = self._slots.get(key) or []
        if not records:
            return []
        swapped = key != (s1, s2)
        events: list[CoAdoption] = []
        for obj, value, t1, t2 in records:
            if swapped:
                t1, t2 = t2, t1
            n_adopters = self._adopter_counts[(obj, value)]
            periods = timelines.get(obj, [])
            ever_true = any(p.value == value for p in periods)
            if not ever_true and corroboration_rescue and n_adopters > 2:
                ever_true = True
            events.append(
                CoAdoption(
                    object=obj,
                    value=value,
                    t1=t1,
                    t2=t2,
                    ever_true=ever_true,
                    n_adopters=n_adopters,
                )
            )
        return events


def lag_order_profile(
    lags_original: list[float],
    lags_copier: list[float],
    window: float,
    tolerance: float = 0.0,
) -> tuple[float, float, float, float] | None:
    """Mann–Whitney-style order profile for the candidate copier.

    Compares every pair of capture lags of the two sources: how often
    would the candidate copier adopt *later within the copy window*,
    *later outside it*, *simultaneously*, or *earlier* than the
    candidate original — purely from the two sources' own freshness
    profiles, with no copying at all? Returns the four probabilities
    (in that order), or ``None`` when either side has no lag samples.
    """
    if not lags_original or not lags_copier:
        return None
    later_in = 0
    later_out = 0
    tie = 0
    total = len(lags_original) * len(lags_copier)
    for lo in lags_original:
        for lc in lags_copier:
            delta = lc - lo
            if abs(delta) <= tolerance:
                tie += 1
            elif delta > 0:
                if delta <= window:
                    later_in += 1
                else:
                    later_out += 1
    earlier = total - later_in - later_out - tie
    return (
        later_in / total,
        later_out / total,
        tie / total,
        earlier / total,
    )


def empirical_order_profile(
    events: list[CoAdoption],
    copier_is_s2: bool,
    params: TemporalParams,
) -> tuple[float, float, float, float] | None:
    """Smoothed per-pair order frequencies, as an independence model.

    The order channel genuinely cannot distinguish an always-trailing
    copier from an always-slower independent source (the paper's "slow
    providers" challenge): both produce the same consistent lag pattern.
    Using the pair's own (Laplace-smoothed) order frequencies as the
    independence baseline makes order evidence self-cancelling, so
    detection rests on what *does* discriminate — shared never-true
    values. Returns ``None`` with no events.
    """
    if not events:
        return None
    counts = {"later_in_window": 0, "later_out_of_window": 0, "tie": 0, "earlier": 0}
    for event in events:
        lag = event.lag if copier_is_s2 else -event.lag
        counts[_classify_order(lag, params)] += 1
    q_side = (1.0 - params.tie_prior) / 2.0
    raw = (
        q_side * params.window_capture,
        q_side * (1.0 - params.window_capture),
        params.tie_prior,
        q_side,
    )
    pseudo = 4.0  # total smoothing mass, spread by the raw prior
    total = len(events) + pseudo
    keys = ("later_in_window", "later_out_of_window", "tie", "earlier")
    return tuple(
        (counts[key] + pseudo * raw[i]) / total for i, key in enumerate(keys)
    )


def _order_probabilities(
    params: TemporalParams,
    profile: tuple[float, float, float, float] | None = None,
) -> dict[str, float]:
    """P(order category | independence) for a directed pair.

    The raw model is symmetric (``tie_prior`` in the middle,
    ``window_capture`` splitting the later mass). With
    ``freshness_adjustment`` > 0 and a profile available, the raw
    probabilities are blended toward the profile: a source that is
    simply *slow* then has its consistent in-window trailing explained
    by independence — the paper's "slow providers" challenge.
    """
    q_side = (1.0 - params.tie_prior) / 2.0
    raw = {
        "later_in_window": q_side * params.window_capture,
        "later_out_of_window": q_side * (1.0 - params.window_capture),
        "tie": params.tie_prior,
        "earlier": q_side,
    }
    blend = params.freshness_adjustment
    if profile is None or blend <= 0.0:
        return raw
    floor = 0.005  # keep every category possible
    keys = ("later_in_window", "later_out_of_window", "tie", "earlier")
    blended = {
        key: (1 - blend) * raw[key] + blend * max(profile[i], floor)
        for i, key in enumerate(keys)
    }
    total = sum(blended.values())
    return {key: value / total for key, value in blended.items()}


def _classify_order(lag: float, params: TemporalParams) -> str:
    if lag == 0.0:
        return "tie"
    if lag < 0.0:
        return "earlier"
    if lag <= params.max_copy_lag:
        return "later_in_window"
    return "later_out_of_window"


def _event_log_ratio(
    event: CoAdoption,
    copier_is_s2: bool,
    a1: float,
    a2: float,
    params: TemporalParams,
    order_ind: dict[str, float],
    nt_rates: tuple[float, float] = (0.0, 0.0),
    copy_rate: float | None = None,
) -> float:
    """log [P(event | copy hypothesis) / P(event | independence)].

    The generative model: with probability ``c`` the copier's adoption is
    a copy — then the value tracks the *original*'s truthfulness (it is
    ever-true with the original's accuracy) and the order is
    later-in-window by construction. With probability ``1-c`` both
    adoptions are independent — truth class and order follow the
    independence model. Both hypotheses are conditioned on the
    co-adoption itself (unilateral values are deliberately unscored, so
    coherence requires normalising by each hypothesis' co-adoption
    probability).

    ``nt_rates`` are the two sources' observed never-true adoption rates
    (fraction of their adoptions absent from the reference timelines).
    They floor the independence likelihood of a never-true co-adoption:
    inferred timelines miss short-lived truths, and two fresh sources
    co-capturing a missed truth must not read as a smoking gun. With
    perfect timelines the rates are ~0 and the model reduces to the pure
    error-collision form, ``(1-A1)(1-A2)/n``.

    ``copy_rate`` overrides ``params.copy_rate`` (the posterior
    marginalises over a grid of copy rates; see
    :func:`temporal_pair_posterior`).
    """
    lag = event.lag if copier_is_s2 else -event.lag
    order = _classify_order(lag, params)

    r1, r2 = nt_rates
    a_orig = a1 if copier_is_s2 else a2
    r_orig = r1 if copier_is_s2 else r2
    p_both_true = a1 * a2
    p_both_false = (1.0 - a1) * (1.0 - a2) / params.n_false_values
    # nt_floor: a small constant probability that a pair-exclusive
    # never-true co-adoption is really a co-missed short truth the
    # reference timelines lost; keeps one such event below the detection
    # threshold while a genuine copier's several shared errors compound.
    p_both_false += params.nt_floor
    p_co_ind = p_both_true + p_both_false
    copied_nt = max(1.0 - a_orig, r_orig)
    if event.ever_true:
        class_ind = p_both_true
        class_copied = 1.0 - copied_nt
    else:
        class_ind = p_both_false
        class_copied = copied_nt

    c = params.copy_rate if copy_rate is None else copy_rate
    p_ind = class_ind * order_ind[order] / max(p_co_ind, _TINY)
    p_co_copy = c + (1.0 - c) * p_co_ind
    copied_mass = class_copied if order == "later_in_window" else 0.0
    p_copy = (
        c * copied_mass + (1.0 - c) * class_ind * order_ind[order]
    ) / max(p_co_copy, _TINY)

    log_ratio = math.log(max(p_copy, _TINY)) - math.log(max(p_ind, _TINY))
    if order == "tie" and event.n_adopters > 2 and params.rarity_weight > 0:
        # Simultaneous adoption shared widely: mostly the world changing.
        log_ratio /= 1.0 + params.rarity_weight * (event.n_adopters - 2)
    if params.evidence_decay != 1.0:
        # Opt-in age decay (ONA's truth-projection DECAY**Δt shape): a
        # copy lands promptly, so a co-adoption whose two sides are far
        # apart in time is weak evidence either way — the whole
        # per-value log-ratio is scaled down, soft evidence rather than
        # a hard count. Gated so decay=1.0 never touches the float path
        # (bitwise-unchanged default).
        log_ratio *= params.evidence_decay ** abs(event.lag)
    return log_ratio


def temporal_pair_posterior(
    events: list[CoAdoption],
    s1: SourceId,
    s2: SourceId,
    a1: float,
    a2: float,
    params: TemporalParams | None = None,
    nt_rates: tuple[float, float] = (0.0, 0.0),
) -> PairDependence:
    """Posterior over {independent, s1 copies s2, s2 copies s1}.

    ``a1``/``a2`` are exactness-style accuracies in (0, 1); clamp before
    calling. With ``params.freshness_adjustment`` > 0 the order model is
    blended toward the pair's empirical order profile
    (:func:`empirical_order_profile`); ``nt_rates`` are the sources'
    never-true adoption rates (see :func:`_event_log_ratio`).
    """
    if params is None:
        params = TemporalParams()
    for name, a in (("a1", a1), ("a2", a2)):
        if not 0.0 < a < 1.0:
            raise DataError(f"{name} must be in (0, 1), got {a}")

    profile_s2_copier = None
    profile_s1_copier = None
    if params.freshness_adjustment > 0.0:
        profile_s2_copier = empirical_order_profile(
            events, copier_is_s2=True, params=params
        )
        profile_s1_copier = empirical_order_profile(
            events, copier_is_s2=False, params=params
        )
    order_s2 = _order_probabilities(params, profile_s2_copier)
    order_s1 = _order_probabilities(params, profile_s1_copier)

    # Marginalise each copy direction over a grid of copy rates. A fixed
    # copy rate lets a long stream of mixed-order co-adoptions drift one
    # direction's likelihood arbitrarily high by chance; under
    # marginalisation, a mixed-order pair is best explained by a tiny
    # copy rate, whose likelihood ratio is ~1 — no evidence.
    def marginal_llr(copier_is_s2: bool, order_ind: dict[str, float]) -> float:
        llrs = []
        for c in _COPY_RATE_GRID:
            llrs.append(
                sum(
                    _event_log_ratio(
                        e,
                        copier_is_s2=copier_is_s2,
                        a1=a1,
                        a2=a2,
                        params=params,
                        order_ind=order_ind,
                        nt_rates=nt_rates,
                        copy_rate=c,
                    )
                    for e in events
                )
            )
        peak = max(llrs)
        return peak + math.log(
            sum(math.exp(llr - peak) for llr in llrs) / len(llrs)
        )

    llr_s2_copies = marginal_llr(True, order_s2)
    llr_s1_copies = marginal_llr(False, order_s1)
    log_posts = [
        math.log(params.prior_independent),
        math.log(params.prior_direction) + llr_s1_copies,
        math.log(params.prior_direction) + llr_s2_copies,
    ]
    posts = normalized_posteriors(log_posts)
    return PairDependence(
        s1=s1,
        s2=s2,
        p_independent=posts[0],
        p_s1_copies_s2=posts[1],
        p_s2_copies_s1=posts[2],
    )


def discover_temporal_dependence(
    dataset: TemporalDataset,
    params: TemporalParams | None = None,
    timelines: Mapping[ObjectId, list[ValuePeriod]] | None = None,
    exactness: Mapping[SourceId, float] | None = None,
    min_co_adoptions: int = 1,
    leave_pair_out: bool = False,
    collector: CoAdoptionCollector | None = None,
    sweep=None,
) -> DependenceGraph:
    """Analyse every source pair of a temporal dataset.

    Timelines and per-source exactness are inferred with
    :func:`repro.temporal.lifespan.infer_timelines` when not supplied
    (ground-truth timelines can be passed for oracle experiments).

    The structural co-adoption evidence for all pairs comes from one
    :class:`CoAdoptionCollector` sweep; callers re-analysing the same
    dataset under different timelines or parameters can build the
    collector once and pass it in. ``sweep`` (a
    :class:`~repro.dependence.sharding.SweepConfig`) shards that sweep
    over a worker pool — results are identical for any worker count.

    ``leave_pair_out`` re-infers each pair's reference timelines from the
    *other* sources only (when at least two remain), so a copier echoing
    an original's error cannot launder that error into a briefly-true
    period and hide the shared-false evidence. Costs one timeline
    inference per pair; intended for small source counts.
    """
    if params is None:
        params = TemporalParams()
    if min_co_adoptions < 1:
        raise DataError(
            f"min_co_adoptions must be >= 1, got {min_co_adoptions}"
        )
    if timelines is None or exactness is None:
        # Imported lazily: repro.temporal.discovery imports this module,
        # so a top-level import would be circular.
        from repro.temporal.lifespan import infer_timelines

        inferred_timelines, inferred_exactness = infer_timelines(dataset)
        if timelines is None:
            timelines = inferred_timelines
        if exactness is None:
            exactness = inferred_exactness

    if collector is None:
        collector = CoAdoptionCollector(dataset, sweep=sweep)
    elif collector.dataset is not dataset:
        raise DataError(
            "collector was built from a different TemporalDataset than "
            "the one being analysed"
        )
    nt_rate = collector.never_true_rates(timelines)
    collector.ensure_packed()  # bulk loop: contiguous read path, once

    def clamp(a: float) -> float:
        return min(0.99, max(0.01, a))

    graph = DependenceGraph()
    sources = dataset.sources
    for i, s1 in enumerate(sources):
        for s2 in sources[i + 1 :]:
            pair_timelines = timelines
            if leave_pair_out:
                others = [s for s in sources if s not in (s1, s2)]
                if len(others) >= 2:
                    from repro.temporal.lifespan import infer_timelines

                    held_out = dataset.restrict_sources(others)
                    if len(held_out) > 0:
                        pair_timelines, _ = infer_timelines(held_out)
            events = collector.events(s1, s2, pair_timelines)
            if len(events) < min_co_adoptions:
                continue
            graph.add(
                temporal_pair_posterior(
                    events,
                    s1,
                    s2,
                    clamp(exactness.get(s1, 0.5)),
                    clamp(exactness.get(s2, 0.5)),
                    params,
                    nt_rates=(nt_rate.get(s1, 0.0), nt_rate.get(s2, 0.0)),
                )
            )
    return graph


class StreamingTemporalDataset:
    """Streaming mirror of the snapshot engine for the temporal modality.

    The snapshot side pairs a mutable :class:`~repro.core.dataset.
    ClaimDataset` with an incrementally repaired
    :class:`~repro.dependence.evidence.EvidenceCache`; this class pairs
    a :class:`~repro.core.temporal_dataset.TemporalDataset` with an
    incrementally maintained :class:`CoAdoptionCollector`. Each
    :meth:`ingest` batch of :class:`~repro.core.claims.TemporalClaim`
    updates lands in the dataset (advancing its mutation-log version)
    and then repairs exactly the co-adoption state the batch dirtied:
    per dirty object, the object's contribution is retired from every
    affected pair slot and re-collected from the current histories —
    adopter counts, per-source adoption lists and hot-object cap
    records included — by splicing the object's run back at its sorted
    position. The maintained collector is therefore *equal* to a cold
    :class:`CoAdoptionCollector` of the post-ingest dataset — slot
    record order included, so :meth:`discover` posteriors match a cold
    run bit for bit.

    Temporal claims are append-only (see
    :mod:`repro.core.temporal_dataset`): a correction in this modality
    is a later update, so there is no retraction surface to mirror —
    the dirty-object repair covers out-of-order arrivals (an update
    landing *before* an already-known one reorders the first-adoption
    map, and the repair recomputes it from scratch).
    """

    def __init__(
        self,
        dataset: TemporalDataset | None = None,
        *,
        candidate_pairs: list[tuple[SourceId, SourceId]] | None = None,
        max_providers_per_object: int | None = None,
        sweep=None,
    ) -> None:
        self._dataset = dataset if dataset is not None else TemporalDataset()
        self._collector = CoAdoptionCollector(
            self._dataset,
            candidate_pairs,
            max_providers_per_object=max_providers_per_object,
            sweep=sweep,
        )
        self._synced_version = self._dataset.version
        # Per-pair count of objects on whose kept provider prefix the
        # pair currently co-occurs. Cold builds admit a slot exactly for
        # pairs with a live co-occurrence; under a provider cap a later
        # arrival can displace a source from a prefix and drop a pair's
        # count to zero, at which point its (then necessarily empty)
        # slot must be withdrawn to keep slot admission equal to cold.
        self._pair_refs: dict[PairKey, int] = {}
        cap = self._collector._cap.cap
        for obj in self._dataset.objects:
            kept = sorted(self._dataset.sources_for(obj))[:cap]
            for i, s1 in enumerate(kept):
                for s2 in kept[i + 1 :]:
                    key = (s1, s2)
                    self._pair_refs[key] = self._pair_refs.get(key, 0) + 1

    @property
    def dataset(self) -> TemporalDataset:
        """The live temporal store."""
        return self._dataset

    @property
    def collector(self) -> CoAdoptionCollector:
        """The incrementally maintained co-adoption structure."""
        return self._collector

    @property
    def synced_version(self) -> int:
        """The dataset version the collector reflects."""
        return self._synced_version

    def __len__(self) -> int:
        return len(self._dataset)

    def ingest(self, claims: Iterable[TemporalClaim]) -> MutationDelta:
        """Absorb an update batch and repair the dirtied co-adoption state.

        Returns the dataset's :class:`~repro.core.dataset.MutationDelta`.
        A mid-batch rejection (conflicting same-time value, wrong claim
        type) still repairs whatever prefix landed before re-raising, so
        the collector never serves stale slots.
        """
        claims = list(claims)
        # Pre-state per candidate object, captured before any add lands:
        # the repair needs to know which (value, source) adoptions to
        # retire from the counts and slots.
        before: dict[ObjectId, tuple[list, dict]] = {}
        for claim in claims:
            if not isinstance(claim, TemporalClaim):
                continue  # dataset.add raises; nothing will land for it
            obj = claim.object
            if obj in before:
                continue
            providers = sorted(self._dataset.sources_for(obj))
            before[obj] = (
                providers,
                {
                    s: _first_adoptions(self._dataset, s, obj)
                    for s in providers
                },
            )
        try:
            delta = self._dataset.add_claims(claims)
        finally:
            dirty = self._dataset.dirty_objects_since(self._synced_version)
            for obj in sorted(dirty):
                self._repair_object(obj, *before[obj])
            if dirty:
                self._collector._packed = None
            self._collector._built_size = len(self._dataset)
            self._synced_version = self._dataset.version
        return delta

    def _repair_object(
        self,
        obj: ObjectId,
        old_providers: list[SourceId],
        old_adoptions: Mapping[SourceId, Mapping[Value, float]],
    ) -> None:
        collector = self._collector
        counts = collector._adopter_counts
        # Retire the object's old adoption bookkeeping.
        for source, adoptions in old_adoptions.items():
            for value in adoptions:
                key = (obj, value)
                remaining = counts[key] - 1
                if remaining:
                    counts[key] = remaining
                else:
                    del counts[key]
            by_source = collector._adoptions_by_source.get(source)
            if by_source is not None:
                by_source[:] = [k for k in by_source if k[0] != obj]
        # Re-collect the current state.
        new_providers = sorted(self._dataset.sources_for(obj))
        providers: list[tuple[SourceId, dict[Value, float]]] = []
        for source in new_providers:
            adoptions = _first_adoptions(self._dataset, source, obj)
            providers.append((source, adoptions))
            by_source = collector._adoptions_by_source.setdefault(source, [])
            for value in adoptions:
                key = (obj, value)
                counts[key] = counts.get(key, 0) + 1
                by_source.append(key)
        cap = collector._cap
        kept = cap.kept(obj, providers)
        if cap.cap is not None and len(providers) <= cap.cap:
            cap.clear(obj)
        new_runs: dict[PairKey, list] = {}
        for i, (s1, adoptions1) in enumerate(kept):
            for s2, adoptions2 in kept[i + 1 :]:
                run = []
                for value, t1 in adoptions1.items():
                    t2 = adoptions2.get(value)
                    if t2 is not None:
                        run.append((obj, value, t1, t2))
                if run:
                    new_runs[(s1, s2)] = run
        # Every pair that held (or now holds) records for this object:
        # pairs among the old kept prefix cover retirement, pairs among
        # the new kept prefix cover (re-)collection. Providers only grow,
        # but a new source can displace an old one from a capped prefix,
        # so both sides are needed.
        old_kept = (
            old_providers if cap.cap is None else old_providers[: cap.cap]
        )
        refs = self._pair_refs
        affected: set[PairKey] = set(new_runs)
        for i, s1 in enumerate(old_kept):
            for s2 in old_kept[i + 1 :]:
                key = (s1, s2)
                affected.add(key)
                remaining = refs[key] - 1
                if remaining:
                    refs[key] = remaining
                else:
                    del refs[key]
        kept_sources = [s for s, _ in kept]
        for i, s1 in enumerate(kept_sources):
            for s2 in kept_sources[i + 1 :]:
                key = (s1, s2)
                affected.add(key)
                refs[key] = refs.get(key, 0) + 1
        slots = collector._slots
        for key in sorted(affected):
            run = new_runs.get(key, [])
            slot = slots.get(key)
            if slot is None:
                # A cold build admits a slot for every pair with a live
                # co-occurrence on some item, records or not.
                if key in refs and not collector._fixed:
                    slots[key] = list(run)
                continue
            if key not in refs and not collector._fixed:
                # The pair's last co-occurrence just went away (a new
                # arrival displaced a source from this object's capped
                # prefix); a cold build would not admit it at all.
                del slots[key]
                continue
            # Splice: drop the object's old records, insert the new run
            # at its object-ascending position (the order a cold build's
            # sorted group sweep produces).
            out: list = []
            inserted = not run
            for rec in slot:
                if rec[0] == obj:
                    continue
                if not inserted and rec[0] > obj:
                    out.extend(run)
                    inserted = True
                out.append(rec)
            if not inserted:
                out.extend(run)
            slot[:] = out

    def discover(self, **kwargs) -> DependenceGraph:
        """Analyse every pair over the maintained co-adoption structure.

        Exactly :func:`discover_temporal_dependence` with this
        dataset/collector pair — bit-for-bit what a cold collector
        would produce.
        """
        return discover_temporal_dependence(
            self._dataset, collector=self._collector, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingTemporalDataset({len(self._dataset)} claims, "
            f"{len(self._collector)} pairs, v{self._synced_version})"
        )
