"""Source recommendation (section 4, "Source recommendation").

"Recommendations of such sources can be based on many factors, such as
accuracy, coverage, freshness of provided data, and independence of
opinions."

:class:`SourceScorecard` combines the four factors with caller-chosen
weights; :func:`recommend_sources` additionally supports the paper's
"tricky decision": when the goal is truth/consensus, dependent sources
are redundant and are penalised *marginally* against the sources already
recommended; when the goal is diverse opinions, sources with
dissimilarity-dependence are allowed (they are, by construction, a
diverse voice), so only similarity-dependence is penalised.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.types import SourceId
from repro.dependence.graph import DependenceGraph
from repro.dependence.opinions import RaterDependenceResult
from repro.exceptions import ParameterError


@dataclass(frozen=True, slots=True)
class ScoreWeights:
    """Relative weights of the four recommendation factors."""

    accuracy: float = 0.4
    coverage: float = 0.3
    freshness: float = 0.1
    independence: float = 0.2

    def __post_init__(self) -> None:
        values = (self.accuracy, self.coverage, self.freshness, self.independence)
        if any(w < 0 for w in values):
            raise ParameterError("score weights must be non-negative")
        if sum(values) <= 0:
            raise ParameterError("at least one score weight must be positive")

    def normalised(self) -> "ScoreWeights":
        """Weights rescaled to sum to 1."""
        total = (
            self.accuracy + self.coverage + self.freshness + self.independence
        )
        return ScoreWeights(
            accuracy=self.accuracy / total,
            coverage=self.coverage / total,
            freshness=self.freshness / total,
            independence=self.independence / total,
        )


@dataclass(frozen=True, slots=True)
class SourceScorecard:
    """One source's recommendation profile; every factor lies in [0, 1]."""

    source: SourceId
    accuracy: float
    coverage: float
    freshness: float
    independence: float

    def __post_init__(self) -> None:
        for name in ("accuracy", "coverage", "freshness", "independence"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParameterError(
                    f"{name} of {self.source!r} must be in [0, 1], got {value}"
                )

    def score(self, weights: ScoreWeights | None = None) -> float:
        """Weighted composite score in [0, 1]."""
        w = (weights or ScoreWeights()).normalised()
        return (
            w.accuracy * self.accuracy
            + w.coverage * self.coverage
            + w.freshness * self.freshness
            + w.independence * self.independence
        )


def build_scorecards(
    accuracies: Mapping[SourceId, float],
    coverages: Mapping[SourceId, int],
    dependence: DependenceGraph,
    freshness: Mapping[SourceId, float] | None = None,
) -> dict[SourceId, SourceScorecard]:
    """Assemble scorecards from discovery outputs.

    Coverage is normalised by the maximum coverage; independence is
    ``1 - max dependence posterior`` over the source's analysed pairs;
    freshness defaults to 1.0 for snapshot settings (no lag evidence).
    """
    if not accuracies:
        raise ParameterError("no sources to score")
    max_coverage = max(coverages.values(), default=0)
    cards = {}
    for source in sorted(accuracies):
        cards[source] = SourceScorecard(
            source=source,
            accuracy=min(1.0, max(0.0, accuracies[source])),
            coverage=(
                coverages.get(source, 0) / max_coverage if max_coverage else 0.0
            ),
            freshness=(freshness or {}).get(source, 1.0),
            independence=1.0 - dependence.dependence_score(source),
        )
    return cards


def rank_sources(
    cards: Mapping[SourceId, SourceScorecard],
    weights: ScoreWeights | None = None,
) -> list[SourceId]:
    """Sources by decreasing composite score (ties lexicographic)."""
    return sorted(
        cards, key=lambda s: (-cards[s].score(weights), s)
    )


def recommend_sources(
    cards: Mapping[SourceId, SourceScorecard],
    dependence: DependenceGraph,
    k: int,
    weights: ScoreWeights | None = None,
    goal: str = "truth",
    copy_rate: float = 0.8,
    opinion_dependence: "RaterDependenceResult | None" = None,
) -> list[SourceId]:
    """Greedy top-``k`` recommendation with marginal dependence penalties.

    ``goal="truth"`` penalises any dependence on already-recommended
    sources: redundant (copied) or adversarial (opposed) content adds
    nothing to truth finding. ``goal="diversity"`` penalises only
    *similarity* dependence — a dissimilarity-dependent source is a
    diverse voice the paper says we "might want to point out"; the kind
    split comes from ``opinion_dependence`` when provided (the snapshot
    graph carries copying only, which is similarity by construction).
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if goal not in ("truth", "diversity"):
        raise ParameterError(f"goal must be 'truth' or 'diversity', got {goal!r}")

    remaining = set(cards)
    picked: list[SourceId] = []
    while remaining and len(picked) < k:
        best = None
        best_score = -1.0
        for source in sorted(remaining):
            score = cards[source].score(weights)
            for prior in picked:
                score *= 1.0 - copy_rate * _penalty(
                    source, prior, dependence, goal, opinion_dependence
                )
            if score > best_score:
                best_score = score
                best = source
        picked.append(best)
        remaining.discard(best)
    return picked


class _SnapshotDependenceView:
    """Adapter giving a snapshot the two-call surface scoring needs.

    :func:`build_scorecards` and :func:`_penalty` only ever ask a
    dependence graph ``dependence_score(source)`` and
    ``probability(s1, s2)`` — both of which a published
    :class:`~repro.serve.snapshot.Snapshot` answers from its frozen
    arrays, so recommendation can run entirely against the serving
    layer's read path with no live graph in sight.
    """

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot) -> None:
        self._snapshot = snapshot

    def probability(self, s1: SourceId, s2: SourceId) -> float:
        return self._snapshot.dependence_probability(s1, s2)

    def dependence_score(self, source: SourceId) -> float:
        return self._snapshot.dependence_score(source)


def snapshot_scorecards(
    snapshot, freshness: Mapping[SourceId, float] | None = None
) -> dict[SourceId, SourceScorecard]:
    """Scorecards for every source of a published snapshot.

    Same normalisation as :func:`build_scorecards`, fed from the
    snapshot's frozen accuracy/coverage/dependence arrays instead of
    live discovery outputs — so a recommend served at version N keeps
    answering from version N even while newer rounds publish.
    """
    accuracies = {s: snapshot.accuracy(s) for s in snapshot.sources}
    coverages = {s: snapshot.source_coverage(s) for s in snapshot.sources}
    return build_scorecards(
        accuracies,
        coverages,
        _SnapshotDependenceView(snapshot),
        freshness=freshness,
    )


def recommend_from_snapshot(
    snapshot,
    k: int,
    weights: ScoreWeights | None = None,
    goal: str = "truth",
    copy_rate: float = 0.8,
    cards: Mapping[SourceId, SourceScorecard] | None = None,
) -> list[SourceId]:
    """Greedy top-``k`` recommendation against one published snapshot.

    ``cards`` lets a serving engine reuse scorecards it already built
    for this snapshot version; omitted, they are derived on the spot.
    """
    if cards is None:
        cards = snapshot_scorecards(snapshot)
    return recommend_sources(
        cards,
        _SnapshotDependenceView(snapshot),
        k,
        weights=weights,
        goal=goal,
        copy_rate=copy_rate,
    )


def _penalty(
    source: SourceId,
    prior: SourceId,
    dependence: DependenceGraph,
    goal: str,
    opinion_dependence: "RaterDependenceResult | None",
) -> float:
    """Marginal dependence penalty of picking ``source`` after ``prior``."""
    penalty = dependence.probability(source, prior)
    if opinion_dependence is None:
        return penalty
    pair = opinion_dependence.get(source, prior)
    if pair is None:
        return penalty
    if goal == "truth":
        return max(penalty, pair.p_dependent)
    return max(penalty, pair.p_similarity)
