"""Source recommendation from accuracy, coverage, freshness, independence."""

from repro.recommend.scoring import (
    ScoreWeights,
    SourceScorecard,
    build_scorecards,
    rank_sources,
    recommend_from_snapshot,
    recommend_sources,
    snapshot_scorecards,
)

__all__ = [
    "ScoreWeights",
    "SourceScorecard",
    "build_scorecards",
    "rank_sources",
    "recommend_from_snapshot",
    "recommend_sources",
    "snapshot_scorecards",
]
