"""The paper's worked examples as data (Tables 1, 2, 3)."""

from repro.datasets.paper_tables import (
    RATING_SCALE,
    TABLE1,
    TABLE1_COPIERS,
    TABLE1_TRUTH,
    TABLE2,
    TABLE2_ANTI_PAIRS,
    TABLE3,
    TABLE3_TIMELINES,
    table1_dataset,
    table3_dataset,
)

__all__ = [
    "RATING_SCALE",
    "TABLE1",
    "TABLE1_COPIERS",
    "TABLE1_TRUTH",
    "TABLE2",
    "TABLE2_ANTI_PAIRS",
    "TABLE3",
    "TABLE3_TIMELINES",
    "table1_dataset",
    "table3_dataset",
]
