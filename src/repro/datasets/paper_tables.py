"""The paper's worked examples (Tables 1, 2, 3) encoded as data.

These small datasets drive the first three reproduction benches and many
unit tests, because the paper states exactly what a correct system should
conclude on them:

* **Table 1** (researcher affiliations): S1 provides all true values; S4
  copies S3 exactly; S5 copies S3 with one change ("UWisc" for Suciu).
  Naive voting over S1..S3 gets the first four researchers right but is
  unsure about Dong; over S1..S5 it wrongly picks S3's value for three of
  the five researchers (Example 2.1).
* **Table 2** (movie ratings): R4 always opposes R1 —
  dissimilarity-dependence (Example 2.2).
* **Table 3** (temporal affiliations): only S1 is up to date; S2 is an
  independent-but-slow provider (many of its updates precede S1's); S3 is
  a lazy copier of S1 (its matching updates strictly trail S1's)
  (Example 3.2).
"""

from __future__ import annotations

from repro.core.claims import ValuePeriod
from repro.core.dataset import ClaimDataset
from repro.core.temporal_dataset import TemporalDataset

# ---------------------------------------------------------------------------
# Table 1 — snapshot affiliations
# ---------------------------------------------------------------------------

#: The five researchers' true affiliations (what S1 asserts).
TABLE1_TRUTH: dict[str, str] = {
    "Suciu": "UW",
    "Halevy": "Google",
    "Balazinska": "UW",
    "Dalvi": "Yahoo!",
    "Dong": "AT&T",
}

#: Table 1 of the paper, as ``{object: {source: value}}``.
TABLE1: dict[str, dict[str, str]] = {
    "Suciu": {"S1": "UW", "S2": "MSR", "S3": "UW", "S4": "UW", "S5": "UWisc"},
    "Halevy": {"S1": "Google", "S2": "Google", "S3": "UW", "S4": "UW", "S5": "UW"},
    "Balazinska": {"S1": "UW", "S2": "UW", "S3": "UW", "S4": "UW", "S5": "UW"},
    "Dalvi": {"S1": "Yahoo!", "S2": "Yahoo!", "S3": "UW", "S4": "UW", "S5": "UW"},
    "Dong": {"S1": "AT&T", "S2": "Google", "S3": "UW", "S4": "UW", "S5": "UW"},
}

#: The copying structure the example stipulates: S4 and S5 copy from S3.
TABLE1_COPIERS: list[tuple[str, str]] = [("S4", "S3"), ("S5", "S3")]


def table1_dataset(sources: tuple[str, ...] = ("S1", "S2", "S3", "S4", "S5")) -> ClaimDataset:
    """Table 1 as a :class:`ClaimDataset`, optionally restricted to a prefix.

    ``table1_dataset(("S1", "S2", "S3"))`` reproduces the first half of
    Example 2.1 (before the copiers join).
    """
    keep = set(sources)
    return ClaimDataset.from_table(
        {
            obj: {s: v for s, v in row.items() if s in keep}
            for obj, row in TABLE1.items()
        }
    )


# ---------------------------------------------------------------------------
# Table 2 — movie ratings
# ---------------------------------------------------------------------------

#: Ordinal rating scale used by Table 2, worst to best.
RATING_SCALE: tuple[str, ...] = ("Bad", "Neutral", "Good")

#: Table 2 of the paper, as ``{item: {rater: score}}``.
TABLE2: dict[str, dict[str, str]] = {
    "The Pianist": {"R1": "Good", "R2": "Neutral", "R3": "Bad", "R4": "Bad"},
    "Into the Wild": {"R1": "Good", "R2": "Bad", "R3": "Good", "R4": "Bad"},
    "The Matrix": {"R1": "Bad", "R2": "Bad", "R3": "Good", "R4": "Good"},
}

#: The dependence the example stipulates: R4 dissimilarity-depends on R1.
TABLE2_ANTI_PAIRS: list[tuple[str, str]] = [("R4", "R1")]


# ---------------------------------------------------------------------------
# Table 3 — temporal affiliations
# ---------------------------------------------------------------------------

#: Table 3 of the paper, as ``{object: {source: [(year, value), ...]}}``.
TABLE3: dict[str, dict[str, list[tuple[float, str]]]] = {
    "Suciu": {
        "S1": [(2002, "UW"), (2006, "MSR"), (2007, "UW")],
        "S2": [(2006, "MSR")],
        "S3": [(2001, "UW"), (2003, "UW")],
    },
    "Halevy": {
        "S1": [(2002, "UW"), (2006, "Google")],
        "S2": [(2001, "UW"), (2006, "Google")],
        "S3": [(2003, "UW")],
    },
    "Balazinska": {
        "S1": [(2006, "UW")],
        "S2": [(2006, "UW")],
        "S3": [(2007, "UW")],
    },
    "Dalvi": {
        "S1": [(2002, "UW"), (2007, "Yahoo!")],
        "S2": [(2007, "Yahoo!")],
        "S3": [(2003, "UW")],
    },
    "Dong": {
        "S1": [(2002, "UW"), (2006, "Google"), (2007, "AT&T")],
        "S2": [(2001, "UW"), (2006, "Google")],
        "S3": [(2003, "UW")],
    },
}

#: True affiliation timelines consistent with Table 3's caption
#: ("only S1 provides up-to-date true values since 2002").
TABLE3_TIMELINES: dict[str, list[ValuePeriod]] = {
    "Suciu": [
        ValuePeriod("UW", 2002, 2006),
        ValuePeriod("MSR", 2006, 2007),
        ValuePeriod("UW", 2007, None),
    ],
    "Halevy": [
        ValuePeriod("UW", 2002, 2006),
        ValuePeriod("Google", 2006, None),
    ],
    "Balazinska": [ValuePeriod("UW", 2006, None)],
    "Dalvi": [
        ValuePeriod("UW", 2002, 2007),
        ValuePeriod("Yahoo!", 2007, None),
    ],
    "Dong": [
        ValuePeriod("UW", 2002, 2006),
        ValuePeriod("Google", 2006, 2007),
        ValuePeriod("AT&T", 2007, None),
    ],
}


def table3_dataset() -> TemporalDataset:
    """Table 3 as a :class:`TemporalDataset`."""
    return TemporalDataset.from_table(TABLE3)
