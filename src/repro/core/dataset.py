"""Snapshot claim store with the indexes dependence discovery needs.

A :class:`ClaimDataset` holds one :class:`~repro.core.claims.Claim` per
(source, object) pair — the single-snapshot setting of section 3.2 — and
maintains three indexes:

* by source: everything one source says (to compute its accuracy);
* by object: all conflicting values for one object (to run a vote);
* by (object, value): the set of sources asserting a particular value
  (the "vote block" used when discounting copied votes).

It also implements the set algebra the paper's second intuition needs:
the *overlap* of two sources (objects both cover) and each source's
*private remainder* — "if the accuracy of a data source on the subset of
information it shares in common with another data source is significantly
different from its accuracy on the remaining information, the data source
is more likely to be a partial copier" (section 3.2).

Ingest and change tracking
--------------------------

The store is mutable under the full mutation algebra real feeds need:
claims can be *added*, *retracted* (withdrawn entirely) and *corrected*
(same source re-asserts a different value). Blind conflicting
re-assertions still raise — a correction must be explicit
(:meth:`~ClaimDataset.correct`), so an ingest bug cannot silently
rewrite history. Every successful mutation bumps a monotonic
:attr:`~ClaimDataset.version` and appends a typed :class:`Mutation`
record to the mutation log, so consumers that cache derived structure
(the batch evidence engine, vote-order caches) can ask "what changed
since version v?" and repair only the dirty objects:

* :meth:`~ClaimDataset.dirty_objects_since` — objects touched by *any*
  mutation kind, removals included;
* :meth:`~ClaimDataset.mutations_since` — per dirty object, each
  touched source's value *as of* the asked-for version (or
  :data:`ABSENT`), i.e. exactly the old state an inverse delta needs;
* :meth:`~ClaimDataset.new_claims_since` — the coarse per-object
  touched-source sets (kept for add-mostly consumers).

:meth:`~ClaimDataset.apply` is the unified ingest entry point: one
:class:`MutationBatch` of mixed adds/retractions/corrections applied as
a single versioned transaction, returning a :class:`MutationDelta`.
:meth:`~ClaimDataset.add_claims`, :meth:`~ClaimDataset.retract_claims`
and :meth:`~ClaimDataset.correct_claims` are thin wrappers constructing
single-kind batches.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from operator import itemgetter
from types import MappingProxyType
from typing import Any, NamedTuple

from repro.core.claims import Claim
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError

#: Shared empty read-only mapping, returned by the ``*_view`` accessors for
#: absent keys so callers never trigger an allocation on the miss path.
_EMPTY_VIEW: Mapping = MappingProxyType({})


class _AbsentType:
    """Sentinel type for :data:`ABSENT` (``None`` is a legal claim value)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "ABSENT"

    def __bool__(self) -> bool:
        return False


#: "No value": in a :class:`Mutation`, the old value of an add and the
#: new value of a retraction — the claim did not exist on that side.
ABSENT = _AbsentType()


class Mutation(NamedTuple):
    """One typed entry of the mutation log.

    A tuple subclass ordered by ``version`` first, so the log stays
    bisectable by version. ``old_value`` is :data:`ABSENT` for adds;
    ``new_value`` is :data:`ABSENT` for retractions. The pair
    ``(old_value, new_value)`` makes every record invertible — an
    inverse-delta consumer reconstructs the state at any logged version
    from the *first* record per (source, object) after it.
    """

    version: int
    kind: str  # "add" | "retract" | "correct"
    source: SourceId
    object: ObjectId
    old_value: Any
    new_value: Any


@dataclass(frozen=True)
class MutationBatch:
    """One mixed add/retract/correct transaction for :meth:`ClaimDataset.apply`.

    ``adds`` and ``corrections`` are claims; ``retractions`` are
    ``(source, object)`` keys. The batch is applied retractions first,
    then corrections, then adds — a deterministic order that lets one
    batch move a claim's key (retract ``(S, o)`` and re-add it) without
    tripping the conflicting-assertion check.
    """

    adds: tuple[Claim, ...] = ()
    retractions: tuple[tuple[SourceId, ObjectId], ...] = ()
    corrections: tuple[Claim, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "adds", tuple(self.adds))
        object.__setattr__(self, "retractions", tuple(self.retractions))
        object.__setattr__(self, "corrections", tuple(self.corrections))

    def __bool__(self) -> bool:
        return bool(self.adds or self.retractions or self.corrections)

    def __len__(self) -> int:
        return len(self.adds) + len(self.retractions) + len(self.corrections)

    @classmethod
    def from_claims(cls, claims: Iterable[Claim]) -> "MutationBatch":
        """The add-only batch the legacy ingest wrappers construct."""
        return cls(adds=tuple(claims))


@dataclass(frozen=True, slots=True)
class MutationDelta:
    """Summary of one :meth:`ClaimDataset.apply` transaction.

    ``added``/``retracted``/``corrected`` count the mutations applied
    (``duplicates`` re-asserted an identical existing claim and were
    no-ops), touching ``dirty_objects``; ``version`` is the dataset
    version after the batch. For add-only batches this is exactly the
    historical ``IngestDelta`` shape (which remains as an alias).
    """

    added: int
    duplicates: int
    dirty_objects: frozenset[ObjectId]
    version: int
    retracted: int = 0
    corrected: int = 0

    def __bool__(self) -> bool:
        return (self.added + self.retracted + self.corrected) > 0


#: Backwards-compatible name: add-only deltas predate the mutation
#: algebra. Same class — ``isinstance`` checks and field access keep
#: working.
IngestDelta = MutationDelta


class ClaimDataset:
    """An indexed collection of snapshot claims.

    Claims can be supplied at construction or added incrementally with
    :meth:`add`. Adding a second, different value for the same
    (source, object) raises :class:`~repro.exceptions.DataError`;
    re-adding the identical claim is a harmless no-op (ingest pipelines
    often see duplicates).
    """

    def __init__(self, claims: Iterable[Claim] = ()) -> None:
        self._by_key: dict[tuple[SourceId, ObjectId], Claim] = {}
        self._by_source: dict[SourceId, dict[ObjectId, Claim]] = {}
        self._by_object: dict[ObjectId, dict[SourceId, Claim]] = {}
        self._by_object_value: dict[ObjectId, dict[Value, set[SourceId]]] = {}
        # Monotonic mutation tracking: every successful add/retract/
        # correct bumps the version and appends a typed Mutation record.
        self._version = 0
        self._log: list[Mutation] = []
        self._log_floor = 0
        for claim in claims:
            self.add(claim)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add(self, claim: Claim) -> None:
        """Insert one claim, keeping all indexes consistent."""
        if not isinstance(claim, Claim):
            raise DataError(f"expected a Claim, got {type(claim).__name__}")
        existing = self._by_key.get(claim.key)
        if existing is not None:
            if existing == claim:
                return
            raise DataError(
                f"source {claim.source!r} already claims "
                f"{existing.value!r} for object {claim.object!r}; "
                f"cannot also claim {claim.value!r} in one snapshot"
            )
        self._by_key[claim.key] = claim
        self._by_source.setdefault(claim.source, {})[claim.object] = claim
        self._by_object.setdefault(claim.object, {})[claim.source] = claim
        self._by_object_value.setdefault(claim.object, {}).setdefault(
            claim.value, set()
        ).add(claim.source)
        self._version += 1
        self._log.append(
            Mutation(
                self._version, "add", claim.source, claim.object,
                ABSENT, claim.value,
            )
        )

    def retract(self, source: SourceId, obj: ObjectId) -> None:
        """Withdraw one claim entirely, keeping all indexes consistent.

        Retracting a claim that was never made (or is already gone)
        raises :class:`~repro.exceptions.DataError`. Empty sub-indexes
        are dropped, so :attr:`sources` / :attr:`objects` afterwards
        match a dataset that never saw the claim.
        """
        claim = self._by_key.pop((source, obj), None)
        if claim is None:
            raise DataError(
                f"cannot retract: source {source!r} makes no claim about "
                f"object {obj!r}"
            )
        by_source = self._by_source[source]
        del by_source[obj]
        if not by_source:
            del self._by_source[source]
        by_object = self._by_object[obj]
        del by_object[source]
        if not by_object:
            del self._by_object[obj]
        values = self._by_object_value[obj]
        providers = values[claim.value]
        providers.discard(source)
        if not providers:
            del values[claim.value]
        if not values:
            del self._by_object_value[obj]
        self._version += 1
        self._log.append(
            Mutation(self._version, "retract", source, obj, claim.value, ABSENT)
        )

    def correct(self, claim: Claim) -> None:
        """Replace the value this source already asserts for this object.

        The explicit form of a conflicting re-assertion: where
        :meth:`add` raises, ``correct`` swaps the claim in place.
        Correcting a claim that was never made raises
        :class:`~repro.exceptions.DataError` (a correction with no
        target is an ingest bug, not an add); re-asserting the identical
        claim is a no-op, like duplicate adds.
        """
        if not isinstance(claim, Claim):
            raise DataError(f"expected a Claim, got {type(claim).__name__}")
        existing = self._by_key.get(claim.key)
        if existing is None:
            raise DataError(
                f"cannot correct: source {claim.source!r} makes no claim "
                f"about object {claim.object!r}; use add() for new claims"
            )
        if existing == claim:
            return
        self._by_key[claim.key] = claim
        self._by_source[claim.source][claim.object] = claim
        self._by_object[claim.object][claim.source] = claim
        if existing.value != claim.value:
            values = self._by_object_value[claim.object]
            providers = values[existing.value]
            providers.discard(claim.source)
            if not providers:
                del values[existing.value]
            values.setdefault(claim.value, set()).add(claim.source)
        self._version += 1
        self._log.append(
            Mutation(
                self._version, "correct", claim.source, claim.object,
                existing.value, claim.value,
            )
        )

    def apply(self, batch: MutationBatch | Iterable[Claim]) -> MutationDelta:
        """Apply one mixed mutation batch as an all-or-nothing transaction.

        Accepts a :class:`MutationBatch` or, for convenience, a bare
        iterable of claims (treated as an add-only batch). Mutations are
        applied retractions → corrections → adds; identical duplicate
        adds/corrections are tolerated (ingest pipelines replay), while
        conflicting blind re-assertions, retractions of absent claims
        and corrections without a target raise
        :class:`~repro.exceptions.DataError` — and the whole batch rolls
        back: dataset state, mutation log and version afterwards are
        exactly as if ``apply`` had never been called, so a poison batch
        can be quarantined and every other producer's data keeps
        flowing. Rollback restores first-touch snapshots of the affected
        index rows wholesale (not inverse replay), which preserves the
        inner dicts' insertion order bit-for-bit — downstream float
        accumulation over provider rows is order-sensitive, so this is
        what keeps a rolled-back dataset's evidence identical to a
        never-applied one.
        """
        if not isinstance(batch, MutationBatch):
            batch = MutationBatch.from_claims(batch)
        start_version = self._version
        start_log = len(self._log)
        # Only retractions delete *top-level* index entries; a deleted
        # key re-inserted during rollback would land at the end of its
        # dict, perturbing iteration order (and with it every
        # order-sensitive downstream accumulation). Capture the key
        # orders up front for such batches so rollback can rebuild the
        # original order exactly — O(n) lists, paid only by batches
        # that retract, and the rebuild only on the failure path.
        key_orders: list[tuple[dict, list]] | None = None
        if batch.retractions:
            key_orders = [
                (index, list(index))
                for index in (
                    self._by_key,
                    self._by_source,
                    self._by_object,
                    self._by_object_value,
                )
            ]
        saved_keys: dict[tuple[SourceId, ObjectId], Claim | None] = {}
        saved_sources: dict[SourceId, dict | None] = {}
        saved_objects: dict[ObjectId, dict | None] = {}
        saved_values: dict[ObjectId, dict | None] = {}

        def snapshot(source: SourceId, obj: ObjectId) -> None:
            # First touch only: the snapshot must be the pre-batch
            # state, not some mid-batch intermediate.
            key = (source, obj)
            if key not in saved_keys:
                saved_keys[key] = self._by_key.get(key)
            if source not in saved_sources:
                row = self._by_source.get(source)
                saved_sources[source] = None if row is None else dict(row)
            if obj not in saved_objects:
                row = self._by_object.get(obj)
                saved_objects[obj] = None if row is None else dict(row)
            if obj not in saved_values:
                row = self._by_object_value.get(obj)
                saved_values[obj] = (
                    None
                    if row is None
                    else {value: set(ps) for value, ps in row.items()}
                )

        duplicates = 0
        added = retracted = corrected = 0
        dirty: set[ObjectId] = set()
        try:
            for source, obj in batch.retractions:
                snapshot(source, obj)
                self.retract(source, obj)
                retracted += 1
                dirty.add(obj)
            for claim in batch.corrections:
                if isinstance(claim, Claim):
                    snapshot(claim.source, claim.object)
                before = self._version
                self.correct(claim)
                if self._version == before:
                    duplicates += 1
                else:
                    corrected += 1
                    dirty.add(claim.object)
            for claim in batch.adds:
                if isinstance(claim, Claim):
                    snapshot(claim.source, claim.object)
                before = self._version
                self.add(claim)
                if self._version == before:
                    duplicates += 1
                else:
                    added += 1
                    dirty.add(claim.object)
        except BaseException:
            for key, old_claim in saved_keys.items():
                if old_claim is None:
                    self._by_key.pop(key, None)
                else:
                    self._by_key[key] = old_claim
            for source, row in saved_sources.items():
                if row is None:
                    self._by_source.pop(source, None)
                else:
                    self._by_source[source] = row
            for obj, row in saved_objects.items():
                if row is None:
                    self._by_object.pop(obj, None)
                else:
                    self._by_object[obj] = row
            for obj, row in saved_values.items():
                if row is None:
                    self._by_object_value.pop(obj, None)
                else:
                    self._by_object_value[obj] = row
            if key_orders is not None:
                # Keys the restore re-inserted sit at the end of their
                # dicts; rebuild each index in its pre-batch order (all
                # batch-added keys are gone by now, so filtering the
                # captured order by membership is exact).
                for index, order in key_orders:
                    restored = {key: index[key] for key in order if key in index}
                    index.clear()
                    index.update(restored)
            del self._log[start_log:]
            self._version = start_version
            raise
        return MutationDelta(
            added=added,
            duplicates=duplicates,
            dirty_objects=frozenset(dirty),
            version=self._version,
            retracted=retracted,
            corrected=corrected,
        )

    def add_claims(self, claims: Iterable[Claim]) -> MutationDelta:
        """Batch ingest of adds only: ``apply(MutationBatch(adds=claims))``."""
        return self.apply(MutationBatch.from_claims(claims))

    def retract_claims(
        self, keys: Iterable[tuple[SourceId, ObjectId]]
    ) -> MutationDelta:
        """Batch retraction: ``apply(MutationBatch(retractions=keys))``."""
        return self.apply(MutationBatch(retractions=tuple(keys)))

    def correct_claims(self, claims: Iterable[Claim]) -> MutationDelta:
        """Batch correction: ``apply(MutationBatch(corrections=claims))``."""
        return self.apply(MutationBatch(corrections=tuple(claims)))

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (adds + retractions + corrections)."""
        return self._version

    def _log_start(self, version: int) -> int:
        """Index of the first log entry newer than ``version``."""
        if version > self._version:
            raise DataError(
                f"version {version} is in the future (dataset is at "
                f"{self._version})"
            )
        if version < self._log_floor:
            raise DataError(
                f"mutation log was compacted past version {version} "
                f"(log starts after {self._log_floor}); rebuild derived "
                "state from scratch instead"
            )
        return bisect_right(self._log, version, key=itemgetter(0))

    def dirty_objects_since(self, version: int) -> set[ObjectId]:
        """Objects touched by *any* mutation after ``version``.

        Removals are unioned in: a retracted or corrected claim dirties
        its object exactly like a new one, so caches that invalidate by
        dirty object repair mutated state too.
        """
        return {m.object for m in self._log[self._log_start(version) :]}

    def new_claims_since(self, version: int) -> dict[ObjectId, set[SourceId]]:
        """Per dirty object, the sources whose claims *changed* after ``version``.

        Historically named for the add-only era; since the mutation
        algebra landed the sets also contain sources that retracted or
        corrected their claim — a source in the set may no longer cover
        the object at all. Consumers that need the direction of change
        (what the source said *before*) should use
        :meth:`mutations_since` instead.
        """
        delta: dict[ObjectId, set[SourceId]] = {}
        for m in self._log[self._log_start(version) :]:
            delta.setdefault(m.object, set()).add(m.source)
        return delta

    def mutations_since(
        self, version: int
    ) -> dict[ObjectId, dict[SourceId, Any]]:
        """Per dirty object, each touched source's value *at* ``version``.

        The inverse-delta view of the log: for every (source, object)
        mutated after ``version``, the value that source asserted when
        the consumer last looked — :data:`ABSENT` if it asserted nothing
        then. Combined with the current indexes this reconstructs the
        full old provider→value map of any dirty object, which is
        exactly what a cached structure needs to retire its stale
        contributions before re-collecting.

        Only the *first* logged mutation per key matters (its
        ``old_value`` is the state at ``version``); later mutations of
        the same key describe intermediate states no consumer saw.
        """
        delta: dict[ObjectId, dict[SourceId, Any]] = {}
        for m in self._log[self._log_start(version) :]:
            delta.setdefault(m.object, {}).setdefault(m.source, m.old_value)
        return delta

    def compact_log(self, upto_version: int | None = None) -> int:
        """Drop mutation-log entries at or before ``upto_version``.

        Long-running ingest loops call this once every consumer has
        synced past ``upto_version`` (default: the current version), so
        the log does not grow without bound. Returns the number of
        entries dropped. Mutation kinds are irrelevant to compaction:
        retraction and correction records after the cutoff survive
        verbatim (their ``old_value`` is still needed by un-synced
        consumers); asking for changes older than the compaction point
        afterwards raises.
        """
        cutoff = self._version if upto_version is None else upto_version
        if cutoff > self._version:
            raise DataError(
                f"cannot compact past version {cutoff}: dataset is at "
                f"{self._version} (a future floor would strand every "
                "synced consumer)"
            )
        start = bisect_right(self._log, cutoff, key=itemgetter(0))
        del self._log[:start]
        self._log_floor = max(self._log_floor, cutoff)
        return start

    @classmethod
    def from_table(
        cls, table: dict[ObjectId, dict[SourceId, Value]]
    ) -> "ClaimDataset":
        """Build a dataset from a nested dict ``{object: {source: value}}``.

        This is the natural encoding of the paper's Table 1. Missing
        entries (a source not covering an object) are simply omitted.
        """
        dataset = cls()
        for obj, row in table.items():
            for source, value in row.items():
                dataset.add(Claim(source=source, object=obj, value=value))
        return dataset

    @classmethod
    def from_rows(
        cls, rows: Iterable[tuple[SourceId, ObjectId, Value]]
    ) -> "ClaimDataset":
        """Build a dataset from ``(source, object, value)`` triples."""
        return cls(Claim(source=s, object=o, value=v) for s, o, v in rows)

    def map_values(self, mapping: dict[tuple[ObjectId, Value], Value]) -> "ClaimDataset":
        """Return a new dataset with values rewritten through ``mapping``.

        Used by the record-linkage layer to canonicalise alternative
        representations: keys are ``(object, raw_value)`` and map to the
        canonical value; claims without an entry keep their value.
        """
        rewritten = []
        for claim in self:
            canonical = mapping.get((claim.object, claim.value))
            if canonical is None or canonical == claim.value:
                rewritten.append(claim)
            else:
                rewritten.append(claim.with_value(canonical))
        return ClaimDataset(rewritten)

    def restrict_sources(self, sources: Iterable[SourceId]) -> "ClaimDataset":
        """Return the sub-dataset containing only claims by ``sources``."""
        keep = set(sources)
        return ClaimDataset(c for c in self if c.source in keep)

    def restrict_objects(self, objects: Iterable[ObjectId]) -> "ClaimDataset":
        """Return the sub-dataset containing only claims about ``objects``."""
        keep = set(objects)
        return ClaimDataset(c for c in self if c.object in keep)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[Claim]:
        return iter(self._by_key.values())

    def __contains__(self, key: tuple[SourceId, ObjectId]) -> bool:
        return key in self._by_key

    @property
    def sources(self) -> list[SourceId]:
        """All source ids, sorted for determinism."""
        return sorted(self._by_source)

    @property
    def objects(self) -> list[ObjectId]:
        """All object ids, sorted for determinism."""
        return sorted(self._by_object)

    def claims_by(self, source: SourceId) -> dict[ObjectId, Claim]:
        """Everything ``source`` asserts: ``{object: claim}``."""
        return dict(self._by_source.get(source, {}))

    def claims_about(self, obj: ObjectId) -> dict[SourceId, Claim]:
        """All assertions about ``obj``: ``{source: claim}``."""
        return dict(self._by_object.get(obj, {}))

    def value_of(self, source: SourceId, obj: ObjectId) -> Value | None:
        """The value ``source`` asserts for ``obj``, or ``None``."""
        claim = self._by_key.get((source, obj))
        return None if claim is None else claim.value

    def values_for(self, obj: ObjectId) -> dict[Value, set[SourceId]]:
        """Conflicting values for ``obj`` with their provider sets."""
        return {
            value: set(providers)
            for value, providers in self._by_object_value.get(obj, {}).items()
        }

    def providers_of(self, obj: ObjectId, value: Value) -> set[SourceId]:
        """Sources asserting ``value`` for ``obj``."""
        return set(self._by_object_value.get(obj, {}).get(value, set()))

    def coverage(self, source: SourceId) -> int:
        """Number of objects ``source`` provides a value for."""
        return len(self._by_source.get(source, {}))

    # ------------------------------------------------------------------
    # zero-copy views
    # ------------------------------------------------------------------
    #
    # The plain accessors above (`claims_by`, `values_for`, ...) return
    # defensive copies — safe, but on the hot paths of dependence
    # discovery and vote counting those copies dominate the runtime:
    # every candidate pair used to re-copy both sources' claim dicts and
    # every vote re-copied every provider set, once per round. The
    # ``*_view`` accessors below return read-only views of the internal
    # indexes instead (``MappingProxyType`` — creation is O(1)). Callers
    # MUST NOT mutate the nested containers (e.g. the provider sets
    # inside :meth:`values_for_view`); use the copying accessors when a
    # mutable result is needed.

    def claims_by_view(self, source: SourceId) -> Mapping[ObjectId, Claim]:
        """Read-only view of everything ``source`` asserts (zero-copy)."""
        claims = self._by_source.get(source)
        return _EMPTY_VIEW if claims is None else MappingProxyType(claims)

    def claims_about_view(self, obj: ObjectId) -> Mapping[SourceId, Claim]:
        """Read-only view of all assertions about ``obj`` (zero-copy)."""
        claims = self._by_object.get(obj)
        return _EMPTY_VIEW if claims is None else MappingProxyType(claims)

    def values_for_view(self, obj: ObjectId) -> Mapping[Value, set[SourceId]]:
        """Read-only view of ``obj``'s values and provider sets (zero-copy).

        The provider sets are the live internal ones — treat them as
        frozen.
        """
        values = self._by_object_value.get(obj)
        return _EMPTY_VIEW if values is None else MappingProxyType(values)

    def providers_count(self, obj: ObjectId, value: Value) -> int:
        """``len(providers_of(obj, value))`` without copying the set."""
        values = self._by_object_value.get(obj)
        if values is None:
            return 0
        providers = values.get(value)
        return 0 if providers is None else len(providers)

    # ------------------------------------------------------------------
    # set algebra over source coverage (section 3.2, intuition 2)
    # ------------------------------------------------------------------

    def overlap(self, s1: SourceId, s2: SourceId) -> set[ObjectId]:
        """Objects covered by *both* sources."""
        c1 = self._by_source.get(s1, {})
        c2 = self._by_source.get(s2, {})
        if len(c1) > len(c2):
            c1, c2 = c2, c1
        return {obj for obj in c1 if obj in c2}

    def only_in(self, s1: SourceId, s2: SourceId) -> set[ObjectId]:
        """Objects covered by ``s1`` but not ``s2`` (the private remainder)."""
        c1 = self._by_source.get(s1, {})
        c2 = self._by_source.get(s2, {})
        return {obj for obj in c1 if obj not in c2}

    def co_coverage_counts(
        self, min_overlap: int = 1
    ) -> dict[tuple[SourceId, SourceId], int]:
        """Overlap sizes for every source pair reaching ``min_overlap``.

        Computed via the by-object index (one pass over each object's
        provider list), which is far cheaper than calling
        :meth:`overlap` for all ``O(|sources|^2)`` pairs on sparse data —
        the prefilter Example 4.1 describes ("at least the same 10
        books") applied at scale.
        """
        if min_overlap < 1:
            raise DataError(f"min_overlap must be >= 1, got {min_overlap}")
        counts: dict[tuple[SourceId, SourceId], int] = {}
        for providers in self._by_object.values():
            sources = sorted(providers)
            for i, s1 in enumerate(sources):
                for s2 in sources[i + 1 :]:
                    key = (s1, s2)
                    counts[key] = counts.get(key, 0) + 1
        return {
            pair: count
            for pair, count in counts.items()
            if count >= min_overlap
        }

    def agreement_counts(
        self, s1: SourceId, s2: SourceId
    ) -> tuple[int, int]:
        """Return ``(same, different)`` value counts over the overlap."""
        same = 0
        different = 0
        claims1 = self._by_source.get(s1, {})
        claims2 = self._by_source.get(s2, {})
        if len(claims1) > len(claims2):
            claims1, claims2 = claims2, claims1
        for obj, claim in claims1.items():
            other = claims2.get(obj)
            if other is None:
                continue
            if other.value == claim.value:
                same += 1
            else:
                different += 1
        return same, different

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON array of claim objects.

        Only string/number/bool values survive a JSON round-trip exactly;
        tuple values (e.g. author lists) are stored as arrays and restored
        as tuples by :meth:`from_json`.
        """
        rows = []
        for claim in self:
            value: Any = claim.value
            if isinstance(value, tuple):
                value = {"__tuple__": list(value)}
            rows.append(
                {
                    "source": claim.source,
                    "object": claim.object,
                    "value": value,
                    "probability": claim.probability,
                }
            )
        return json.dumps(rows, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClaimDataset":
        """Inverse of :meth:`to_json`."""
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataError(f"invalid dataset JSON: {exc}") from exc
        if not isinstance(rows, list):
            raise DataError("dataset JSON must be an array of claims")
        dataset = cls()
        for row in rows:
            value = row["value"]
            if isinstance(value, dict) and "__tuple__" in value:
                value = tuple(value["__tuple__"])
            elif isinstance(value, list):
                value = tuple(value)
            dataset.add(
                Claim(
                    source=row["source"],
                    object=row["object"],
                    value=value,
                    probability=row.get("probability", 1.0),
                )
            )
        return dataset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClaimDataset({len(self)} claims, {len(self._by_source)} sources, "
            f"{len(self._by_object)} objects)"
        )
