"""Snapshot claim store with the indexes dependence discovery needs.

A :class:`ClaimDataset` holds one :class:`~repro.core.claims.Claim` per
(source, object) pair — the single-snapshot setting of section 3.2 — and
maintains three indexes:

* by source: everything one source says (to compute its accuracy);
* by object: all conflicting values for one object (to run a vote);
* by (object, value): the set of sources asserting a particular value
  (the "vote block" used when discounting copied votes).

It also implements the set algebra the paper's second intuition needs:
the *overlap* of two sources (objects both cover) and each source's
*private remainder* — "if the accuracy of a data source on the subset of
information it shares in common with another data source is significantly
different from its accuracy on the remaining information, the data source
is more likely to be a partial copier" (section 3.2).

Ingest and change tracking
--------------------------

The store is mutable under a restricted discipline: claims are only ever
*added* (a claim, once present, never changes value and is never
removed — conflicting re-assertions raise). Every successful add bumps a
monotonic :attr:`~ClaimDataset.version` and is recorded in a mutation
log, so consumers that cache derived structure (the batch evidence
engine, vote-order caches) can ask "what changed since version v?"
(:meth:`~ClaimDataset.new_claims_since`) and invalidate only the dirty
objects instead of assuming immutability. :meth:`~ClaimDataset.add_claims`
is the batch ingest entry point and returns an :class:`IngestDelta`
summarising the batch.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from operator import itemgetter
from types import MappingProxyType
from typing import Any

from repro.core.claims import Claim
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError

#: Shared empty read-only mapping, returned by the ``*_view`` accessors for
#: absent keys so callers never trigger an allocation on the miss path.
_EMPTY_VIEW: Mapping = MappingProxyType({})


@dataclass(frozen=True, slots=True)
class IngestDelta:
    """Summary of one :meth:`ClaimDataset.add_claims` batch.

    ``added`` new claims were inserted (``duplicates`` re-asserted an
    identical existing claim and were no-ops), touching ``dirty_objects``;
    ``version`` is the dataset version after the batch.
    """

    added: int
    duplicates: int
    dirty_objects: frozenset[ObjectId]
    version: int

    def __bool__(self) -> bool:
        return self.added > 0


class ClaimDataset:
    """An indexed collection of snapshot claims.

    Claims can be supplied at construction or added incrementally with
    :meth:`add`. Adding a second, different value for the same
    (source, object) raises :class:`~repro.exceptions.DataError`;
    re-adding the identical claim is a harmless no-op (ingest pipelines
    often see duplicates).
    """

    def __init__(self, claims: Iterable[Claim] = ()) -> None:
        self._by_key: dict[tuple[SourceId, ObjectId], Claim] = {}
        self._by_source: dict[SourceId, dict[ObjectId, Claim]] = {}
        self._by_object: dict[ObjectId, dict[SourceId, Claim]] = {}
        self._by_object_value: dict[ObjectId, dict[Value, set[SourceId]]] = {}
        # Monotonic mutation tracking: every successful add bumps the
        # version and appends (version, source, object) to the log.
        self._version = 0
        self._log: list[tuple[int, SourceId, ObjectId]] = []
        self._log_floor = 0
        for claim in claims:
            self.add(claim)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add(self, claim: Claim) -> None:
        """Insert one claim, keeping all indexes consistent."""
        if not isinstance(claim, Claim):
            raise DataError(f"expected a Claim, got {type(claim).__name__}")
        existing = self._by_key.get(claim.key)
        if existing is not None:
            if existing == claim:
                return
            raise DataError(
                f"source {claim.source!r} already claims "
                f"{existing.value!r} for object {claim.object!r}; "
                f"cannot also claim {claim.value!r} in one snapshot"
            )
        self._by_key[claim.key] = claim
        self._by_source.setdefault(claim.source, {})[claim.object] = claim
        self._by_object.setdefault(claim.object, {})[claim.source] = claim
        self._by_object_value.setdefault(claim.object, {}).setdefault(
            claim.value, set()
        ).add(claim.source)
        self._version += 1
        self._log.append((self._version, claim.source, claim.object))

    def add_claims(self, claims: Iterable[Claim]) -> IngestDelta:
        """Batch ingest: insert many claims, returning what changed.

        Identical duplicates are tolerated (ingest pipelines replay);
        conflicting re-assertions raise :class:`~repro.exceptions.DataError`
        exactly as :meth:`add` does, with everything added before the
        offending claim retained.
        """
        start = self._version
        duplicates = 0
        dirty: set[ObjectId] = set()
        for claim in claims:
            before = self._version
            self.add(claim)
            if self._version == before:
                duplicates += 1
            else:
                dirty.add(claim.object)
        return IngestDelta(
            added=self._version - start,
            duplicates=duplicates,
            dirty_objects=frozenset(dirty),
            version=self._version,
        )

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic mutation counter (number of claims ever added)."""
        return self._version

    def _log_start(self, version: int) -> int:
        """Index of the first log entry newer than ``version``."""
        if version > self._version:
            raise DataError(
                f"version {version} is in the future (dataset is at "
                f"{self._version})"
            )
        if version < self._log_floor:
            raise DataError(
                f"mutation log was compacted past version {version} "
                f"(log starts after {self._log_floor}); rebuild derived "
                "state from scratch instead"
            )
        return bisect_right(self._log, version, key=itemgetter(0))

    def dirty_objects_since(self, version: int) -> set[ObjectId]:
        """Objects touched by claims added after ``version``."""
        return {obj for _, _, obj in self._log[self._log_start(version) :]}

    def new_claims_since(self, version: int) -> dict[ObjectId, set[SourceId]]:
        """Per dirty object, the sources whose claims arrived after ``version``.

        This is the delta consumers need for dirty-object invalidation:
        values never change and claims are never removed, so "which
        sources are new per object" fully describes the mutation.
        """
        delta: dict[ObjectId, set[SourceId]] = {}
        for _, source, obj in self._log[self._log_start(version) :]:
            delta.setdefault(obj, set()).add(source)
        return delta

    def compact_log(self, upto_version: int | None = None) -> int:
        """Drop mutation-log entries at or before ``upto_version``.

        Long-running ingest loops call this once every consumer has
        synced past ``upto_version`` (default: the current version), so
        the log does not grow without bound. Returns the number of
        entries dropped. Asking for changes older than the compaction
        point afterwards raises.
        """
        cutoff = self._version if upto_version is None else upto_version
        if cutoff > self._version:
            raise DataError(
                f"cannot compact past version {cutoff}: dataset is at "
                f"{self._version} (a future floor would strand every "
                "synced consumer)"
            )
        start = bisect_right(self._log, cutoff, key=itemgetter(0))
        del self._log[:start]
        self._log_floor = max(self._log_floor, cutoff)
        return start

    @classmethod
    def from_table(
        cls, table: dict[ObjectId, dict[SourceId, Value]]
    ) -> "ClaimDataset":
        """Build a dataset from a nested dict ``{object: {source: value}}``.

        This is the natural encoding of the paper's Table 1. Missing
        entries (a source not covering an object) are simply omitted.
        """
        dataset = cls()
        for obj, row in table.items():
            for source, value in row.items():
                dataset.add(Claim(source=source, object=obj, value=value))
        return dataset

    @classmethod
    def from_rows(
        cls, rows: Iterable[tuple[SourceId, ObjectId, Value]]
    ) -> "ClaimDataset":
        """Build a dataset from ``(source, object, value)`` triples."""
        return cls(Claim(source=s, object=o, value=v) for s, o, v in rows)

    def map_values(self, mapping: dict[tuple[ObjectId, Value], Value]) -> "ClaimDataset":
        """Return a new dataset with values rewritten through ``mapping``.

        Used by the record-linkage layer to canonicalise alternative
        representations: keys are ``(object, raw_value)`` and map to the
        canonical value; claims without an entry keep their value.
        """
        rewritten = []
        for claim in self:
            canonical = mapping.get((claim.object, claim.value))
            if canonical is None or canonical == claim.value:
                rewritten.append(claim)
            else:
                rewritten.append(claim.with_value(canonical))
        return ClaimDataset(rewritten)

    def restrict_sources(self, sources: Iterable[SourceId]) -> "ClaimDataset":
        """Return the sub-dataset containing only claims by ``sources``."""
        keep = set(sources)
        return ClaimDataset(c for c in self if c.source in keep)

    def restrict_objects(self, objects: Iterable[ObjectId]) -> "ClaimDataset":
        """Return the sub-dataset containing only claims about ``objects``."""
        keep = set(objects)
        return ClaimDataset(c for c in self if c.object in keep)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[Claim]:
        return iter(self._by_key.values())

    def __contains__(self, key: tuple[SourceId, ObjectId]) -> bool:
        return key in self._by_key

    @property
    def sources(self) -> list[SourceId]:
        """All source ids, sorted for determinism."""
        return sorted(self._by_source)

    @property
    def objects(self) -> list[ObjectId]:
        """All object ids, sorted for determinism."""
        return sorted(self._by_object)

    def claims_by(self, source: SourceId) -> dict[ObjectId, Claim]:
        """Everything ``source`` asserts: ``{object: claim}``."""
        return dict(self._by_source.get(source, {}))

    def claims_about(self, obj: ObjectId) -> dict[SourceId, Claim]:
        """All assertions about ``obj``: ``{source: claim}``."""
        return dict(self._by_object.get(obj, {}))

    def value_of(self, source: SourceId, obj: ObjectId) -> Value | None:
        """The value ``source`` asserts for ``obj``, or ``None``."""
        claim = self._by_key.get((source, obj))
        return None if claim is None else claim.value

    def values_for(self, obj: ObjectId) -> dict[Value, set[SourceId]]:
        """Conflicting values for ``obj`` with their provider sets."""
        return {
            value: set(providers)
            for value, providers in self._by_object_value.get(obj, {}).items()
        }

    def providers_of(self, obj: ObjectId, value: Value) -> set[SourceId]:
        """Sources asserting ``value`` for ``obj``."""
        return set(self._by_object_value.get(obj, {}).get(value, set()))

    def coverage(self, source: SourceId) -> int:
        """Number of objects ``source`` provides a value for."""
        return len(self._by_source.get(source, {}))

    # ------------------------------------------------------------------
    # zero-copy views
    # ------------------------------------------------------------------
    #
    # The plain accessors above (`claims_by`, `values_for`, ...) return
    # defensive copies — safe, but on the hot paths of dependence
    # discovery and vote counting those copies dominate the runtime:
    # every candidate pair used to re-copy both sources' claim dicts and
    # every vote re-copied every provider set, once per round. The
    # ``*_view`` accessors below return read-only views of the internal
    # indexes instead (``MappingProxyType`` — creation is O(1)). Callers
    # MUST NOT mutate the nested containers (e.g. the provider sets
    # inside :meth:`values_for_view`); use the copying accessors when a
    # mutable result is needed.

    def claims_by_view(self, source: SourceId) -> Mapping[ObjectId, Claim]:
        """Read-only view of everything ``source`` asserts (zero-copy)."""
        claims = self._by_source.get(source)
        return _EMPTY_VIEW if claims is None else MappingProxyType(claims)

    def claims_about_view(self, obj: ObjectId) -> Mapping[SourceId, Claim]:
        """Read-only view of all assertions about ``obj`` (zero-copy)."""
        claims = self._by_object.get(obj)
        return _EMPTY_VIEW if claims is None else MappingProxyType(claims)

    def values_for_view(self, obj: ObjectId) -> Mapping[Value, set[SourceId]]:
        """Read-only view of ``obj``'s values and provider sets (zero-copy).

        The provider sets are the live internal ones — treat them as
        frozen.
        """
        values = self._by_object_value.get(obj)
        return _EMPTY_VIEW if values is None else MappingProxyType(values)

    def providers_count(self, obj: ObjectId, value: Value) -> int:
        """``len(providers_of(obj, value))`` without copying the set."""
        values = self._by_object_value.get(obj)
        if values is None:
            return 0
        providers = values.get(value)
        return 0 if providers is None else len(providers)

    # ------------------------------------------------------------------
    # set algebra over source coverage (section 3.2, intuition 2)
    # ------------------------------------------------------------------

    def overlap(self, s1: SourceId, s2: SourceId) -> set[ObjectId]:
        """Objects covered by *both* sources."""
        c1 = self._by_source.get(s1, {})
        c2 = self._by_source.get(s2, {})
        if len(c1) > len(c2):
            c1, c2 = c2, c1
        return {obj for obj in c1 if obj in c2}

    def only_in(self, s1: SourceId, s2: SourceId) -> set[ObjectId]:
        """Objects covered by ``s1`` but not ``s2`` (the private remainder)."""
        c1 = self._by_source.get(s1, {})
        c2 = self._by_source.get(s2, {})
        return {obj for obj in c1 if obj not in c2}

    def co_coverage_counts(
        self, min_overlap: int = 1
    ) -> dict[tuple[SourceId, SourceId], int]:
        """Overlap sizes for every source pair reaching ``min_overlap``.

        Computed via the by-object index (one pass over each object's
        provider list), which is far cheaper than calling
        :meth:`overlap` for all ``O(|sources|^2)`` pairs on sparse data —
        the prefilter Example 4.1 describes ("at least the same 10
        books") applied at scale.
        """
        if min_overlap < 1:
            raise DataError(f"min_overlap must be >= 1, got {min_overlap}")
        counts: dict[tuple[SourceId, SourceId], int] = {}
        for providers in self._by_object.values():
            sources = sorted(providers)
            for i, s1 in enumerate(sources):
                for s2 in sources[i + 1 :]:
                    key = (s1, s2)
                    counts[key] = counts.get(key, 0) + 1
        return {
            pair: count
            for pair, count in counts.items()
            if count >= min_overlap
        }

    def agreement_counts(
        self, s1: SourceId, s2: SourceId
    ) -> tuple[int, int]:
        """Return ``(same, different)`` value counts over the overlap."""
        same = 0
        different = 0
        claims1 = self._by_source.get(s1, {})
        claims2 = self._by_source.get(s2, {})
        if len(claims1) > len(claims2):
            claims1, claims2 = claims2, claims1
        for obj, claim in claims1.items():
            other = claims2.get(obj)
            if other is None:
                continue
            if other.value == claim.value:
                same += 1
            else:
                different += 1
        return same, different

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON array of claim objects.

        Only string/number/bool values survive a JSON round-trip exactly;
        tuple values (e.g. author lists) are stored as arrays and restored
        as tuples by :meth:`from_json`.
        """
        rows = []
        for claim in self:
            value: Any = claim.value
            if isinstance(value, tuple):
                value = {"__tuple__": list(value)}
            rows.append(
                {
                    "source": claim.source,
                    "object": claim.object,
                    "value": value,
                    "probability": claim.probability,
                }
            )
        return json.dumps(rows, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClaimDataset":
        """Inverse of :meth:`to_json`."""
        try:
            rows = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataError(f"invalid dataset JSON: {exc}") from exc
        if not isinstance(rows, list):
            raise DataError("dataset JSON must be an array of claims")
        dataset = cls()
        for row in rows:
            value = row["value"]
            if isinstance(value, dict) and "__tuple__" in value:
                value = tuple(value["__tuple__"])
            elif isinstance(value, list):
                value = tuple(value)
            dataset.add(
                Claim(
                    source=row["source"],
                    object=row["object"],
                    value=value,
                    probability=row.get("probability", 1.0),
                )
            )
        return dataset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClaimDataset({len(self)} claims, {len(self._by_source)} sources, "
            f"{len(self._by_object)} objects)"
        )
