"""Core substrate: claims, datasets, ground-truth worlds, parameters.

Everything else in the library is built on these types. The public
surface re-exported here is stable; internal helpers stay in their
modules.
"""

from repro.core.claims import Claim, Rating, TemporalClaim, ValuePeriod
from repro.core.dataset import (
    ABSENT,
    ClaimDataset,
    IngestDelta,
    Mutation,
    MutationBatch,
    MutationDelta,
)
from repro.core.params import (
    DependenceParams,
    IterationParams,
    OpinionParams,
    TemporalParams,
)
from repro.core.temporal_dataset import TemporalDataset, UpdateEvent
from repro.core.world import (
    DependenceEdge,
    DependenceKind,
    TemporalWorld,
    World,
    make_timeline,
)

__all__ = [
    "ABSENT",
    "Claim",
    "ClaimDataset",
    "DependenceEdge",
    "DependenceKind",
    "DependenceParams",
    "IngestDelta",
    "IterationParams",
    "Mutation",
    "MutationBatch",
    "MutationDelta",
    "OpinionParams",
    "Rating",
    "TemporalClaim",
    "TemporalDataset",
    "TemporalParams",
    "TemporalWorld",
    "UpdateEvent",
    "ValuePeriod",
    "World",
    "make_timeline",
]
