"""Ground-truth worlds for generators and evaluation.

Synthetic experiments need to know what *is* true (and who *does* copy)
to score an algorithm's output. A :class:`World` bundles:

* the true value of every object (snapshot setting), or the true value
  *timeline* of every object (:class:`TemporalWorld`);
* the planted dependence edges (:class:`DependenceEdge`) with their kind
  (similarity vs dissimilarity — section 2.2) and copy rate.

Worlds are produced by ``repro.generators`` and consumed by
``repro.eval.metrics``; algorithms never see them.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from enum import Enum

from repro.core.claims import ValuePeriod
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError


class DependenceKind(Enum):
    """The two kinds of source dependence the paper defines (section 2.2)."""

    SIMILARITY = "similarity"
    DISSIMILARITY = "dissimilarity"


@dataclass(frozen=True, slots=True)
class DependenceEdge:
    """A planted (or detected) directed dependence: ``copier`` depends on ``original``."""

    copier: SourceId
    original: SourceId
    kind: DependenceKind = DependenceKind.SIMILARITY
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.copier == self.original:
            raise DataError("a source cannot depend on itself")
        if not 0.0 < self.rate <= 1.0:
            raise DataError(f"dependence rate must be in (0, 1], got {self.rate}")

    @property
    def pair(self) -> frozenset[SourceId]:
        """The unordered pair of sources involved."""
        return frozenset((self.copier, self.original))


@dataclass
class World:
    """Snapshot ground truth: one true value per object, plus planted edges."""

    truth: dict[ObjectId, Value]
    edges: list[DependenceEdge] = field(default_factory=list)
    source_accuracy: dict[SourceId, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.truth:
            raise DataError("a world needs at least one object")
        for source, accuracy in self.source_accuracy.items():
            if not 0.0 <= accuracy <= 1.0:
                raise DataError(
                    f"accuracy of {source!r} must be in [0, 1], got {accuracy}"
                )

    @property
    def objects(self) -> list[ObjectId]:
        """All object ids, sorted."""
        return sorted(self.truth)

    def is_true(self, obj: ObjectId, value: Value) -> bool:
        """Whether ``value`` is the true value of ``obj``."""
        if obj not in self.truth:
            raise DataError(f"unknown object {obj!r}")
        return self.truth[obj] == value

    def dependent_pairs(self) -> set[frozenset[SourceId]]:
        """Unordered pairs of sources with a planted dependence."""
        return {edge.pair for edge in self.edges}

    def copiers(self) -> set[SourceId]:
        """Sources that similarity-depend on (copy from) someone."""
        return {
            edge.copier
            for edge in self.edges
            if edge.kind is DependenceKind.SIMILARITY
        }


@dataclass
class TemporalWorld:
    """Temporal ground truth: per-object value timelines, plus planted edges.

    ``timelines[obj]`` is a list of :class:`ValuePeriod` ordered by start
    time, contiguous (each period ends where the next begins), the last
    one open-ended.
    """

    timelines: dict[ObjectId, list[ValuePeriod]]
    edges: list[DependenceEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.timelines:
            raise DataError("a temporal world needs at least one object")
        for obj, periods in self.timelines.items():
            self._check_timeline(obj, periods)

    @staticmethod
    def _check_timeline(obj: ObjectId, periods: list[ValuePeriod]) -> None:
        if not periods:
            raise DataError(f"object {obj!r} has an empty timeline")
        for earlier, later in zip(periods, periods[1:]):
            if earlier.end is None:
                raise DataError(
                    f"object {obj!r}: only the final period may be open-ended"
                )
            if earlier.end != later.start:
                raise DataError(
                    f"object {obj!r}: timeline has a gap or overlap at "
                    f"{earlier.end} vs {later.start}"
                )
        if periods[-1].end is not None:
            raise DataError(f"object {obj!r}: final period must be open-ended")

    @property
    def objects(self) -> list[ObjectId]:
        """All object ids, sorted."""
        return sorted(self.timelines)

    def true_value_at(self, obj: ObjectId, t: float) -> Value | None:
        """The value true for ``obj`` at time ``t`` (``None`` before the first period)."""
        if obj not in self.timelines:
            raise DataError(f"unknown object {obj!r}")
        for period in self.timelines[obj]:
            if period.contains(t):
                return period.value
        return None

    def was_ever_true(self, obj: ObjectId, value: Value) -> bool:
        """Whether ``value`` was the true value of ``obj`` during *some* period.

        Distinguishes *out-of-date* values from *false* values — the key
        refinement temporal reasoning brings (Example 3.2: S2 and S3
        provide out-of-date, not false, affiliations).
        """
        if obj not in self.timelines:
            raise DataError(f"unknown object {obj!r}")
        return any(period.value == value for period in self.timelines[obj])

    def transition_times(self, obj: ObjectId) -> list[float]:
        """Times at which the true value of ``obj`` changed (excludes creation)."""
        if obj not in self.timelines:
            raise DataError(f"unknown object {obj!r}")
        return [period.start for period in self.timelines[obj][1:]]

    def current_truth(self) -> dict[ObjectId, Value]:
        """The currently-true value of every object (final period values)."""
        return {obj: periods[-1].value for obj, periods in self.timelines.items()}

    def dependent_pairs(self) -> set[frozenset[SourceId]]:
        """Unordered pairs of sources with a planted dependence."""
        return {edge.pair for edge in self.edges}


def make_timeline(transitions: Iterable[tuple[float, Value]]) -> list[ValuePeriod]:
    """Build a contiguous timeline from ``(start_time, value)`` transitions.

    Convenience used by generators and tests::

        make_timeline([(2001, "UW"), (2006, "MSR"), (2007, "UW")])
    """
    items = sorted(transitions, key=lambda pair: pair[0])
    if not items:
        raise DataError("need at least one transition")
    periods = []
    for i, (start, value) in enumerate(items):
        end = items[i + 1][0] if i + 1 < len(items) else None
        periods.append(ValuePeriod(value=value, start=start, end=end))
    return periods
