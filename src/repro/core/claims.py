"""Claim records — the atomic unit of information in the library.

Section 2.1 of the paper models a structured data source as a set of
4-tuples ``(o_i, v_i, t_i, p_i)``: an identifier, the value the source
associates with it, the time of the assertion, and the probability the
source attaches to it. Two concrete record types cover the two settings
the paper analyses:

* :class:`Claim` — the *snapshot* setting (section 3.2, "Snapshot
  Dependence"): no temporal information, one value per (source, object).
* :class:`TemporalClaim` — the *temporal* setting ("Temporal
  Dependence"): each record carries the time at which the source started
  asserting the value, so a (source, object) pair maps to an update
  history.

Both are frozen dataclasses: claims are immutable facts about what a
source said, and datasets index them heavily.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataError
from repro.core.types import (
    ObjectId,
    SourceId,
    Value,
    check_object_id,
    check_probability,
    check_source_id,
    check_timestamp,
    check_value,
)


@dataclass(frozen=True, slots=True)
class Claim:
    """A single snapshot assertion: *source* says *object* has *value*.

    ``probability`` is the confidence the source itself attaches to the
    value (paper section 2.1); sources that do not provide probabilities
    get the default of ``1.0``, exactly as the paper prescribes.
    """

    source: SourceId
    object: ObjectId
    value: Value
    probability: float = 1.0

    def __post_init__(self) -> None:
        check_source_id(self.source)
        check_object_id(self.object)
        check_value(self.value)
        check_probability(self.probability, "claim probability")

    @property
    def key(self) -> tuple[SourceId, ObjectId]:
        """The (source, object) pair this claim is about."""
        return (self.source, self.object)

    def with_value(self, value: Value) -> "Claim":
        """Return a copy of this claim asserting a different value.

        Used by the record-linkage layer when canonicalising
        representations, and by generators when corrupting claims.
        """
        return Claim(self.source, self.object, value, self.probability)


@dataclass(frozen=True, slots=True)
class TemporalClaim:
    """A timestamped assertion: from ``time`` on, *source* said *value*.

    The timestamp is the moment the source *adopted* the value (e.g. the
    year a website changed a researcher's affiliation, as in Table 3 of
    the paper). A source's history for one object is the sequence of its
    temporal claims ordered by time; each value is implicitly asserted
    until the next update by the same source.
    """

    source: SourceId
    object: ObjectId
    value: Value
    time: float
    probability: float = 1.0

    def __post_init__(self) -> None:
        check_source_id(self.source)
        check_object_id(self.object)
        check_value(self.value)
        check_timestamp(self.time, "claim time")
        check_probability(self.probability, "claim probability")

    @property
    def key(self) -> tuple[SourceId, ObjectId]:
        """The (source, object) pair this claim is about."""
        return (self.source, self.object)

    def as_snapshot(self) -> Claim:
        """Drop the timestamp, yielding a snapshot :class:`Claim`."""
        return Claim(self.source, self.object, self.value, self.probability)


@dataclass(frozen=True, slots=True)
class Rating:
    """An opinion-style claim with no underlying true value.

    The paper distinguishes factual conflicts (one underlying truth) from
    differences of opinion such as movie ratings (Table 2), where the goal
    is an unbiased *consensus* rather than a truth. A :class:`Rating`
    mirrors :class:`Claim` but is kept as a separate type so the two kinds
    of data cannot be mixed by accident.
    """

    rater: SourceId
    item: ObjectId
    score: Value

    def __post_init__(self) -> None:
        check_source_id(self.rater)
        check_object_id(self.item)
        check_value(self.score)

    @property
    def key(self) -> tuple[SourceId, ObjectId]:
        """The (rater, item) pair this rating is about."""
        return (self.rater, self.item)


@dataclass(frozen=True, slots=True)
class ValuePeriod:
    """One entry of a value timeline: ``value`` held during [start, end).

    ``end`` may be ``None`` for the currently-true value. Used by ground
    truth worlds and by lifespan inference (``repro.temporal.lifespan``).
    """

    value: Value
    start: float
    end: float | None = None

    def __post_init__(self) -> None:
        check_value(self.value)
        check_timestamp(self.start, "period start")
        if self.end is not None:
            check_timestamp(self.end, "period end")
            if self.end <= self.start:
                raise DataError(
                    f"period end {self.end} must be after start {self.start}"
                )

    def contains(self, t: float) -> bool:
        """Whether time ``t`` falls inside this period."""
        if t < self.start:
            return False
        return self.end is None or t < self.end
