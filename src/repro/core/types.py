"""Basic identifier and value types shared across the library.

The paper (section 2.1) models a structured source as a set of 4-tuples
``(o, v, t, p)`` — identifier, value, time, probability. We keep
identifiers and values deliberately lightweight:

* a *source id* is a plain string (hashable, sortable, cheap to index);
* an *object id* is a string, or a non-empty tuple of strings for
  compound identifiers — e.g. the ``(book, field)`` objects of
  :meth:`~repro.query.catalog.BookCatalog.claim_dataset`, where one
  truth round fuses every listing field of a catalog at once (a dataset
  should stick to one shape so object ordering stays well-defined);
* a *value* is any hashable Python object. Truth-discovery algorithms only
  compare values for equality; the record-linkage layer is what decides
  when two distinct values are alternative representations of each other.

This module also provides small helpers for validating those types once at
the boundary so the rest of the library can assume well-formed input.
"""

from __future__ import annotations

from typing import Hashable, TypeAlias

from repro.exceptions import DataError

SourceId: TypeAlias = str
ObjectId: TypeAlias = "str | tuple[str, ...]"
Value: TypeAlias = Hashable


def check_source_id(source: object) -> SourceId:
    """Validate and return a source identifier.

    Raises :class:`~repro.exceptions.DataError` if ``source`` is not a
    non-empty string.
    """
    if not isinstance(source, str) or not source:
        raise DataError(f"source id must be a non-empty string, got {source!r}")
    return source


def check_object_id(obj: object) -> ObjectId:
    """Validate and return an object (data item) identifier."""
    if isinstance(obj, str) and obj:
        return obj
    if (
        isinstance(obj, tuple)
        and obj
        and all(isinstance(part, str) and part for part in obj)
    ):
        return obj
    raise DataError(
        "object id must be a non-empty string or a non-empty tuple of "
        f"non-empty strings, got {obj!r}"
    )


def check_value(value: object) -> Value:
    """Validate and return a claim value.

    Values must be hashable (they key vote-count dictionaries) and not
    ``None`` (absence of a value is modelled by *not* making a claim).
    """
    if value is None:
        raise DataError("claim value must not be None; omit the claim instead")
    try:
        hash(value)
    except TypeError as exc:
        raise DataError(f"claim value must be hashable, got {value!r}") from exc
    return value


def check_probability(p: float, what: str = "probability") -> float:
    """Validate that ``p`` lies in ``[0, 1]`` and return it as a float."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise DataError(f"{what} must be in [0, 1], got {p}")
    return p


def check_timestamp(t: float, what: str = "timestamp") -> float:
    """Validate that ``t`` is a finite number and return it as a float."""
    t = float(t)
    if t != t or t in (float("inf"), float("-inf")):  # NaN or infinite
        raise DataError(f"{what} must be finite, got {t}")
    return t
