"""Temporal claim store: per-(source, object) update histories.

The temporal setting of section 3.2 associates each source with a set of
``(time, value)`` pairs per object (the paper's Table 3). This module
stores those histories and supports the projections temporal reasoning
needs:

* the full, time-ordered history of one source for one object;
* the *snapshot at time t* — which value each source asserted at ``t``
  (the latest update not after ``t``);
* the stream of *update events* across sources, used by temporal
  dependence discovery to compare update traces;
* observation subsampling, modelling the "incomplete observations"
  challenge of section 3.1 (we only see periodic snapshots of a web
  source, not every update).

Like the snapshot :class:`~repro.core.dataset.ClaimDataset`, the store
is versioned for incremental consumers: every accepted claim advances a
monotonic ``version`` and is logged, so
:class:`~repro.dependence.temporal.StreamingTemporalDataset` can ask
``dirty_objects_since(v)`` / ``new_claims_since(v)`` and repair only
what changed. Temporal claims are append-only — an update history is a
record of what a source asserted *when*, so a "correction" is simply a
later update, never a removal; the mutation algebra's retractions and
corrections belong to the snapshot store.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from operator import itemgetter

from repro.core.claims import Claim, TemporalClaim
from repro.core.dataset import ClaimDataset, MutationDelta
from repro.core.types import ObjectId, SourceId, Value
from repro.exceptions import DataError


@dataclass(frozen=True, slots=True)
class UpdateEvent:
    """One observed update: ``source`` adopted ``value`` for ``object`` at ``time``.

    ``previous`` is the value the source asserted immediately before, or
    ``None`` if this is the first observation (an *insertion* rather than
    a modification).
    """

    source: SourceId
    object: ObjectId
    value: Value
    time: float
    previous: Value | None


class TemporalDataset:
    """An indexed collection of temporal claims.

    Multiple claims per (source, object) are expected — they form the
    update history. Two claims by one source for one object at the *same*
    time with different values are rejected; identical duplicates are
    ignored.
    """

    def __init__(self, claims: Iterable[TemporalClaim] = ()) -> None:
        # history maps (source, object) -> sorted list of (time, value)
        self._history: dict[tuple[SourceId, ObjectId], list[tuple[float, Value]]] = {}
        self._sources: set[SourceId] = set()
        self._objects: set[ObjectId] = set()
        # Coverage indexes, maintained by add(): which objects a source
        # tracks and which sources cover an object. Batch dependence
        # collection sweeps the by-object index instead of intersecting
        # per-source coverage once per pair.
        self._by_source: dict[SourceId, set[ObjectId]] = {}
        self._by_object: dict[ObjectId, set[SourceId]] = {}
        self._sorted = True
        # Append-only mutation log: (version, claim) per accepted claim,
        # versions strictly increasing — the temporal mirror of the
        # snapshot dataset's log (adds only; histories never shrink).
        self._version = 0
        self._log: list[tuple[int, TemporalClaim]] = []
        for claim in claims:
            self.add(claim)

    def add(self, claim: TemporalClaim) -> bool:
        """Insert one temporal claim; ``False`` for an exact duplicate."""
        if not isinstance(claim, TemporalClaim):
            raise DataError(
                f"expected a TemporalClaim, got {type(claim).__name__}"
            )
        history = self._history.setdefault(claim.key, [])
        for time, value in history:
            if time == claim.time:
                if value == claim.value:
                    return False
                raise DataError(
                    f"source {claim.source!r} asserts two values for "
                    f"{claim.object!r} at time {claim.time}: "
                    f"{value!r} and {claim.value!r}"
                )
        history.append((claim.time, claim.value))
        self._sources.add(claim.source)
        self._objects.add(claim.object)
        self._by_source.setdefault(claim.source, set()).add(claim.object)
        self._by_object.setdefault(claim.object, set()).add(claim.source)
        self._sorted = False
        self._version += 1
        self._log.append((self._version, claim))
        return True

    def add_claims(self, claims: Iterable[TemporalClaim]) -> MutationDelta:
        """Insert a batch, reporting what changed (the streaming surface).

        Returns a :class:`~repro.core.dataset.MutationDelta` — the same
        delta type the snapshot ingest path reports — with accepted and
        duplicate counts, the set of objects whose histories changed,
        and the dataset version after the batch.
        """
        added = 0
        duplicates = 0
        dirty: set[ObjectId] = set()
        for claim in claims:
            if self.add(claim):
                added += 1
                dirty.add(claim.object)
            else:
                duplicates += 1
        return MutationDelta(
            added=added,
            duplicates=duplicates,
            dirty_objects=dirty,
            version=self._version,
        )

    @property
    def version(self) -> int:
        """Monotonic dataset version; advanced by every accepted claim."""
        return self._version

    def _log_since(self, version: int) -> list[tuple[int, TemporalClaim]]:
        if version < 0:
            raise DataError(f"version must be >= 0, got {version}")
        idx = bisect_right(self._log, version, key=itemgetter(0))
        return self._log[idx:]

    def new_claims_since(self, version: int) -> list[TemporalClaim]:
        """Claims accepted after ``version``, in acceptance order."""
        return [claim for _, claim in self._log_since(version)]

    def dirty_objects_since(self, version: int) -> set[ObjectId]:
        """Objects whose update histories changed after ``version``."""
        return {claim.object for _, claim in self._log_since(version)}

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            for history in self._history.values():
                history.sort(key=lambda pair: pair[0])
            self._sorted = True

    @classmethod
    def from_table(
        cls,
        table: dict[ObjectId, dict[SourceId, Iterable[tuple[float, Value]]]],
    ) -> "TemporalDataset":
        """Build from ``{object: {source: [(time, value), ...]}}``.

        This is the natural encoding of the paper's Table 3.
        """
        dataset = cls()
        for obj, row in table.items():
            for source, history in row.items():
                for time, value in history:
                    dataset.add(
                        TemporalClaim(
                            source=source, object=obj, value=value, time=time
                        )
                    )
        return dataset

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def sources(self) -> list[SourceId]:
        """All source ids, sorted."""
        return sorted(self._sources)

    @property
    def objects(self) -> list[ObjectId]:
        """All object ids, sorted."""
        return sorted(self._objects)

    def __len__(self) -> int:
        return sum(len(h) for h in self._history.values())

    def history(
        self, source: SourceId, obj: ObjectId
    ) -> list[tuple[float, Value]]:
        """Time-ordered ``(time, value)`` history of ``source`` for ``obj``."""
        self._ensure_sorted()
        return list(self._history.get((source, obj), []))

    def objects_of(self, source: SourceId) -> set[ObjectId]:
        """Objects for which ``source`` ever asserted a value."""
        return set(self._by_source.get(source, ()))

    def sources_for(self, obj: ObjectId) -> set[SourceId]:
        """Sources that ever asserted a value for ``obj``."""
        return set(self._by_object.get(obj, ()))

    def value_at(
        self, source: SourceId, obj: ObjectId, t: float
    ) -> Value | None:
        """The value ``source`` asserted at time ``t`` (latest update <= t)."""
        self._ensure_sorted()
        history = self._history.get((source, obj))
        if not history:
            return None
        times = [time for time, _ in history]
        idx = bisect_right(times, t)
        if idx == 0:
            return None
        return history[idx - 1][1]

    def snapshot_at(self, t: float) -> ClaimDataset:
        """Project the temporal dataset onto a snapshot at time ``t``."""
        self._ensure_sorted()
        snapshot = ClaimDataset()
        for (source, obj), history in self._history.items():
            times = [time for time, _ in history]
            idx = bisect_right(times, t)
            if idx == 0:
                continue
            snapshot.add(Claim(source=source, object=obj, value=history[idx - 1][1]))
        return snapshot

    def latest_snapshot(self) -> ClaimDataset:
        """Snapshot at the time of the last update in the dataset."""
        end = self.time_span()[1]
        return self.snapshot_at(end)

    def time_span(self) -> tuple[float, float]:
        """``(earliest, latest)`` update time across all histories."""
        times = [
            time
            for history in self._history.values()
            for time, _ in history
        ]
        if not times:
            raise DataError("temporal dataset is empty")
        return min(times), max(times)

    # ------------------------------------------------------------------
    # update events
    # ------------------------------------------------------------------

    def update_events(
        self, source: SourceId | None = None
    ) -> Iterator[UpdateEvent]:
        """Yield update events, time-ordered within each (source, object).

        If ``source`` is given, only that source's events are yielded.
        The first claim of a history is an event with ``previous=None``.
        """
        self._ensure_sorted()
        for (s, obj), history in sorted(self._history.items()):
            if source is not None and s != source:
                continue
            previous: Value | None = None
            for time, value in history:
                yield UpdateEvent(
                    source=s, object=obj, value=value, time=time, previous=previous
                )
                previous = value

    def adoption_time(
        self, source: SourceId, obj: ObjectId, value: Value
    ) -> float | None:
        """First time ``source`` adopted ``value`` for ``obj``, or ``None``."""
        self._ensure_sorted()
        for time, v in self._history.get((source, obj), []):
            if v == value:
                return time
        return None

    def restrict_sources(self, sources: Iterable[SourceId]) -> "TemporalDataset":
        """The sub-dataset containing only claims by ``sources``."""
        keep = set(sources)
        self._ensure_sorted()
        subset = TemporalDataset()
        for (source, obj), history in self._history.items():
            if source not in keep:
                continue
            for time, value in history:
                subset.add(
                    TemporalClaim(
                        source=source, object=obj, value=value, time=time
                    )
                )
        return subset

    # ------------------------------------------------------------------
    # incomplete observations (section 3.1)
    # ------------------------------------------------------------------

    def observed_at(self, observation_times: Iterable[float]) -> "TemporalDataset":
        """Simulate periodic crawling: keep only what snapshots reveal.

        For each observation time we record the value each source asserted
        then, timestamped with the *observation* time (we cannot know when
        the source really updated). Consecutive observations with an
        unchanged value collapse into one claim, mirroring how a crawler
        would infer update events. Updates occurring entirely between two
        observations are lost — the uncertainty section 3.1 describes.
        """
        self._ensure_sorted()
        observed = TemporalDataset()
        times = sorted(set(float(t) for t in observation_times))
        if not times:
            raise DataError("need at least one observation time")
        for (source, obj), _history in self._history.items():
            last_seen: Value | None = None
            for t in times:
                value = self.value_at(source, obj, t)
                if value is None or value == last_seen:
                    continue
                observed.add(
                    TemporalClaim(source=source, object=obj, value=value, time=t)
                )
                last_seen = value
        return observed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TemporalDataset({len(self)} claims, {len(self._sources)} sources, "
            f"{len(self._objects)} objects)"
        )
