"""Model and iteration parameters for dependence discovery.

The Bayesian dependence model of section 3.2 has three structural
parameters, gathered in :class:`DependenceParams`:

``alpha``
    The a-priori probability that an arbitrary pair of sources is
    dependent. The prior mass is split evenly between the two copy
    directions (S1 copies S2, S2 copies S1).
``copy_rate``
    ``c`` — given that a copier copies from an original, the probability
    that any particular shared value was copied (rather than provided
    independently). Partial copiers (section 3.1, "partial dependence")
    correspond to ``c < 1``.
``n_false_values``
    ``n`` — the number of (uniformly likely) false values per object in
    the domain. Larger ``n`` makes a *shared false value* stronger
    evidence of copying: the chance two independent sources pick the
    same false value is ``(1-A1)(1-A2)/n``.

Iterative algorithms additionally take :class:`IterationParams`.

Both classes validate their fields eagerly so mis-parameterisations fail
at construction rather than deep inside an iteration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

from repro.exceptions import ParameterError

#: Environment overrides honoured by :class:`DependenceParams`: each
#: variable replaces the matching field *when the field holds its
#: default value*. An explicit non-default argument always wins — CI
#: can re-run a whole suite under another execution policy without
#: silently changing a deliberate choice — but note the mechanism
#: compares values, so an argument explicitly passed *as* the default
#: (e.g. ``parallel_backend="serial"``) is indistinguishable from an
#: omitted one and is overridden too; code that must pin the default
#: behaviour regardless of environment should clear the variable
#: instead. Empty values are ignored. ``int`` fields reject
#: non-integers eagerly.
ENV_OVERRIDES: tuple[tuple[str, str], ...] = (
    ("parallel_backend", "REPRO_PARALLEL_BACKEND"),
    ("num_workers", "REPRO_NUM_WORKERS"),
    ("shard_size", "REPRO_SHARD_SIZE"),
    ("entry_store", "REPRO_ENTRY_STORE"),
    ("pool", "REPRO_POOL"),
    ("truth_backend", "REPRO_TRUTH_BACKEND"),
    ("posterior_backend", "REPRO_POSTERIOR_BACKEND"),
    ("max_retries", "REPRO_MAX_RETRIES"),
    ("task_deadline", "REPRO_TASK_DEADLINE"),
)

_INT_ENV_FIELDS = ("num_workers", "shard_size", "max_retries")
_FLOAT_ENV_FIELDS = ("task_deadline",)

#: Environment overrides honoured by :class:`TemporalParams`, with the
#: same when-default-only semantics as :data:`ENV_OVERRIDES`. CI smoke
#: jobs use ``REPRO_EVIDENCE_DECAY`` to re-run the temporal suite under
#: decay-weighted evidence without touching any call site.
TEMPORAL_ENV_OVERRIDES: tuple[tuple[str, str], ...] = (
    ("evidence_decay", "REPRO_EVIDENCE_DECAY"),
)

#: Recognised ``truth_backend`` settings — the single source of truth
#: for every entry point that validates one (this class,
#: :class:`repro.truth.accu.Accu`,
#: :func:`repro.truth.columnar.resolve_truth_backend`).
TRUTH_BACKENDS = ("auto", "columnar", "dict")

#: Recognised ``posterior_backend`` settings — the single source of
#: truth for this class and
#: :func:`repro.dependence.bayes_batch.resolve_posterior_backend`.
POSTERIOR_BACKENDS = ("auto", "batch", "scalar")


@dataclass(frozen=True, slots=True)
class DependenceParams:
    """Structural parameters of the pairwise dependence model.

    ``false_value_model`` selects how likely two *independent* sources
    are to share a false value: ``"uniform"`` (the paper's sketch — one
    of ``n`` equally likely alternatives) or ``"empirical"`` — weight
    each shared value by its observed popularity among the object's
    other providers. The empirical model implements the paper's
    "correlated information" caveat: a *popular* wrong value (a common
    misspelling everyone repeats) is weak evidence of copying, while a
    value shared by exactly the suspected pair is damning.

    ``evidence_form`` selects how the latent truth of a shared value is
    handled while it is still uncertain. ``"expected_log"`` (the
    default) weights the true/false log-likelihoods by the current value
    probability — deliberately aggressive early on, which is what lets
    the truth-agnostic first round break up copier majorities on tiny
    inputs like the paper's Table 1. ``"marginal"`` marginalises the
    latent truth properly (``ln(p·Pt + (1-p)·Pf)``); it is
    better-calibrated on larger inputs but too timid to bootstrap the
    worked examples. Both coincide once value probabilities harden.

    ``max_providers_per_object`` guards the structural evidence pass
    against pathologically *hot* objects: pair enumeration is
    O(providers²) per object, so an object with thousands of providers
    dominates the sweep. When set, only the first ``max`` providers (in
    sorted source order — deterministic, so incremental maintenance and
    cold rebuilds agree) take part in pair enumeration for that object;
    truncations are logged and recorded by the evidence engine, never
    silent. ``None`` (the default) disables the cap.

    ``parallel_backend`` / ``num_workers`` / ``shard_size`` select how
    the structural evidence sweep is *executed* — they are execution
    policy, not model parameters, and never change any result
    (:mod:`repro.dependence.sharding` guarantees bit-for-bit identity
    with the serial path for every backend and worker count).
    ``"serial"`` (the default) is the single-threaded pure-Python pass;
    ``"numpy"`` vectorises candidate-pair generation and the record
    sweep in-process; ``"process"`` shards the sweep over object ranges
    and fans the shards out to ``num_workers`` worker processes (the GIL
    makes threads useless here); ``"resident"`` pins each shard to a
    long-lived worker that keeps the shard's packed claim rows resident
    across ``build()``/``sync()``/``refresh`` and receives only
    dirty-range deltas, cutting the bytes serialized per incremental
    sync (see :mod:`repro.exec.resident`). ``shard_size`` fixes the
    objects per shard; ``None`` derives a balanced size from
    ``num_workers``.

    ``entry_store`` selects how the evidence engine stores per-pair
    agreement structure — also pure execution policy, bit-for-bit
    invariant. ``"columnar"`` keeps the deduplicated entries and every
    pair's agreement segment in flat numpy arrays, so the per-round
    soft refresh and evidence assembly run as vectorised gathers and
    segment sums; ``"list"`` is the pure-Python reference layout (one
    Python list per pair); ``"auto"`` (the default) picks columnar when
    numpy is importable and falls back to lists otherwise.

    ``pool`` controls worker lifetime under ``parallel_backend=
    "process"``: ``"ephemeral"`` (the default) forks a fresh pool per
    structural build and tears it down after; ``"persistent"`` keeps
    the pool alive across ``build()``/``sync()`` calls and rounds, so
    repeated rebuilds and streaming re-syncs pay the fork cost once
    (call ``close()`` on the cache/engine, or use it as a context
    manager, to release the workers). ``parallel_backend="resident"``
    workers are persistent by construction — their whole point is the
    state they retain — so ``pool`` does not apply to them.

    ``overlap_warning_bound`` guards the known calibration hazard of
    the *default* evidence model: ``expected_log`` + ``uniform``
    over-detects dependence on pairs with very large overlaps (the
    probability-weighted log-likelihood is deliberately aggressive, and
    its aggressiveness compounds linearly with overlap size — on a
    200-object, 20-source world it yields 184 false positives at
    threshold 0.9 where ``empirical``/``marginal`` yield none). When a
    candidate pair's overlap reaches the bound under that model
    combination, the evidence engine emits one structured
    :class:`~repro.exceptions.OverlapCalibrationWarning` recommending
    the ``false_value_model="empirical"`` or ``evidence_form=
    "marginal"`` escape hatch. The default bound of 128 sits between
    the paper-scale workloads (Table 1, Example 4.1 — overlaps of at
    most a few dozen, where expected_log is load-bearing) and the
    200-object failure case. ``None`` disables the warning.

    ``overlap_policy`` decides what the bound *does* under the
    hazardous model combination. ``"warn"`` (the default) emits the
    warning and leaves the evidence untouched; ``"auto"`` acts on it —
    any candidate pair whose overlap reaches the bound is scored with
    the *empirical* per-shared-value evidence form (the value's
    observed popularity replaces the uniform ``1/n`` false-value
    floor), while smaller pairs keep the aggressive expected-log
    aggregates that the paper-scale examples need to bootstrap;
    ``"ignore"`` silences the bound entirely. ``"auto"`` requires a
    bound and changes *results* (it is a model policy, not execution
    policy); it is inert under ``false_value_model="empirical"``,
    ``evidence_form="marginal"`` and the ``exact`` reference mode,
    which already avoid the hazard.

    ``truth_backend`` selects how the *iterative truth rounds* (vote
    counting, softmax decisions, accuracy re-estimation) are executed
    by :class:`~repro.truth.depen.Depen` and
    :class:`~repro.truth.accu.Accu` — pure execution policy, bit-for-bit
    invariant. ``"columnar"`` runs the rounds as array kernels over a
    :class:`~repro.truth.columnar.ValueProbTable` (and lets the
    evidence engine's per-round refresh read truth probabilities
    positionally instead of probing dicts); ``"dict"`` is the
    pure-Python reference loop; ``"auto"`` (the default) picks columnar
    when numpy is importable.

    ``posterior_backend`` selects how *pair posteriors* are computed
    when many pairs are scored at once (``discover_dependence``,
    streaming restricted re-scoring, DEPEN's in-round re-scoring) —
    pure execution policy, bit-for-bit invariant. ``"batch"`` runs the
    three-hypothesis Bayes posterior for every selected pair in one
    vectorised pass over the columnar evidence layout
    (:class:`~repro.dependence.bayes_batch.BatchedPosteriorEngine`;
    requires numpy and ``entry_store="columnar"``); ``"scalar"`` is the
    per-pair reference loop over
    :func:`~repro.dependence.bayes.pair_posterior`; ``"auto"`` (the
    default) picks batch whenever the evidence cache is columnar and
    numpy is importable.

    ``max_retries`` / ``task_deadline`` / ``degrade_on_failure``
    configure the supervised execution layer
    (:class:`~repro.exec.supervisor.SupervisedExecutor`) that wraps
    the process-crossing backends: how often a failed task batch is
    retried (with exponential backoff and jitter), the per-batch
    wall-clock budget in seconds after which a hung worker is killed
    and the batch retried (``None`` waits forever), and whether
    exhausting the retries steps down the degradation ladder
    (``resident → process → numpy → serial``) instead of raising.
    Execution policy, never results: every backend is bit-for-bit
    equivalent, so retrying or degrading cannot change an answer.

    Execution-policy fields honour environment overrides
    (:data:`ENV_OVERRIDES`): ``REPRO_PARALLEL_BACKEND``,
    ``REPRO_NUM_WORKERS``, ``REPRO_SHARD_SIZE``, ``REPRO_ENTRY_STORE``,
    ``REPRO_POOL``, ``REPRO_TRUTH_BACKEND``,
    ``REPRO_POSTERIOR_BACKEND``, ``REPRO_MAX_RETRIES`` and
    ``REPRO_TASK_DEADLINE`` replace the matching
    field when it holds its
    default value — so CI can exercise a whole test suite under the
    process pool without touching any call site. Explicit *non-default*
    arguments always win; an argument explicitly passed as the default
    cannot be told apart from an omitted one (see
    :data:`ENV_OVERRIDES`).
    """

    alpha: float = 0.2
    copy_rate: float = 0.8
    n_false_values: int = 100
    false_value_model: str = "uniform"
    evidence_form: str = "expected_log"
    max_providers_per_object: int | None = None
    parallel_backend: str = "serial"
    num_workers: int = 1
    shard_size: int | None = None
    entry_store: str = "auto"
    pool: str = "ephemeral"
    overlap_warning_bound: int | None = 128
    overlap_policy: str = "warn"
    truth_backend: str = "auto"
    posterior_backend: str = "auto"
    max_retries: int = 2
    task_deadline: float | None = None
    degrade_on_failure: bool = True

    def _apply_env_overrides(self) -> None:
        defaults = {
            f.name: f.default for f in fields(self) if f.name in _ENV_FIELDS
        }
        for name, variable in ENV_OVERRIDES:
            raw = os.environ.get(variable)
            if not raw or getattr(self, name) != defaults[name]:
                continue
            value: object = raw
            if name in _INT_ENV_FIELDS:
                try:
                    value = int(raw)
                except ValueError:
                    raise ParameterError(
                        f"{variable} must be an integer, got {raw!r}"
                    ) from None
            elif name in _FLOAT_ENV_FIELDS:
                try:
                    value = float(raw)
                except ValueError:
                    raise ParameterError(
                        f"{variable} must be a float, got {raw!r}"
                    ) from None
            object.__setattr__(self, name, value)

    def __post_init__(self) -> None:
        self._apply_env_overrides()
        if not 0.0 < self.alpha < 1.0:
            raise ParameterError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.copy_rate < 1.0:
            raise ParameterError(
                f"copy_rate must be in (0, 1), got {self.copy_rate}"
            )
        if self.n_false_values < 1:
            raise ParameterError(
                f"n_false_values must be >= 1, got {self.n_false_values}"
            )
        if self.false_value_model not in ("uniform", "empirical"):
            raise ParameterError(
                "false_value_model must be 'uniform' or 'empirical', got "
                f"{self.false_value_model!r}"
            )
        if self.evidence_form not in ("expected_log", "marginal"):
            raise ParameterError(
                "evidence_form must be 'expected_log' or 'marginal', got "
                f"{self.evidence_form!r}"
            )
        if (
            self.max_providers_per_object is not None
            and self.max_providers_per_object < 2
        ):
            raise ParameterError(
                "max_providers_per_object must be >= 2 (a pair needs two "
                f"providers) or None, got {self.max_providers_per_object}"
            )
        if self.parallel_backend not in (
            "serial",
            "process",
            "numpy",
            "resident",
        ):
            raise ParameterError(
                "parallel_backend must be 'serial', 'process', 'numpy' or "
                f"'resident', got {self.parallel_backend!r}"
            )
        if self.num_workers < 1:
            raise ParameterError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise ParameterError(
                f"shard_size must be >= 1 or None, got {self.shard_size}"
            )
        if self.entry_store not in ("auto", "columnar", "list"):
            raise ParameterError(
                "entry_store must be 'auto', 'columnar' or 'list', got "
                f"{self.entry_store!r}"
            )
        if self.pool not in ("ephemeral", "persistent"):
            raise ParameterError(
                "pool must be 'ephemeral' or 'persistent', got "
                f"{self.pool!r}"
            )
        if (
            self.overlap_warning_bound is not None
            and self.overlap_warning_bound < 1
        ):
            raise ParameterError(
                "overlap_warning_bound must be >= 1 or None, got "
                f"{self.overlap_warning_bound}"
            )
        if self.overlap_policy not in ("warn", "auto", "ignore"):
            raise ParameterError(
                "overlap_policy must be 'warn', 'auto' or 'ignore', got "
                f"{self.overlap_policy!r}"
            )
        if self.overlap_policy == "auto" and self.overlap_warning_bound is None:
            raise ParameterError(
                "overlap_policy='auto' needs an overlap_warning_bound to "
                "act on; set a bound or use overlap_policy='ignore'"
            )
        if self.truth_backend not in TRUTH_BACKENDS:
            raise ParameterError(
                "truth_backend must be 'auto', 'columnar' or 'dict', got "
                f"{self.truth_backend!r}"
            )
        if self.posterior_backend not in POSTERIOR_BACKENDS:
            raise ParameterError(
                "posterior_backend must be 'auto', 'batch' or 'scalar', got "
                f"{self.posterior_backend!r}"
            )
        if self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ParameterError(
                f"task_deadline must be > 0 or None, got {self.task_deadline}"
            )

    @property
    def prior_independent(self) -> float:
        """Prior probability that a pair of sources is independent."""
        return 1.0 - self.alpha

    @property
    def prior_direction(self) -> float:
        """Prior probability of each single copy direction."""
        return self.alpha / 2.0


_ENV_FIELDS = frozenset(name for name, _ in ENV_OVERRIDES)
_TEMPORAL_ENV_FIELDS = frozenset(name for name, _ in TEMPORAL_ENV_OVERRIDES)


@dataclass(frozen=True, slots=True)
class IterationParams:
    """Convergence controls for iterative (truth, accuracy, dependence) loops.

    ``rescore_tolerance`` controls DEPEN's restricted pair re-scoring
    inside its own iterative rounds (columnar truth backend only): a
    pair's posterior is reused from the previous round when every truth
    probability it depends on — its shared entries' and its endpoints'
    clamped accuracies — has drifted at most this much since the last
    round *that pair* was scored (drift accumulates against each pair's
    own baseline, recorded as a per-slot round stamp in the columnar
    entry store, so reuse chains never compound past the bound and a
    pair's baseline resets exactly when it is re-scored). The 0.0
    default is *exact*: only bitwise unchanged inputs are reused, so
    results stay bit-for-bit equal to the dict path. A small positive
    tolerance (e.g. ``1e-9``) lets the tail rounds of a settling
    iteration skip most posterior recomputation at a bounded,
    documented approximation.
    """

    max_rounds: int = 30
    accuracy_tolerance: float = 1e-4
    initial_accuracy: float = 0.8
    accuracy_floor: float = 0.01
    accuracy_ceiling: float = 0.99
    fail_on_max_rounds: bool = False
    rescore_tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ParameterError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.accuracy_tolerance <= 0:
            raise ParameterError(
                f"accuracy_tolerance must be > 0, got {self.accuracy_tolerance}"
            )
        if self.rescore_tolerance < 0:
            raise ParameterError(
                f"rescore_tolerance must be >= 0, got {self.rescore_tolerance}"
            )
        if not 0.0 < self.initial_accuracy < 1.0:
            raise ParameterError(
                f"initial_accuracy must be in (0, 1), got {self.initial_accuracy}"
            )
        if not 0.0 < self.accuracy_floor < self.accuracy_ceiling < 1.0:
            raise ParameterError(
                "need 0 < accuracy_floor < accuracy_ceiling < 1, got "
                f"floor={self.accuracy_floor}, ceiling={self.accuracy_ceiling}"
            )

    def clamp_accuracy(self, accuracy: float) -> float:
        """Clamp an accuracy estimate into the open interval the model needs.

        Accuracy scores involve ``ln(A / (1-A))``; accuracies of exactly 0
        or 1 would make them infinite, so estimates are kept inside
        ``[floor, ceiling]``.
        """
        return min(self.accuracy_ceiling, max(self.accuracy_floor, accuracy))


@dataclass(frozen=True, slots=True)
class OpinionParams:
    """Parameters of the rater-dependence model (section 2.2, Example 2.2).

    ``alpha`` is the prior probability that a rater pair is dependent at
    all, split evenly between similarity- and dissimilarity-dependence and
    then between the two directions. ``influence_rate`` plays the role of
    the copy rate: the probability that a dependent rater's rating on any
    particular item was dictated by the dependence (copied, or chosen to
    oppose) rather than formed independently.
    """

    alpha: float = 0.2
    influence_rate: float = 0.8
    smoothing: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ParameterError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.influence_rate < 1.0:
            raise ParameterError(
                f"influence_rate must be in (0, 1), got {self.influence_rate}"
            )
        if self.smoothing <= 0:
            raise ParameterError(f"smoothing must be > 0, got {self.smoothing}")

    @property
    def prior_independent(self) -> float:
        """Prior probability that a rater pair is independent."""
        return 1.0 - self.alpha

    @property
    def prior_per_hypothesis(self) -> float:
        """Prior of each directed dependence hypothesis (4 of them)."""
        return self.alpha / 4.0


@dataclass(frozen=True, slots=True)
class TemporalParams:
    """Parameters of the temporal dependence model (section 3.2).

    ``max_copy_lag`` bounds how long after an original's update a copied
    update may appear (a lazy copier, section 3.1, may trail by up to
    this much). ``alpha`` mirrors the snapshot model; ``copy_rate`` is
    the probability a given co-adopted value was dictated by the copying
    (it doubles as the laziness model — a lazy copier has a low rate, so
    the default is lower than the snapshot 0.8). ``tie_prior`` is the
    probability two *independent* sources adopt a value at the same
    recorded instant (coarse-grained timestamps, e.g. years, make ties
    common); ``window_capture`` is the probability that an independent
    later adoption falls inside the copy-lag window anyway.
    ``rarity_weight`` controls how much simultaneous co-updates are
    discounted when many sources performed the same update (common
    updates are weak evidence — temporal intuition 2).

    ``evidence_decay`` (opt-in) down-weights each co-adoption's evidence
    by ``decay ** |Δt|`` where ``Δt`` is the gap between the two
    sources' adoption times: a copy lands promptly, so agreement between
    adoptions far apart in time says little about copying — stale
    assertions are *weakened* evidence, not hard counts. The default 1.0
    is bitwise-unchanged behaviour (the weighting branch is never
    entered); values in (0, 1) enable the decay. Honours the
    ``REPRO_EVIDENCE_DECAY`` environment override
    (:data:`TEMPORAL_ENV_OVERRIDES`) when the field holds its default.
    """

    alpha: float = 0.2
    copy_rate: float = 0.5
    n_false_values: int = 100
    max_copy_lag: float = 5.0
    tie_prior: float = 0.3
    window_capture: float = 0.8
    rarity_weight: float = 1.0
    freshness_adjustment: float = 0.0
    nt_floor: float = 0.01
    evidence_decay: float = 1.0

    def _apply_env_overrides(self) -> None:
        defaults = {
            f.name: f.default
            for f in fields(self)
            if f.name in _TEMPORAL_ENV_FIELDS
        }
        for name, variable in TEMPORAL_ENV_OVERRIDES:
            raw = os.environ.get(variable)
            if not raw or getattr(self, name) != defaults[name]:
                continue
            try:
                value = float(raw)
            except ValueError:
                raise ParameterError(
                    f"{variable} must be a float, got {raw!r}"
                ) from None
            object.__setattr__(self, name, value)

    def __post_init__(self) -> None:
        self._apply_env_overrides()
        if not 0.0 < self.alpha < 1.0:
            raise ParameterError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.copy_rate < 1.0:
            raise ParameterError(
                f"copy_rate must be in (0, 1), got {self.copy_rate}"
            )
        if self.n_false_values < 1:
            raise ParameterError(
                f"n_false_values must be >= 1, got {self.n_false_values}"
            )
        if self.max_copy_lag <= 0:
            raise ParameterError(
                f"max_copy_lag must be > 0, got {self.max_copy_lag}"
            )
        if not 0.0 < self.tie_prior < 1.0:
            raise ParameterError(
                f"tie_prior must be in (0, 1), got {self.tie_prior}"
            )
        if not 0.0 < self.window_capture <= 1.0:
            raise ParameterError(
                f"window_capture must be in (0, 1], got {self.window_capture}"
            )
        if self.rarity_weight < 0:
            raise ParameterError(
                f"rarity_weight must be >= 0, got {self.rarity_weight}"
            )
        if not 0.0 <= self.freshness_adjustment <= 1.0:
            raise ParameterError(
                "freshness_adjustment must be in [0, 1], got "
                f"{self.freshness_adjustment}"
            )
        if not 0.0 <= self.nt_floor < 1.0:
            raise ParameterError(
                f"nt_floor must be in [0, 1), got {self.nt_floor}"
            )
        if not 0.0 < self.evidence_decay <= 1.0:
            raise ParameterError(
                f"evidence_decay must be in (0, 1], got {self.evidence_decay}"
            )

    @property
    def prior_independent(self) -> float:
        """Prior probability that a pair of sources is independent."""
        return 1.0 - self.alpha

    @property
    def prior_direction(self) -> float:
        """Prior probability of each single copy direction."""
        return self.alpha / 2.0
