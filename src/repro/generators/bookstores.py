"""AbeBooks-scale synthetic bookstore catalog (Example 4.1's substitute).

The paper's case study is a proprietary crawl; this generator produces a
catalog *calibrated to every statistic the paper reports* and with known
ground truth, so the same analyses run with exact evaluation:

* 876 bookstores, 1263 computer-science books, ≈24 364 listings;
* books per store following a long-tailed distribution from 1 to 1095;
* per-store author-list accuracy spread over [0, 0.92];
* dirty author lists — formatting variants, misspellings, missing /
  misordered / wrong authors, editors-as-authors — yielding 1–23
  distinct author lists per book, ≈4 on average;
* planted copier cliques producing on the order of 471 dependent store
  pairs that share ≥10 books.

The world object records the clean record per book, the planted edges
and each store's intended accuracy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.types import ObjectId, SourceId
from repro.core.world import DependenceEdge, DependenceKind
from repro.exceptions import ParameterError
from repro.generators.names import (
    CATEGORIES,
    author_pool,
    publisher_pool,
    title_pool,
)
from repro.generators.rng import make_rng, power_law_sizes
from repro.query.catalog import BookCatalog, Listing


@dataclass
class BookstoreConfig:
    """Configuration of the synthetic catalog, defaulting to paper scale."""

    n_stores: int = 876
    n_books: int = 1263
    n_listings: int = 24364
    max_books_per_store: int = 1095
    max_accuracy: float = 0.92
    n_authors: int = 400
    n_publishers: int = 30
    n_copier_cliques: int = 80
    clique_size: int = 4
    copy_rate: float = 0.9
    copier_min_books: int = 12
    copier_max_books: int = 90

    def __post_init__(self) -> None:
        if self.n_stores < 2:
            raise ParameterError(f"n_stores must be >= 2, got {self.n_stores}")
        if self.n_books < 1:
            raise ParameterError(f"n_books must be >= 1, got {self.n_books}")
        if not self.n_stores <= self.n_listings <= self.n_stores * self.n_books:
            raise ParameterError(
                "n_listings must lie between n_stores and n_stores*n_books"
            )
        if not 1 <= self.max_books_per_store <= self.n_books:
            raise ParameterError(
                "max_books_per_store must be in [1, n_books]"
            )
        if not 0.0 < self.max_accuracy <= 1.0:
            raise ParameterError(
                f"max_accuracy must be in (0, 1], got {self.max_accuracy}"
            )
        if self.n_copier_cliques < 0 or self.clique_size < 2:
            raise ParameterError(
                "need n_copier_cliques >= 0 and clique_size >= 2"
            )
        if self.n_copier_cliques * (self.clique_size - 1) >= self.n_stores:
            raise ParameterError("too many copier stores for n_stores")
        if not 0.0 < self.copy_rate <= 1.0:
            raise ParameterError(f"copy_rate must be in (0, 1], got {self.copy_rate}")
        if not 1 <= self.copier_min_books <= self.copier_max_books <= self.n_books:
            raise ParameterError("invalid copier book-count range")


@dataclass
class BookRecord:
    """The clean, true record of one book.

    ``corrupt_pool`` holds the book's recurring wrong author lists:
    real-world corruption repeats (a missing co-author or a popular
    misspelling propagates across stores), so erring stores draw from
    this small pool instead of inventing fresh noise — that is what
    bounds the paper's "1 to 23 author lists per book".
    """

    book: ObjectId
    title: str
    authors: tuple[str, ...]
    publisher: str
    year: int
    category: str
    corrupt_pool: tuple[tuple[str, ...], ...] = ()


@dataclass
class BookstoreWorld:
    """Ground truth of a synthetic catalog."""

    records: dict[ObjectId, BookRecord]
    edges: list[DependenceEdge] = field(default_factory=list)
    store_accuracy: dict[SourceId, float] = field(default_factory=dict)

    def dependent_pairs(self) -> set[frozenset[SourceId]]:
        """All unordered planted dependent pairs (cliques fully expanded).

        Within a clique every copier shares its content with the original
        *and* with its sibling copiers, so sibling pairs count as
        dependent too — they share the same provenance.
        """
        by_original: dict[SourceId, set[SourceId]] = {}
        for edge in self.edges:
            by_original.setdefault(edge.original, set()).add(edge.copier)
        pairs: set[frozenset[SourceId]] = set()
        for original, copiers in by_original.items():
            members = sorted(copiers | {original})
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    pairs.add(frozenset((a, b)))
        return pairs

    def true_records(self) -> dict[ObjectId, dict[str, object]]:
        """Records in the resolved-record shape the query layer uses."""
        return {
            book: {
                "title": record.title,
                "authors": record.authors,
                "publisher": record.publisher,
                "year": record.year,
                "category": record.category,
            }
            for book, record in self.records.items()
        }


def generate_bookstore_catalog(
    config: BookstoreConfig | None = None, seed: int = 0
) -> tuple[BookCatalog, BookstoreWorld]:
    """Generate the catalog and its ground truth."""
    if config is None:
        config = BookstoreConfig()
    rng = make_rng(seed)

    authors = author_pool(rng, config.n_authors)
    titles = title_pool(rng, config.n_books)
    publishers = publisher_pool(rng, config.n_publishers)

    records: dict[ObjectId, BookRecord] = {}
    for i in range(config.n_books):
        book = f"book{i:04d}"
        n_authors = min(len(authors), 1 + _author_count(rng))
        true_authors = tuple(rng.sample(authors, n_authors))
        pool = tuple(
            _corrupt_authors(rng, true_authors, style=0)
            for _ in range(rng.randint(3, 6))
        )
        records[book] = BookRecord(
            book=book,
            title=titles[i],
            authors=true_authors,
            publisher=rng.choice(publishers),
            year=rng.randint(1995, 2008),
            category=rng.choice(CATEGORIES),
            corrupt_pool=pool,
        )
    books = sorted(records)

    stores = [f"store{i:03d}" for i in range(config.n_stores)]
    # A pure power law cannot meet min=1, max=1095 and the mean at once;
    # real store-size distributions have a flat singleton tail. Reserve
    # ~5% of stores as tiny shops (1-2 books) and fit the power law to
    # the rest.
    n_tiny = max(1, config.n_stores // 20)
    tiny_sizes = [rng.randint(1, 2) for _ in range(n_tiny)]
    sizes = power_law_sizes(
        count=config.n_stores - n_tiny,
        largest=config.max_books_per_store,
        smallest=1,
        total=config.n_listings - sum(tiny_sizes),
        exponent=0.78,
        rng=rng,
    )
    sizes = sizes + tiny_sizes
    # Most stores follow a right-leaning beta over [0, max_accuracy];
    # a small fraction are near-hopeless (the paper's accuracy range
    # starts at 0).
    store_accuracy = {}
    for store in stores:
        if rng.random() < 0.03:
            store_accuracy[store] = rng.uniform(0.0, 0.15)
        else:
            store_accuracy[store] = config.max_accuracy * rng.betavariate(3.0, 1.3)

    # Popularity bias: early books are listed by more stores.
    popularity = [1.0 / (rank + 5) for rank in range(len(books))]

    catalog = BookCatalog()
    store_books: dict[SourceId, list[ObjectId]] = {}
    for store, size in zip(stores, sizes):
        chosen = _sample_books(rng, books, popularity, size)
        store_books[store] = chosen
        for book in chosen:
            catalog.add(
                _make_listing(rng, store, records[book], store_accuracy[store])
            )

    # Every book must be listed somewhere; orphans go to the largest store.
    listed = set(catalog.books)
    biggest = max(stores, key=catalog.coverage)
    for book in books:
        if book not in listed:
            catalog.add(
                _make_listing(
                    rng, biggest, records[book], store_accuracy[biggest]
                )
            )
            store_books[biggest].append(book)

    edges = _plant_cliques(
        rng, config, catalog, records, store_accuracy, store_books
    )

    # Clique rewrites can drop a book whose only listing was replaced;
    # re-run the orphan fill so every book stays listed.
    listed = set(catalog.books)
    biggest = max(stores, key=catalog.coverage)
    for book in books:
        if book not in listed:
            catalog.add(
                _make_listing(
                    rng, biggest, records[book], store_accuracy[biggest]
                )
            )

    world = BookstoreWorld(
        records=records, edges=edges, store_accuracy=store_accuracy
    )
    return catalog, world


# ---------------------------------------------------------------------------
# listing construction and corruption
# ---------------------------------------------------------------------------


def _author_count(rng: random.Random) -> int:
    """Books mostly have 1-3 authors, occasionally more."""
    roll = rng.random()
    if roll < 0.45:
        return 0
    if roll < 0.8:
        return 1
    if roll < 0.95:
        return 2
    return 3


def _sample_books(
    rng: random.Random,
    books: list[ObjectId],
    popularity: list[float],
    size: int,
) -> list[ObjectId]:
    """Sample ``size`` distinct books with popularity bias."""
    if size >= len(books):
        return list(books)
    chosen: set[ObjectId] = set()
    # Rejection sampling against the popularity weights; falls back to
    # uniform fill to guarantee termination.
    attempts = 0
    total = sum(popularity)
    while len(chosen) < size and attempts < size * 30:
        pick = rng.random() * total
        cumulative = 0.0
        for book, weight in zip(books, popularity):
            cumulative += weight
            if pick <= cumulative:
                chosen.add(book)
                break
        attempts += 1
    remaining = [b for b in books if b not in chosen]
    while len(chosen) < size:
        chosen.add(remaining.pop(rng.randrange(len(remaining))))
    return sorted(chosen)


def _format_name(rng: random.Random, name: str, style: int) -> str:
    """Render a canonical "Given [M.] Family" name in a store's style."""
    parts = name.split()
    given, family = parts[0], parts[-1]
    middle = parts[1:-1]
    if style == 0:  # as-is
        return name
    if style == 1:  # Last, First
        middle_text = f" {' '.join(middle)}" if middle else ""
        return f"{family}, {given}{middle_text}"
    if style == 2:  # initials
        middle_text = f" {' '.join(m[0] + '.' for m in middle)}" if middle else ""
        return f"{given[0]}.{middle_text} {family}"
    return name.upper() if rng.random() < 0.2 else name


def _misspell(rng: random.Random, name: str) -> str:
    """Perturb one character of the name (drop, swap or duplicate)."""
    letters = [i for i, ch in enumerate(name) if ch.isalpha()]
    if not letters:
        return name
    index = rng.choice(letters)
    operation = rng.randrange(3)
    if operation == 0:
        return name[:index] + name[index + 1 :]
    if operation == 1:
        return name[:index] + name[index] + name[index:]
    replacement = chr(ord("a") + rng.randrange(26))
    return name[:index] + replacement + name[index + 1 :]


def _corrupt_authors(
    rng: random.Random, true_authors: tuple[str, ...], style: int
) -> tuple[str, ...]:
    """One corruption of an author list (Example 4.1's error taxonomy)."""
    authors = [_format_name(rng, a, style) for a in true_authors]
    operation = rng.randrange(5)
    if operation == 0 and len(authors) > 1:  # missing author
        authors.pop(rng.randrange(len(authors)))
    elif operation == 1 and len(authors) > 1:  # misordered authors
        i, j = rng.sample(range(len(authors)), 2)
        authors[i], authors[j] = authors[j], authors[i]
    elif operation == 2:  # misspelled author
        index = rng.randrange(len(authors))
        authors[index] = _misspell(rng, authors[index])
    elif operation == 3:  # wrong author added (editor-as-author etc.)
        authors.insert(
            rng.randrange(len(authors) + 1),
            _format_name(rng, f"Editor Guest{rng.randrange(40)}", style),
        )
    else:  # entirely wrong author replaces one
        index = rng.randrange(len(authors))
        authors[index] = _format_name(
            rng, f"Wrong Person{rng.randrange(60)}", style
        )
    return tuple(authors)


def _make_listing(
    rng: random.Random,
    store: SourceId,
    record: BookRecord,
    accuracy: float,
) -> Listing:
    """One store's (possibly corrupted, possibly reformatted) listing."""
    style = _style_of(store)  # each store has a house formatting style
    if rng.random() < accuracy or not record.corrupt_pool:
        base = record.authors
    else:
        base = rng.choice(record.corrupt_pool)
    authors = tuple(_format_name(rng, a, style) for a in base)
    year = record.year
    if rng.random() > max(accuracy, 0.5):
        year = record.year + rng.choice((-1, 1))
    return Listing(
        store=store,
        book=record.book,
        title=record.title,
        authors=authors,
        publisher=record.publisher,
        year=year,
        category=record.category,
    )


def _plant_cliques(
    rng: random.Random,
    config: BookstoreConfig,
    catalog: BookCatalog,
    records: dict[ObjectId, BookRecord],
    store_accuracy: dict[SourceId, float],
    store_books: dict[SourceId, list[ObjectId]],
) -> list[DependenceEdge]:
    """Rewrite some stores into copier cliques and return the edges.

    For each clique, one store with a mid-sized inventory becomes the
    original; ``clique_size - 1`` other small stores are *rewritten* to
    carry copies of a slice of the original's listings (with their own
    formatting style and occasional independent deviations).
    """
    stores = sorted(store_books)
    eligible_originals = [
        s
        for s in stores
        if config.copier_min_books <= len(store_books[s]) <= config.copier_max_books * 4
    ]
    eligible_copiers = [
        s
        for s in stores
        if config.copier_min_books
        <= len(store_books[s])
        <= config.copier_max_books
    ]
    rng.shuffle(eligible_originals)
    rng.shuffle(eligible_copiers)

    edges: list[DependenceEdge] = []
    used: set[SourceId] = set()
    cliques_built = 0
    for original in eligible_originals:
        if cliques_built >= config.n_copier_cliques:
            break
        if original in used:
            continue
        copiers = []
        for candidate in eligible_copiers:
            if candidate in used or candidate == original:
                continue
            copiers.append(candidate)
            if len(copiers) == config.clique_size - 1:
                break
        if len(copiers) < config.clique_size - 1:
            break
        used.add(original)
        used.update(copiers)
        cliques_built += 1

        source_listings = catalog.listings_by(original)
        # Each copier's inventory keeps (roughly) its original size, so
        # the catalog's listing total stays calibrated; siblings draw
        # from one shuffled slice, giving the clique a large overlap.
        shared_sizes = {
            copier: min(
                len(source_listings),
                max(
                    config.copier_min_books,
                    min(config.copier_max_books, catalog.coverage(copier)),
                ),
            )
            for copier in copiers
        }
        shared_all = rng.sample(source_listings, max(shared_sizes.values()))
        for copier in copiers:
            style = _style_of(copier)
            rebuilt = BookCatalog()
            for listing in shared_all[: shared_sizes[copier]]:
                if rng.random() < config.copy_rate:
                    # Some copiers reformat whole lists into their house
                    # style during copying (the S5 pattern of Table 1).
                    if rng.random() < 0.3:
                        authors = tuple(
                            _format_name(rng, a, style)
                            for a in listing.authors
                        )
                    else:
                        authors = listing.authors
                    copied = Listing(
                        store=copier,
                        book=listing.book,
                        title=listing.title,
                        authors=authors,
                        publisher=listing.publisher,
                        year=listing.year,
                        category=listing.category,
                    )
                else:
                    copied = _make_listing(
                        rng, copier, records[listing.book],
                        store_accuracy[copier],
                    )
                rebuilt.add(copied)
            _replace_store(catalog, copier, rebuilt)
            edges.append(
                DependenceEdge(
                    copier=copier,
                    original=original,
                    kind=DependenceKind.SIMILARITY,
                    rate=config.copy_rate,
                )
            )
    return edges


def _replace_store(
    catalog: BookCatalog, store: SourceId, replacement: BookCatalog
) -> None:
    """Swap one store's listings for the replacement's (in place)."""
    catalog.remove_store(store)
    for listing in replacement.listings_by(store):
        catalog.add(listing)


def _style_of(store: SourceId) -> int:
    """A store's house formatting style — a stable, unsalted hash."""
    return sum(ord(ch) for ch in store) % 3
