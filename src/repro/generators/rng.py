"""Seeded randomness helpers shared by the generators.

All generators take an integer seed and derive every random decision
from a single :class:`random.Random` instance, so a (config, seed) pair
reproduces the exact same world — the property every experiment in
``benchmarks/`` relies on.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.exceptions import ParameterError


def make_rng(seed: int) -> random.Random:
    """A fresh deterministic RNG for the given seed."""
    return random.Random(seed)


def weighted_choice(
    rng: random.Random, items: Sequence, weights: Sequence[float]
):
    """One draw from ``items`` with the given non-negative weights."""
    if len(items) != len(weights):
        raise ParameterError("items and weights must have equal length")
    if not items:
        raise ParameterError("cannot choose from an empty sequence")
    if any(w < 0 for w in weights):
        raise ParameterError("weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise ParameterError("at least one weight must be positive")
    pick = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if pick <= cumulative:
            return item
    return items[-1]


def power_law_sizes(
    count: int,
    largest: int,
    smallest: int,
    total: int,
    exponent: float,
    rng: random.Random,
) -> list[int]:
    """``count`` sizes following a rank power law, adjusted to sum to ``total``.

    Size of rank ``r`` starts at ``largest · r^(-exponent)`` clipped to
    ``[smallest, largest]``; the list is then nudged element-wise (within
    the clip bounds, at random ranks) until it sums to ``total``. Models
    Example 4.1's skew: books per store from 1 to 1095 with a long tail.
    """
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    if not 1 <= smallest <= largest:
        raise ParameterError("need 1 <= smallest <= largest")
    if not count * smallest <= total <= count * largest:
        raise ParameterError(
            f"total {total} impossible for {count} sizes in "
            f"[{smallest}, {largest}]"
        )
    if exponent <= 0:
        raise ParameterError(f"exponent must be > 0, got {exponent}")

    sizes = [
        min(largest, max(smallest, round(largest * (r + 1) ** -exponent)))
        for r in range(count)
    ]

    # Close most of the gap proportionally to current size, so the head
    # of the distribution absorbs the adjustment and rank-tail stores
    # stay at the minimum (the paper's smallest store has 1 book).
    gap = total - sum(sizes)
    if gap != 0:
        mass = sum(sizes)
        scaled = []
        for size in sizes:
            adjusted = size + round(gap * size / mass)
            scaled.append(min(largest, max(smallest, adjusted)))
        sizes = scaled

    # Fine-tune the residual one step at a time, biased toward larger
    # stores (weighted draw by size).
    gap = total - sum(sizes)
    guard = 10 * abs(gap) + 100
    while gap != 0 and guard > 0:
        guard -= 1
        index = weighted_choice(rng, list(range(count)), sizes)
        if gap > 0 and sizes[index] < largest:
            sizes[index] += 1
            gap -= 1
        elif gap < 0 and sizes[index] > smallest:
            sizes[index] -= 1
            gap += 1
    if gap != 0:  # deterministic fallback sweep
        for index in range(count):
            while gap > 0 and sizes[index] < largest:
                sizes[index] += 1
                gap -= 1
            while gap < 0 and sizes[index] > smallest:
                sizes[index] -= 1
                gap += 1
    if gap != 0:  # pragma: no cover - guarded by the range check above
        raise ParameterError("cannot adjust sizes to the requested total")
    return sizes
