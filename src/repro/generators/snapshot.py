"""Synthetic snapshot worlds with planted copiers.

The controlled environment for the snapshot experiments: a ground truth,
independent sources of configurable accuracy and coverage, and copier
sources wired to originals with configurable copy rate and coverage
(partial copiers — section 3.1). Copiers may chain (a copier of a
copier), which is how "loop copying" pressure is modelled.

Everything is driven by one seed; the returned
:class:`~repro.core.world.World` records the planted truth, accuracies
and dependence edges for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.claims import Claim
from repro.core.dataset import ClaimDataset
from repro.core.types import SourceId
from repro.core.world import DependenceEdge, DependenceKind, World
from repro.exceptions import ParameterError
from repro.generators.rng import make_rng


@dataclass(frozen=True, slots=True)
class CopierSpec:
    """A planted copier: ``copier`` copies from ``original``.

    ``copy_rate`` — probability each covered object's value is copied;
    the rest are provided independently with ``own_accuracy``.
    ``coverage`` — fraction of the original's objects the copier covers.
    """

    copier: SourceId
    original: SourceId
    copy_rate: float = 0.8
    coverage: float = 1.0
    own_accuracy: float = 0.7

    def __post_init__(self) -> None:
        if self.copier == self.original:
            raise ParameterError("a copier cannot copy itself")
        if not 0.0 < self.copy_rate <= 1.0:
            raise ParameterError(f"copy_rate must be in (0, 1], got {self.copy_rate}")
        if not 0.0 < self.coverage <= 1.0:
            raise ParameterError(f"coverage must be in (0, 1], got {self.coverage}")
        if not 0.0 < self.own_accuracy < 1.0:
            raise ParameterError(
                f"own_accuracy must be in (0, 1), got {self.own_accuracy}"
            )


@dataclass
class SnapshotConfig:
    """Configuration of a synthetic snapshot world."""

    n_objects: int = 100
    n_false_values: int = 20
    independent_accuracies: dict[SourceId, float] = field(default_factory=dict)
    copiers: list[CopierSpec] = field(default_factory=list)
    independent_coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ParameterError(f"n_objects must be >= 1, got {self.n_objects}")
        if self.n_false_values < 1:
            raise ParameterError(
                f"n_false_values must be >= 1, got {self.n_false_values}"
            )
        if not self.independent_accuracies:
            raise ParameterError("need at least one independent source")
        for source, accuracy in self.independent_accuracies.items():
            if not 0.0 < accuracy < 1.0:
                raise ParameterError(
                    f"accuracy of {source!r} must be in (0, 1), got {accuracy}"
                )
        if not 0.0 < self.independent_coverage <= 1.0:
            raise ParameterError(
                f"independent_coverage must be in (0, 1], got "
                f"{self.independent_coverage}"
            )
        providers = set(self.independent_accuracies)
        for spec in self.copiers:
            if spec.copier in self.independent_accuracies:
                raise ParameterError(
                    f"{spec.copier!r} is both independent and a copier"
                )
            providers.add(spec.copier)
        for spec in self.copiers:
            if spec.original not in providers:
                raise ParameterError(
                    f"copier {spec.copier!r} copies unknown source "
                    f"{spec.original!r}"
                )


def generate_snapshot_world(
    config: SnapshotConfig, seed: int = 0
) -> tuple[ClaimDataset, World]:
    """Generate the claims and ground truth of a snapshot world."""
    rng = make_rng(seed)
    objects = [f"obj{i:04d}" for i in range(config.n_objects)]
    truth = {obj: f"{obj}::true" for obj in objects}
    false_values = {
        obj: [f"{obj}::false{j}" for j in range(config.n_false_values)]
        for obj in objects
    }

    dataset = ClaimDataset()
    claims: dict[SourceId, dict[str, str]] = {}

    def independent_value(obj: str, accuracy: float) -> str:
        if rng.random() < accuracy:
            return truth[obj]
        return rng.choice(false_values[obj])

    for source in sorted(config.independent_accuracies):
        accuracy = config.independent_accuracies[source]
        covered = [
            obj
            for obj in objects
            if rng.random() < config.independent_coverage
        ]
        if not covered:
            covered = [rng.choice(objects)]
        claims[source] = {
            obj: independent_value(obj, accuracy) for obj in covered
        }

    # Copiers are resolved in dependency order so chains work.
    pending = list(config.copiers)
    progressed = True
    while pending and progressed:
        progressed = False
        for spec in list(pending):
            if spec.original not in claims:
                continue
            original_claims = claims[spec.original]
            covered = [
                obj
                for obj in sorted(original_claims)
                if rng.random() < spec.coverage
            ]
            if not covered:
                covered = [rng.choice(sorted(original_claims))]
            copied: dict[str, str] = {}
            for obj in covered:
                if rng.random() < spec.copy_rate:
                    copied[obj] = original_claims[obj]
                else:
                    copied[obj] = independent_value(obj, spec.own_accuracy)
            claims[spec.copier] = copied
            pending.remove(spec)
            progressed = True
    if pending:
        raise ParameterError(
            "copier chain contains a cycle: "
            + ", ".join(spec.copier for spec in pending)
        )

    for source in sorted(claims):
        for obj, value in sorted(claims[source].items()):
            dataset.add(Claim(source=source, object=obj, value=value))

    world = World(
        truth=truth,
        edges=[
            DependenceEdge(
                copier=spec.copier,
                original=spec.original,
                kind=DependenceKind.SIMILARITY,
                rate=spec.copy_rate,
            )
            for spec in config.copiers
        ],
        source_accuracy=dict(config.independent_accuracies),
    )
    return dataset, world


def simple_copier_world(
    n_objects: int = 100,
    n_independent: int = 5,
    n_copiers: int = 3,
    accuracy: float = 0.8,
    copy_rate: float = 0.8,
    copier_coverage: float = 1.0,
    n_false_values: int = 20,
    seed: int = 0,
) -> tuple[ClaimDataset, World]:
    """Convenience world: ``n_copiers`` all copying the last independent source.

    The copiers all target one original, forming the copier-clique
    structure of Example 2.1 (S4 and S5 copying S3) at any scale.
    """
    if n_independent < 1:
        raise ParameterError(f"n_independent must be >= 1, got {n_independent}")
    if n_copiers < 0:
        raise ParameterError(f"n_copiers must be >= 0, got {n_copiers}")
    independents = {
        f"ind{i:02d}": accuracy for i in range(n_independent)
    }
    original = sorted(independents)[-1]
    copiers = [
        CopierSpec(
            copier=f"cop{i:02d}",
            original=original,
            copy_rate=copy_rate,
            coverage=copier_coverage,
        )
        for i in range(n_copiers)
    ]
    config = SnapshotConfig(
        n_objects=n_objects,
        n_false_values=n_false_values,
        independent_accuracies=independents,
        copiers=copiers,
    )
    return generate_snapshot_world(config, seed)
