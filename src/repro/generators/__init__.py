"""Synthetic world generators (the substitute for proprietary crawls)."""

from repro.generators.bookstores import (
    BookRecord,
    BookstoreConfig,
    BookstoreWorld,
    generate_bookstore_catalog,
)
from repro.generators.ratings import (
    RatingWorld,
    RatingWorldConfig,
    generate_rating_world,
)
from repro.generators.snapshot import (
    CopierSpec,
    SnapshotConfig,
    generate_snapshot_world,
    simple_copier_world,
)
from repro.generators.temporal import (
    TemporalConfig,
    TemporalCopierSpec,
    TemporalSourceSpec,
    generate_temporal_world,
)

__all__ = [
    "BookRecord",
    "BookstoreConfig",
    "BookstoreWorld",
    "CopierSpec",
    "RatingWorld",
    "RatingWorldConfig",
    "SnapshotConfig",
    "TemporalConfig",
    "TemporalCopierSpec",
    "TemporalSourceSpec",
    "generate_bookstore_catalog",
    "generate_rating_world",
    "generate_snapshot_world",
    "generate_temporal_world",
    "simple_copier_world",
]
