"""Synthetic vocabularies: author names, book titles, publishers.

The bookstore generator needs realistic-looking string data so the
record-linkage layer has real work to do (initials, reordered name
parts, misspellings). Pools are built deterministically from fixed
syllable/word lists plus the generator's RNG.
"""

from __future__ import annotations

import random

from repro.exceptions import ParameterError

_GIVEN = (
    "James", "Mary", "Wei", "Anna", "Luis", "Chen", "Priya", "Ivan",
    "Laura", "Divesh", "Amelie", "Anish", "Xin", "Peter", "Susan",
    "Jeffrey", "Hector", "Rakesh", "Serge", "Moshe", "Jennifer", "David",
    "Alon", "Dan", "Renee", "Michael", "Magda", "Nilesh", "Luna", "Erhard",
)

_FAMILY = (
    "Ullman", "Dong", "Srivastava", "Marian", "Berti", "Halevy", "Suciu",
    "Widom", "Garcia-Molina", "Naumann", "Winkler", "Clemen", "Abiteboul",
    "Vianu", "Agrawal", "Rajaraman", "Doan", "Kossmann", "Weikum", "Chen",
    "Balazinska", "Dalvi", "Sarma", "Franklin", "Stonebraker", "Dewitt",
    "Bernstein", "Gray", "Codd", "Chaudhuri",
)

_TITLE_HEAD = (
    "Effective", "Practical", "Advanced", "Foundations of", "Principles of",
    "Introduction to", "Mastering", "Learning", "Programming", "Designing",
    "Understanding", "Essential", "Modern", "Distributed", "Scalable",
)

_TITLE_TOPIC = (
    "Java", "Databases", "Data Integration", "Query Processing",
    "Information Retrieval", "Machine Learning", "Web Services", "XML",
    "Transaction Processing", "Data Mining", "Stream Processing",
    "Probabilistic Databases", "Record Linkage", "Data Cleaning",
    "Python", "Compilers", "Operating Systems", "Networks", "Algorithms",
    "Data Fusion",
)

_PUBLISHER_STEM = (
    "Harbor", "Summit", "Cascade", "Meridian", "Juniper", "Granite",
    "Beacon", "Aurora", "Orchard", "Pinnacle", "Coastal", "Redwood",
)

_PUBLISHER_SUFFIX = ("Press", "Publishing", "Books", "Media")

#: Categories for the aggregate query of Example 4.1.
CATEGORIES = (
    "Database",
    "Programming",
    "Systems",
    "Theory",
    "Web",
)


def author_pool(rng: random.Random, size: int) -> list[str]:
    """``size`` distinct canonical author names ("Given [M.] Family")."""
    if size < 1:
        raise ParameterError(f"size must be >= 1, got {size}")
    if size > len(_GIVEN) * len(_FAMILY) * 27:
        raise ParameterError(f"cannot build {size} distinct author names")
    names: list[str] = []
    seen: set[str] = set()
    while len(names) < size:
        given = rng.choice(_GIVEN)
        family = rng.choice(_FAMILY)
        if rng.random() < 0.3:
            middle = chr(ord("A") + rng.randrange(26))
            name = f"{given} {middle}. {family}"
        else:
            name = f"{given} {family}"
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def title_pool(rng: random.Random, size: int) -> list[str]:
    """``size`` distinct book titles; editions disambiguate collisions."""
    if size < 1:
        raise ParameterError(f"size must be >= 1, got {size}")
    titles: list[str] = []
    seen: set[str] = set()
    edition = 2
    while len(titles) < size:
        title = f"{rng.choice(_TITLE_HEAD)} {rng.choice(_TITLE_TOPIC)}"
        if title in seen:
            title = f"{title}, {edition}nd Edition"
            edition += 1
        if title in seen:
            continue
        seen.add(title)
        titles.append(title)
    return titles


def publisher_pool(rng: random.Random, size: int) -> list[str]:
    """``size`` distinct publisher names."""
    if size < 1:
        raise ParameterError(f"size must be >= 1, got {size}")
    if size > len(_PUBLISHER_STEM) * len(_PUBLISHER_SUFFIX):
        raise ParameterError(f"cannot build {size} distinct publishers")
    publishers: list[str] = []
    seen: set[str] = set()
    while len(publishers) < size:
        name = f"{rng.choice(_PUBLISHER_STEM)} {rng.choice(_PUBLISHER_SUFFIX)}"
        if name not in seen:
            seen.add(name)
            publishers.append(name)
    return publishers
