"""Synthetic rating worlds: taste clusters, copiers, anti-dependent raters.

The controlled environment for the opinion experiments. Three rater
populations are planted:

* **genuine raters**, organised in *taste clusters*: every cluster has
  its own preference per item, and members rate around it — the
  "correlated information" of section 3.1 (Star Wars fans agree without
  copying; a detector must not flag them);
* **copier raters**: echo a target's rating with the influence rate;
* **anti raters**: mirror a target's rating with the influence rate
  (Example 2.2's R4).

The returned edges record the planted dependence for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.claims import Rating
from repro.core.types import SourceId
from repro.core.world import DependenceEdge, DependenceKind
from repro.exceptions import ParameterError
from repro.generators.rng import make_rng, weighted_choice
from repro.opinions.ratings import RatingMatrix, RatingScale

#: The Table 2 scale, reused as the default.
DEFAULT_SCALE = ("Bad", "Neutral", "Good")


@dataclass
class RatingWorldConfig:
    """Configuration of a synthetic rating world."""

    n_items: int = 50
    scale: tuple[str, ...] = DEFAULT_SCALE
    n_clusters: int = 2
    raters_per_cluster: int = 4
    taste_concentration: float = 2.0
    n_copiers: int = 1
    n_anti: int = 1
    influence_rate: float = 0.8
    co_rating: float = 1.0

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise ParameterError(f"n_items must be >= 1, got {self.n_items}")
        if len(self.scale) < 2:
            raise ParameterError("scale needs at least two levels")
        if self.n_clusters < 1:
            raise ParameterError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.raters_per_cluster < 1:
            raise ParameterError(
                f"raters_per_cluster must be >= 1, got {self.raters_per_cluster}"
            )
        if self.taste_concentration <= 0:
            raise ParameterError(
                f"taste_concentration must be > 0, got {self.taste_concentration}"
            )
        if self.n_copiers < 0 or self.n_anti < 0:
            raise ParameterError("n_copiers and n_anti must be >= 0")
        if not 0.0 < self.influence_rate < 1.0:
            raise ParameterError(
                f"influence_rate must be in (0, 1), got {self.influence_rate}"
            )
        if not 0.0 < self.co_rating <= 1.0:
            raise ParameterError(
                f"co_rating must be in (0, 1], got {self.co_rating}"
            )


@dataclass
class RatingWorld:
    """Ground truth of a rating world."""

    matrix: RatingMatrix
    edges: list[DependenceEdge] = field(default_factory=list)
    clusters: dict[SourceId, int] = field(default_factory=dict)

    def dependent_pairs(self) -> set[frozenset[SourceId]]:
        """Unordered planted dependent pairs."""
        return {edge.pair for edge in self.edges}

    def genuine_raters(self) -> list[SourceId]:
        """Raters with no planted dependence."""
        dependent = {edge.copier for edge in self.edges}
        return sorted(set(self.clusters) - dependent)


def generate_rating_world(
    config: RatingWorldConfig, seed: int = 0
) -> RatingWorld:
    """Generate a rating matrix with planted taste clusters and dependence."""
    rng = make_rng(seed)
    scale = RatingScale(config.scale)
    levels = scale.levels
    items = [f"item{i:03d}" for i in range(config.n_items)]

    # Per (cluster, item) preference distributions: a preferred level
    # plus concentration-controlled spill onto neighbours.
    preferences: dict[tuple[int, str], list[float]] = {}
    for cluster in range(config.n_clusters):
        for item in items:
            preferred = rng.randrange(len(levels))
            weights = [
                config.taste_concentration ** -abs(i - preferred)
                for i in range(len(levels))
            ]
            preferences[(cluster, item)] = weights

    matrix = RatingMatrix(scale)
    clusters: dict[SourceId, int] = {}
    genuine: list[SourceId] = []
    for cluster in range(config.n_clusters):
        for member in range(config.raters_per_cluster):
            rater = f"c{cluster}r{member:02d}"
            clusters[rater] = cluster
            genuine.append(rater)
            for item in items:
                if rng.random() >= config.co_rating:
                    continue
                score = weighted_choice(
                    rng, levels, preferences[(cluster, item)]
                )
                matrix.add(Rating(rater=rater, item=item, score=score))

    edges: list[DependenceEdge] = []

    def add_influenced(
        rater: SourceId, target: SourceId, kind: DependenceKind
    ) -> None:
        cluster = clusters[target]
        clusters[rater] = cluster
        target_ratings = matrix.ratings_by(target)
        for item in items:
            if rng.random() >= config.co_rating:
                continue
            target_score = target_ratings.get(item)
            if target_score is not None and rng.random() < config.influence_rate:
                if kind is DependenceKind.SIMILARITY:
                    score = target_score
                else:
                    score = scale.mirror(target_score)
            else:
                score = weighted_choice(
                    rng, levels, preferences[(cluster, item)]
                )
            matrix.add(Rating(rater=rater, item=item, score=score))
        edges.append(
            DependenceEdge(
                copier=rater,
                original=target,
                kind=kind,
                rate=config.influence_rate,
            )
        )

    for i in range(config.n_copiers):
        target = genuine[i % len(genuine)]
        add_influenced(f"copier{i:02d}", target, DependenceKind.SIMILARITY)
    for i in range(config.n_anti):
        target = genuine[(config.n_copiers + i) % len(genuine)]
        add_influenced(f"anti{i:02d}", target, DependenceKind.DISSIMILARITY)

    return RatingWorld(matrix=matrix, edges=edges, clusters=clusters)
