"""Synthetic temporal worlds: evolving truth, slow providers, lazy copiers.

The controlled environment for the temporal experiments (Table 3 at
scale). A truth timeline evolves per object; three source archetypes
observe it:

* **fresh independents** track transitions with a small lag and
  occasional errors;
* **slow independents** track with a large lag — the sources Example 3.2
  warns look like copiers to naive similarity ("an independent source may
  be slow … and so appears to be a copier");
* **lazy copiers** poll an *original source* at intervals and copy a
  fraction of what changed — inheriting the original's errors and always
  trailing it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.claims import TemporalClaim, ValuePeriod
from repro.core.temporal_dataset import TemporalDataset
from repro.core.types import ObjectId, SourceId
from repro.core.world import DependenceEdge, DependenceKind, TemporalWorld
from repro.exceptions import ParameterError
from repro.generators.rng import make_rng


@dataclass(frozen=True, slots=True)
class TemporalSourceSpec:
    """An independent temporal source."""

    source: SourceId
    lag: float = 0.5
    lag_jitter: float = 0.5
    error_rate: float = 0.05
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.lag < 0 or self.lag_jitter < 0:
            raise ParameterError("lag and lag_jitter must be >= 0")
        if not 0.0 <= self.error_rate < 1.0:
            raise ParameterError(
                f"error_rate must be in [0, 1), got {self.error_rate}"
            )
        if not 0.0 < self.coverage <= 1.0:
            raise ParameterError(f"coverage must be in (0, 1], got {self.coverage}")


@dataclass(frozen=True, slots=True)
class TemporalCopierSpec:
    """A lazy copier polling an original source."""

    copier: SourceId
    original: SourceId
    poll_interval: float = 2.0
    copy_rate: float = 0.7
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.copier == self.original:
            raise ParameterError("a copier cannot copy itself")
        if self.poll_interval <= 0:
            raise ParameterError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if not 0.0 < self.copy_rate <= 1.0:
            raise ParameterError(f"copy_rate must be in (0, 1], got {self.copy_rate}")
        if not 0.0 < self.coverage <= 1.0:
            raise ParameterError(f"coverage must be in (0, 1], got {self.coverage}")


@dataclass
class TemporalConfig:
    """Configuration of a synthetic temporal world."""

    n_objects: int = 30
    n_false_values: int = 10
    time_span: float = 20.0
    transitions_per_object: float = 2.0
    sources: list[TemporalSourceSpec] = field(default_factory=list)
    copiers: list[TemporalCopierSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise ParameterError(f"n_objects must be >= 1, got {self.n_objects}")
        if self.n_false_values < 1:
            raise ParameterError(
                f"n_false_values must be >= 1, got {self.n_false_values}"
            )
        if self.time_span <= 0:
            raise ParameterError(f"time_span must be > 0, got {self.time_span}")
        if self.transitions_per_object < 0:
            raise ParameterError("transitions_per_object must be >= 0")
        if not self.sources:
            raise ParameterError("need at least one independent temporal source")
        source_ids = {spec.source for spec in self.sources}
        if len(source_ids) != len(self.sources):
            raise ParameterError("duplicate source ids in sources")
        for spec in self.copiers:
            if spec.original not in source_ids:
                raise ParameterError(
                    f"copier {spec.copier!r} polls unknown source "
                    f"{spec.original!r}"
                )
            if spec.copier in source_ids:
                raise ParameterError(
                    f"{spec.copier!r} is both independent and a copier"
                )


def generate_temporal_world(
    config: TemporalConfig, seed: int = 0
) -> tuple[TemporalDataset, TemporalWorld]:
    """Generate temporal claims plus the true timelines and planted edges."""
    rng = make_rng(seed)
    objects = [f"obj{i:03d}" for i in range(config.n_objects)]

    timelines: dict[ObjectId, list[ValuePeriod]] = {}
    for obj in objects:
        n_transitions = _poisson(rng, config.transitions_per_object)
        times = sorted(
            rng.uniform(0.0, config.time_span) for _ in range(n_transitions)
        )
        starts = [0.0, *times]
        periods = []
        for i, start in enumerate(starts):
            value = f"{obj}::v{i}"
            end = starts[i + 1] if i + 1 < len(starts) else None
            periods.append(ValuePeriod(value=value, start=start, end=end))
        timelines[obj] = periods

    false_values = {
        obj: [f"{obj}::bogus{j}" for j in range(config.n_false_values)]
        for obj in objects
    }

    dataset = TemporalDataset()

    def emit(source: SourceId, obj: ObjectId, value: str, time: float) -> None:
        clipped = min(max(time, 0.0), config.time_span)
        if dataset.value_at(source, obj, clipped) == value:
            return
        if any(t == clipped for t, _ in dataset.history(source, obj)):
            # Same-time double update after clipping: keep the first.
            return
        dataset.add(
            TemporalClaim(source=source, object=obj, value=value, time=clipped)
        )

    for spec in config.sources:
        for obj in objects:
            if rng.random() >= spec.coverage:
                continue
            for period in timelines[obj]:
                lag = spec.lag + rng.uniform(0.0, spec.lag_jitter)
                adopted_at = period.start + lag
                if period.end is not None and adopted_at >= period.end:
                    continue  # the source missed this short period
                if adopted_at > config.time_span:
                    continue
                if rng.random() < spec.error_rate:
                    value = rng.choice(false_values[obj])
                else:
                    value = period.value
                emit(spec.source, obj, value, adopted_at)

    edges = []
    for spec in config.copiers:
        covered = [obj for obj in objects if rng.random() < spec.coverage]
        polls = []
        t = rng.uniform(0.0, spec.poll_interval)
        while t <= config.time_span:
            polls.append(t)
            t += spec.poll_interval
        for poll in polls:
            for obj in covered:
                original_value = dataset.value_at(spec.original, obj, poll)
                if original_value is None:
                    continue
                current = dataset.value_at(spec.copier, obj, poll)
                if current == original_value:
                    continue
                if rng.random() < spec.copy_rate:
                    emit(spec.copier, obj, original_value, poll)
        edges.append(
            DependenceEdge(
                copier=spec.copier,
                original=spec.original,
                kind=DependenceKind.SIMILARITY,
                rate=spec.copy_rate,
            )
        )

    world = TemporalWorld(timelines=timelines, edges=edges)
    return dataset, world


def _poisson(rng, mean: float) -> int:
    """Small-mean Poisson sample via inversion (Knuth)."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k
